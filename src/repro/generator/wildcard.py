"""Algorithm 2 (§4.4): eliminating nondeterminism from wildcard receives.

``MPI_ANY_SOURCE`` receives make a benchmark's performance depend on which
message happens to arrive first — unacceptable for a measurement tool.
This pass rewrites every wildcard receive in the trace to an *arbitrary
but valid* concrete source: the first sender that matches the receive
under a deterministic traversal of the trace (the paper's lists L1/L2
correspond to our scheduler's pending send/receive records).

The traversal interprets blocking semantics faithfully, so if the traced
application admits a deadlocking execution (Fig. 5), the traversal itself
wedges and a :class:`~repro.errors.TraceDeadlockError` reports the cycle —
the paper's *sufficient* deadlock detection (it examines this trace's
event ordering, not all interleavings, so it may miss deadlocks a
different execution would expose).
"""

from __future__ import annotations

from repro import obs
from repro.generator.rebuild import rebuild_trace
from repro.generator.traversal import TraceScheduler
from repro.scalatrace.compress import compress_node_list
from repro.scalatrace.rsd import EventNode, Trace
from repro.util.expr import ANY_SOURCE


def _walk_events(nodes):
    for n in nodes:
        if isinstance(n, EventNode):
            yield n
        else:
            yield from _walk_events(n.body)


def has_wildcards(trace: Trace) -> bool:
    """O(r) pre-check (§4.4): does any receive use MPI_ANY_SOURCE?"""
    for node in _walk_events(trace.nodes):
        if node.op not in ("Recv", "Irecv") or node.peer is None:
            continue
        field = node.peer
        if field.seq is not None:
            if any(v == ANY_SOURCE for v, _ in field.seq.runs):
                return True
        elif field.expr is not None:
            if field.expr.is_constant() and \
                    field.expr.constant_value() == ANY_SOURCE:
                return True
            if field.expr.kind == "table" and \
                    ANY_SOURCE in field.expr.table.values():
                return True
    return False


def resolve_wildcards(trace: Trace, force: bool = False) -> Trace:
    """Return a trace with every wildcard receive bound to a concrete,
    deterministically chosen source.  Raises
    :class:`~repro.errors.TraceDeadlockError` if the trace admits a
    deadlocking execution."""
    if not force and not has_wildcards(trace):
        return trace
    with obs.span("generator.resolve"):
        result = TraceScheduler(trace, block_p2p=True).run()
        obs.count("generator.wildcards_resolved", len(result.resolutions))
        # same output-queue discipline as Algorithm 1: resolved per-rank
        # streams may fold differently across ranks (resolved sources
        # differ), which would split already-aligned collectives; folding
        # around collectives is deferred to the global recompression pass
        rebuilt = rebuild_trace(trace, result, fold_collectives=False)
        rebuilt.nodes = compress_node_list(rebuilt.nodes)
        return rebuilt
