"""Algorithm 1 (§4.3): combining per-node collectives.

MPI allows the *same* logical collective to be issued from different
source lines on different ranks (Fig. 3's two MPI_Barrier calls inside a
rank conditional).  ScalaTrace distinguishes call sites, so such a
collective appears as several RSDs, each covering only part of the
communicator.  Generated code would then be unreadable — and its
participants impossible to express statically.

This pass detects the situation with a cheap O(r) scan (r = number of
RSDs, typically ≪ number of events), and only then runs the full
O(p·e) blocking traversal: every rank's cursor stops at each collective
until all members of the communicator arrive, the per-rank call sites are
unified to a single canonical one, and the trace is rebuilt — leaving one
RSD per logical collective, spanning the complete participant set.
"""

from __future__ import annotations

from repro import obs
from repro.generator.rebuild import rebuild_trace
from repro.generator.traversal import TraceScheduler
from repro.mpi.hooks import COLLECTIVE_OPS
from repro.scalatrace.compress import compress_node_list
from repro.scalatrace.rsd import EventNode, Trace


def _walk_events(nodes):
    for n in nodes:
        if isinstance(n, EventNode):
            yield n
        else:
            yield from _walk_events(n.body)


def needs_alignment(trace: Trace) -> bool:
    """O(r) pre-check (§4.3): is any collective RSD missing participants?

    A collective whose RSD covers only a subset of its communicator's
    members must have been recorded from multiple call sites.
    """
    for node in _walk_events(trace.nodes):
        if node.op not in COLLECTIVE_OPS:
            continue
        members = set(trace.comm_ranks(node.comm_id))
        if set(node.ranks) != members:
            return True
    return False


def align_collectives(trace: Trace, force: bool = False) -> Trace:
    """Return a trace in which every logical collective is one RSD.

    Runs the blocking traversal only when the pre-check (or ``force``)
    says it is needed; otherwise returns the input unchanged.
    """
    if not force and not needs_alignment(trace):
        return trace
    with obs.span("generator.align"):
        result = TraceScheduler(trace, block_p2p=False).run()
        obs.count("generator.rsds_aligned", len(result.collectives))
        # Rebuild without folding around collectives, merge, then recompress
        # globally: collectives now occupy one structural slot per logical
        # operation on every rank, so the merge unifies them, and the global
        # pass restores the loop structure (§4.3's output-queue compression).
        rebuilt = rebuild_trace(trace, result, fold_collectives=False)
        rebuilt.nodes = compress_node_list(rebuilt.nodes)
        return rebuilt
