"""Trace → coNCePTuaL AST emission.

This is the language-specific code generator plugged into the traversal
framework (§4.1).  It maps:

* ``LoopNode``  → ``FOR n REPETITIONS { ... }``, or ``FOR EACH rep IN
  {0, ..., n-1}`` when some parameter varies with that loop's iteration
  (the paper's "IF statement conditioned on a loop variable");
* computation time preceding an event → ``COMPUTE FOR x MICROSECONDS``
  (the histogram mean — ScalaTrace's timing summarization);
* point-to-point RSDs → ``SEND ... TO UNSUSPECTING TASK`` / ``RECEIVE``
  statements (asynchronous for Isend/Irecv), with peers expressed in
  absolute ranks as closed forms (``(t + 1) MOD num_tasks``, ``t - 2``),
  falling back to per-task-group statements for irregular patterns;
* wait RSDs → ``AWAIT COMPLETION``;
* collective RSDs → Table 1 substitutions (:mod:`repro.generator.mapping`).

The emitter produces an AST, never raw text; the printer renders it and
the parser can re-read it, so generated programs are grammatical by
construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.conceptual.ast_nodes import (AllTasks, AwaitStmt, BinOp,
                                        ComputeStmt, Expr, ForEach, ForRep,
                                        IfStmt, LogStmt, Num, Program,
                                        RecvStmt, ResetStmt, SendStmt,
                                        SingleTask, Stmt, SuchThat,
                                        TaskSelector, Var)
from repro.conceptual.parser import Parser
from repro.errors import GenerationError
from repro import obs
from repro.generator.absolutize import absolutize_rank_field
from repro.generator.mapping import map_collective
from repro.mpi.hooks import COLLECTIVE_OPS, P2P_OPS, WAIT_OPS
from repro.scalatrace.rsd import EventNode, LoopNode, ParamField, Trace
from repro.util.expr import ANY_SOURCE, ParamExpr
from repro.util.rankset import RankSet
from repro.util.valueseq import ValueSeq

TASK_VAR = "t"

#: computation deltas shorter than this (seconds) are dropped as noise —
#: they are interposition overhead, not application compute phases
MIN_COMPUTE_MEAN = 5e-8


class _LoopCtx:
    """One level of the enclosing-loop chain during emission."""

    __slots__ = ("var", "count", "parent", "used")

    def __init__(self, var: str, count: int, parent: Optional["_LoopCtx"]):
        self.var = var
        self.count = count
        self.parent = parent
        self.used = False

    def chain(self) -> List["_LoopCtx"]:
        """Outer → inner chain ending at self."""
        out = []
        ctx = self
        while ctx is not None:
            out.append(ctx)
            ctx = ctx.parent
        return list(reversed(out))


def _attribute_variation(values: List, chain: List[_LoopCtx]):
    """Find the loop level that explains a per-instance value sequence.

    ``values`` has one entry per concrete instance (flattened over the
    loop chain, innermost index fastest).  Returns ``(ctx, period)`` where
    the value depends only on ``ctx``'s iteration index and ``period`` is
    the per-iteration value list — or None when no single level explains
    the variation.  Inner levels are preferred (tighter conditions).
    """
    total = 1
    for ctx in chain:
        total *= ctx.count
    if len(values) != total:
        return None
    inner = 1
    for j in range(len(chain) - 1, -1, -1):
        ctx = chain[j]
        period: List = [None] * ctx.count
        ok = True
        for idx, v in enumerate(values):
            i_j = (idx // inner) % ctx.count
            if period[i_j] is None:
                period[i_j] = v
            elif period[i_j] != v:
                ok = False
                break
        if ok:
            return ctx, period
        inner *= ctx.count
    return None


class ConceptualEmitter:
    """Emit a coNCePTuaL program AST from an aligned trace (unresolved
    wildcards remain representable as FROM ANY TASK)."""

    def __init__(self, trace: Trace, include_timing: bool = True,
                 label: str = "Total time (us)",
                 split_first_rest: bool = True):
        self.trace = trace
        self.world = trace.world_size
        self.include_timing = include_timing
        #: emit separate first-iteration COMPUTE conditionals (§3.1);
        #: False collapses to one aggregate mean per call site — the
        #: ablation knob for §4.5's timing-summarization error source
        self.split_first_rest = split_first_rest
        self.label = label
        self._loop_counter = 0

    # -- top level ---------------------------------------------------------
    def generate(self) -> Program:
        with obs.span("generator.emit"):
            body = self._emit_nodes(self.trace.nodes, None)
            stmts: List[Stmt] = [ResetStmt(AllTasks())]
            stmts.extend(body)
            stmts.append(LogStmt(AllTasks(), "FINAL", "elapsed_usecs",
                                 self.label))
            obs.count("generator.statements_emitted", len(stmts))
            return Program(stmts)

    def _emit_nodes(self, nodes, ctx: Optional[_LoopCtx]) -> List[Stmt]:
        out: List[Stmt] = []
        for node in nodes:
            if isinstance(node, LoopNode):
                out.append(self._emit_loop(node, ctx))
            else:
                out.extend(self._emit_event(node, ctx))
        return out

    def _emit_loop(self, node: LoopNode, parent: Optional[_LoopCtx]) -> Stmt:
        var = f"rep{self._loop_counter}"
        self._loop_counter += 1
        ctx = _LoopCtx(var, node.count, parent)
        body = self._emit_nodes(node.body, ctx)
        if ctx.used:
            return ForEach(var, Num(0), Num(node.count - 1), body)
        return ForRep(Num(node.count), body)

    # -- events ------------------------------------------------------------------
    def _emit_event(self, node: EventNode,
                    ctx: Optional[_LoopCtx]) -> List[Stmt]:
        if node.instances != 1:
            raise GenerationError(
                f"unexpected multi-instance event node {node!r}")
        stmts: List[Stmt] = []
        if self.include_timing:
            stmts.extend(self._emit_compute(node, ctx))
        op = node.op
        if op in WAIT_OPS:
            stmts.append(AwaitStmt(self._selector(node.ranks)))
        elif op in P2P_OPS:
            stmts.extend(self._emit_p2p(node, ctx))
        elif op in COLLECTIVE_OPS:
            stmts.extend(self._emit_collective(node, ctx))
        else:
            raise GenerationError(f"cannot emit op {op!r}")
        return stmts

    # -- computation -----------------------------------------------------------
    def _emit_compute(self, node: EventNode,
                      ctx: Optional[_LoopCtx]) -> List[Stmt]:
        """COMPUTE statements for the deltas preceding this event.

        When the first-iteration delta differs materially from the
        subsequent-iteration mean (ScalaTrace's path-aware timing, §3.1),
        the split is preserved with a conditional on the innermost loop
        variable; otherwise a single mean suffices.
        """
        first, rest = node.time_first, node.time_rest
        sel = self._selector(node.ranks)

        def compute(mean):
            return ComputeStmt(sel, Num(round(mean * 1e6, 3)))

        if rest.count == 0 or ctx is None or not self.split_first_rest:
            total = first.total + rest.total
            count = first.count + rest.count
            mean = total / count if count else 0.0
            return [compute(mean)] if mean > MIN_COMPUTE_MEAN else []
        fm = first.mean if first.count else 0.0
        rm = rest.mean
        if first.count and abs(fm - rm) > max(0.25 * max(fm, rm), 1e-6):
            ctx.used = True
            var = Var(ctx.var)
            if fm <= MIN_COMPUTE_MEAN:
                return [IfStmt(BinOp(">=", var, Num(1)), [compute(rm)])] \
                    if rm > MIN_COMPUTE_MEAN else []
            if rm <= MIN_COMPUTE_MEAN:
                return [IfStmt(BinOp("=", var, Num(0)), [compute(fm)])]
            return [IfStmt(BinOp("=", var, Num(0)), [compute(fm)],
                           [compute(rm)])]
        total = first.total + rest.total
        mean = total / (first.count + rest.count)
        return [compute(mean)] if mean > MIN_COMPUTE_MEAN else []

    # -- selectors ---------------------------------------------------------------
    def _selector(self, ranks: RankSet,
                  need_var: bool = False) -> TaskSelector:
        if len(ranks) == self.world:
            return AllTasks(TASK_VAR) if need_var else AllTasks()
        if len(ranks) == 1 and not need_var:
            return SingleTask(Num(ranks.min()))
        pred_text = ranks.to_predicate(TASK_VAR, self.world)
        if not pred_text:
            return AllTasks(TASK_VAR) if need_var else AllTasks()
        pred = Parser(pred_text).parse_expr()
        return SuchThat(TASK_VAR, pred)

    # -- expression rendering ------------------------------------------------------
    def _rank_expr_ast(self, expr: ParamExpr) -> Optional[Expr]:
        if expr.kind == "const":
            if expr.delta == ANY_SOURCE:
                return None  # wildcard: handled by the caller
            return Num(expr.delta)
        if expr.kind == "rel":
            base: Expr = Var(TASK_VAR)
            if expr.delta > 0:
                base = BinOp("+", base, Num(expr.delta))
            elif expr.delta < 0:
                base = BinOp("-", base, Num(-expr.delta))
            if expr.mod is not None:
                mod: Expr = (Var("num_tasks") if expr.mod == self.world
                             else Num(expr.mod))
                return BinOp("MOD", base, mod)
            return base
        return None  # table: needs grouping

    # -- point-to-point ---------------------------------------------------------------
    def _emit_p2p(self, node: EventNode,
                  ctx: Optional[_LoopCtx]) -> List[Stmt]:
        comm_ranks = self.trace.comm_ranks(node.comm_id)
        peer = absolutize_rank_field(node.peer, list(node.ranks),
                                     comm_ranks, self.world)
        return self._emit_p2p_ranks(node, ctx, node.ranks, peer,
                                    node.size, node.tag)

    def _emit_p2p_ranks(self, node, ctx, ranks: RankSet,
                        peer: Optional[ParamField],
                        size: Optional[ParamField],
                        tag: Optional[ParamField]) -> List[Stmt]:
        # 1. rank_map fields: split ranks into groups sharing a sequence
        fields = {"peer": peer, "size": size, "tag": tag}
        if any(f is not None and f.rank_map is not None
               for f in fields.values()):
            groups: Dict[tuple, List[int]] = {}
            for r in ranks:
                key = tuple(
                    None if f is None else
                    (("m",) + tuple(f.rank_map[r].runs)
                     if f.rank_map is not None else ("s",))
                    for f in fields.values())
                groups.setdefault(key, []).append(r)
            out: List[Stmt] = []
            for key in sorted(groups, key=lambda k: groups[k][0]):
                grp = RankSet(groups[key])
                sub = {}
                for name, f in fields.items():
                    if f is None:
                        sub[name] = None
                    elif f.rank_map is not None:
                        sub[name] = ParamField(
                            seq=f.rank_map[grp.min()])
                    else:
                        sub[name] = f
                out.extend(self._emit_p2p_ranks(
                    node, ctx, grp, sub["peer"], sub["size"], sub["tag"]))
            return out
        # 2. per-iteration variation → loop-variable conditionals
        varying = {name: f for name, f in fields.items()
                   if f is not None and f.seq is not None
                   and not f.seq.is_constant()}
        if varying:
            return self._emit_p2p_segments(node, ctx, ranks, peer, size,
                                           tag, varying)
        # 3. irregular per-rank constants → delta/value grouping
        return self._emit_p2p_groups(node, ranks, peer, size, tag)

    def _emit_p2p_segments(self, node, ctx, ranks, peer, size, tag,
                           varying) -> List[Stmt]:
        """Per-iteration variation → conditionals on loop variables.

        Fields varying with *different* enclosing loops (e.g. MG's peer
        changing every message but its size changing per level) nest:
        the outermost involved loop is segmented here and the remainder
        recurses through :meth:`_emit_p2p_ranks`.
        """
        if ctx is None:
            raise GenerationError(
                f"{node!r}: iteration-varying parameters outside a loop")
        chain = ctx.chain()
        attributed: Dict[str, Tuple[_LoopCtx, List]] = {}
        for name, field in varying.items():
            res = _attribute_variation(list(field.seq), chain)
            if res is None:
                # no single loop explains the variation (e.g. wildcard
                # sources resolved in wavefront-arrival order): fall back
                # to conditions on the flattened iteration index
                return self._emit_p2p_flat(node, ctx, ranks, peer, size,
                                           tag, varying)
            attributed[name] = res
        # segment the outermost involved loop first
        target_ctx = min((actx for actx, _ in attributed.values()),
                         key=lambda c: chain.index(c))
        target_ctx.used = True

        def value_at(name, field, k):
            """Field value (or residual ParamField) in outer iteration k."""
            if field is None:
                return None
            if name in attributed and attributed[name][0] is target_ctx:
                return attributed[name][1][k]
            return field  # constant, rank expression, or inner-varying

        count = target_ctx.count
        segments: List[Tuple[int, int, tuple]] = []
        for k in range(count):
            vals = (value_at("peer", peer, k), value_at("size", size, k),
                    value_at("tag", tag, k))
            if segments and segments[-1][2] == vals:
                segments[-1] = (segments[-1][0], k, vals)
            else:
                segments.append((k, k, vals))

        def as_field(v):
            if v is None or isinstance(v, ParamField):
                return v
            return ParamField.of(v)

        out: List[Stmt] = []
        var = Var(target_ctx.var)
        for a, b, (pv, sv, tv) in segments:
            pf, sf, tf = as_field(pv), as_field(sv), as_field(tv)
            # recurse: remaining (inner-loop) variation nests inside
            stmt_list = self._emit_p2p_ranks(node, ctx, ranks, pf, sf, tf)
            if a == 0 and b == count - 1:
                out.extend(stmt_list)
                continue
            if a == b:
                cond: Expr = BinOp("=", var, Num(a))
            elif a == 0:
                cond = BinOp("<=", var, Num(b))
            elif b == count - 1:
                cond = BinOp(">=", var, Num(a))
            else:
                cond = BinOp("/\\", BinOp(">=", var, Num(a)),
                             BinOp("<=", var, Num(b)))
            out.append(IfStmt(cond, stmt_list))
        return out

    def _emit_p2p_flat(self, node, ctx, ranks, peer, size, tag,
                       varying) -> List[Stmt]:
        """Last-resort lossless emission: conditions on the flattened
        instance index across all enclosing loops.  Verbose but exact —
        used when per-instance values follow no loop-aligned pattern."""
        chain = ctx.chain()
        total = 1
        for c in chain:
            c.used = True
            total *= c.count
        for name, field in varying.items():
            if len(field.seq) != total:
                raise GenerationError(
                    f"{node!r}: parameter {name} has {len(field.seq)} "
                    f"instances but the loop nest runs {total} iterations")
        flat: Expr = Var(chain[0].var)
        for c in chain[1:]:
            flat = BinOp("+", BinOp("*", flat, Num(c.count)), Var(c.var))

        def value_at(field, k):
            if field is None:
                return None
            if field.seq is not None:
                return self._seq_value(field.seq, k)
            return field

        segments: List[Tuple[int, int, tuple]] = []
        for k in range(total):
            vals = (value_at(peer, k), value_at(size, k), value_at(tag, k))
            if segments and segments[-1][2] == vals:
                segments[-1] = (segments[-1][0], k, vals)
            else:
                segments.append((k, k, vals))

        def as_field(v):
            if v is None or isinstance(v, ParamField):
                return v
            return ParamField.of(v)

        out: List[Stmt] = []
        for a, b, (pv, sv, tv) in segments:
            stmt_list = self._emit_p2p_groups(node, ranks, as_field(pv),
                                              as_field(sv), as_field(tv))
            if a == 0 and b == total - 1:
                out.extend(stmt_list)
                continue
            if a == b:
                cond: Expr = BinOp("=", flat, Num(a))
            elif a == 0:
                cond = BinOp("<=", flat, Num(b))
            elif b == total - 1:
                cond = BinOp(">=", flat, Num(a))
            else:
                cond = BinOp("/\\", BinOp(">=", flat, Num(a)),
                             BinOp("<=", flat, Num(b)))
            out.append(IfStmt(cond, stmt_list))
        return out

    @staticmethod
    def _seq_value(seq: ValueSeq, k: int):
        return seq.value if seq.is_constant() else seq[k]

    def _emit_p2p_groups(self, node, ranks: RankSet,
                         peer: Optional[ParamField],
                         size: Optional[ParamField],
                         tag: Optional[ParamField]) -> List[Stmt]:
        """Split an irregular per-rank table into statements whose peers
        are closed forms.  Peers group by *delta* (peer - rank), which
        turns e.g. a torus row wrap into two statements (``t + 1`` for the
        interior, ``t - 2`` at the edge) instead of one per rank."""
        def table_of(field):
            return (field is not None and field.expr is not None
                    and field.expr.kind == "table")

        if not any(table_of(f) for f in (peer, size, tag)):
            return [self._p2p_statement(node, ranks, peer, size, tag)]
        groups: Dict[tuple, List[int]] = {}
        for r in ranks:
            key = []
            for name, f in (("peer", peer), ("size", size), ("tag", tag)):
                if f is None:
                    key.append(None)
                elif table_of(f):
                    v = f.expr.evaluate(r)
                    if name == "peer" and isinstance(v, int) \
                            and v != ANY_SOURCE:
                        key.append(("delta", v - r))
                    else:
                        key.append(("value", v))
                else:
                    key.append(("shared",))
            groups.setdefault(tuple(key), []).append(r)
        out = []
        for key in sorted(groups, key=lambda k: groups[k][0]):
            grp = RankSet(groups[key])
            sub = []
            for (name, f), part in zip(
                    (("peer", peer), ("size", size), ("tag", tag)), key):
                if part is None:
                    sub.append(None)
                elif part == ("shared",):
                    sub.append(f)
                elif part[0] == "delta":
                    sub.append(ParamField(expr=ParamExpr.rel(part[1])))
                else:
                    sub.append(ParamField.of(part[1]))
            out.append(self._p2p_statement(node, grp, *sub))
        return out

    def _p2p_statement(self, node: EventNode, ranks: RankSet,
                       peer: Optional[ParamField],
                       size: Optional[ParamField],
                       tag: Optional[ParamField]) -> Stmt:
        tag_value = 0
        if tag is not None:
            tag_value = int(tag.constant_value())
        if size is not None:
            sv = size.constant_value()
            size_expr = Num(int(sv if not isinstance(sv, tuple)
                                else sum(sv)))
        else:
            size_expr = Num(0)

        is_wildcard = False
        peer_ast: Optional[Expr] = None
        need_var = False
        if peer is not None:
            if peer.is_constant() and peer.constant_value() == ANY_SOURCE:
                is_wildcard = True
            elif peer.seq is not None:
                peer_ast = Num(int(peer.seq.value))
            else:
                peer_ast = self._rank_expr_ast(peer.expr)
                if peer_ast is None:
                    raise GenerationError(
                        f"{node!r}: unrenderable peer expression")
                need_var = not peer.expr.is_constant()
        if len(ranks) == 1 and need_var:
            peer_ast = Num(peer.expr.evaluate(ranks.min()))
            need_var = False
        sel = self._selector(ranks, need_var=need_var)
        if node.op in ("Send", "Isend"):
            if peer_ast is None:
                raise GenerationError(f"{node!r}: send without destination")
            return SendStmt(sel, size_expr, peer_ast, Num(1),
                            is_async=(node.op == "Isend"),
                            unsuspecting=True, tag=tag_value)
        source = None if is_wildcard else peer_ast
        return RecvStmt(sel, size_expr, source, Num(1),
                        is_async=(node.op == "Irecv"), tag=tag_value)

    # -- collectives -------------------------------------------------------------------
    @staticmethod
    def _collective_size_value(f, ranks, k=None):
        """Per-instance collective payload; per-rank variation (Gatherv
        contributions) is averaged exactly as Table 1 prescribes."""
        if f is None:
            return 0
        if f.seq is not None:
            return f.seq.value if f.seq.is_constant() else f.seq[k]
        if f.expr is not None:
            if f.expr.is_constant():
                return f.expr.constant_value()
            values = [f.expr.evaluate(r) for r in ranks]
            return sum(values) // len(values)
        totals = []
        for r in ranks:
            s = f.rank_map[r]
            totals.append(s.total() // max(len(s), 1))
        return sum(totals) // len(totals)

    def _emit_collective(self, node: EventNode,
                         ctx: Optional[_LoopCtx]) -> List[Stmt]:
        members = self.trace.comm_ranks(node.comm_id)
        if set(node.ranks) != set(members) and node.op != "Finalize":
            raise GenerationError(
                f"{node!r} covers ranks {node.ranks.serialize()} but its "
                f"communicator has members {members}; run collective "
                f"alignment (Algorithm 1) before emission")
        sel = self._selector(node.ranks)

        def varying_seq(f):
            return (f is not None and f.seq is not None
                    and not f.seq.is_constant())

        if varying_seq(node.size) or varying_seq(node.root):
            return self._emit_collective_segments(node, ctx, sel, members)
        size = self._collective_size_value(node.size, node.ranks)
        root_world = None
        if node.root is not None:
            root_world = members[int(node.root.constant_value())]
        if node.op in ("Comm_split", "Comm_dup"):
            size = 0
        return map_collective(node.op, size, root_world, sel, members)

    def _emit_collective_segments(self, node, ctx, sel, members):
        """Collective whose size and/or root varies per iteration:
        conditionals on the enclosing loop variable (or, failing
        attribution, the flattened iteration index)."""
        if ctx is None:
            raise GenerationError(
                f"{node!r}: iteration-varying collective parameters "
                f"outside a loop")
        lengths = {len(f.seq) for f in (node.size, node.root)
                   if f is not None and f.seq is not None
                   and not f.seq.is_constant()}
        if len(lengths) != 1:
            raise GenerationError(
                f"{node!r}: inconsistent collective parameter lengths")
        total = lengths.pop()

        def value_at(f, k):
            if f is None:
                return None
            if f is node.size:
                return self._collective_size_value(f, node.ranks, k)
            return f.seq.value if f.seq.is_constant() else f.seq[k]

        combined = [(value_at(node.size, k), value_at(node.root, k))
                    for k in range(total)]
        chain = ctx.chain()
        res = _attribute_variation(combined, chain)
        if res is not None:
            target_ctx, period = res
            target_ctx.used = True
            index: Expr = Var(target_ctx.var)
            values = period
        else:
            # flattened-index fallback (cf. _emit_p2p_flat)
            for c in chain:
                c.used = True
            index = Var(chain[0].var)
            for c in chain[1:]:
                index = BinOp("+", BinOp("*", index, Num(c.count)),
                              Var(c.var))
            values = combined
        segments: List[Tuple[int, int, object]] = []
        for k, v in enumerate(values):
            if segments and segments[-1][2] == v:
                segments[-1] = (segments[-1][0], k, v)
            else:
                segments.append((k, k, v))
        out: List[Stmt] = []
        for a, b, (size_v, root_v) in segments:
            root_world = None if root_v is None else members[int(root_v)]
            stmt_list = map_collective(node.op, size_v, root_world, sel,
                                       members)
            if a == 0 and b == len(values) - 1:
                out.extend(stmt_list)
                continue
            if a == b:
                cond: Expr = BinOp("=", index, Num(a))
            elif a == 0:
                cond = BinOp("<=", index, Num(b))
            elif b == len(values) - 1:
                cond = BinOp(">=", index, Num(a))
            else:
                cond = BinOp("/\\", BinOp(">=", index, Num(a)),
                             BinOp("<=", index, Num(b)))
            out.append(IfStmt(cond, stmt_list))
        return out
