"""The benchmark generator — the paper's central contribution.

Trace traversal framework with pluggable code generators, Algorithm 1
(collective alignment), Algorithm 2 (wildcard resolution with deadlock
detection), the Table 1 collective mapping, rank absolutization, and
emitters for coNCePTuaL and Python."""

from repro.generator.align import align_collectives, needs_alignment
from repro.generator.api import (GeneratedBenchmark, generate_benchmark,
                                 generate_from_application, scale_compute,
                                 trace_application)
from repro.generator.emit_conceptual import ConceptualEmitter
from repro.generator.emit_python import emit_python
from repro.generator.extrap import (ExtrapolationError, extrapolate_trace,
                                    fit_float, fit_int)
from repro.generator.mapping import average_size, map_collective
from repro.generator.rebuild import rebuild_trace
from repro.generator.traversal import (CollectiveInstance, TraceScheduler,
                                       TraversalResult)
from repro.generator.wildcard import has_wildcards, resolve_wildcards

__all__ = [
    "CollectiveInstance",
    "ConceptualEmitter",
    "ExtrapolationError",
    "extrapolate_trace",
    "fit_float",
    "fit_int",
    "GeneratedBenchmark",
    "TraceScheduler",
    "TraversalResult",
    "align_collectives",
    "average_size",
    "emit_python",
    "generate_benchmark",
    "generate_from_application",
    "has_wildcards",
    "map_collective",
    "needs_alignment",
    "rebuild_trace",
    "resolve_wildcards",
    "scale_compute",
    "trace_application",
]
