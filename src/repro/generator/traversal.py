"""Cursor-based multi-rank trace traversal (the engine behind Algorithms
1 and 2 of the paper).

Both algorithms walk the compressed trace on behalf of every rank at once,
maintaining a *traversal context* per rank, blocking a rank's cursor when
its next event cannot yet be interpreted, and switching to another rank
that can make progress:

* **Algorithm 1** (§4.3, collective alignment) blocks only at collectives:
  a rank waits at a collective until every other member of the communicator
  has arrived at its own corresponding collective call, at which point all
  the per-rank call sites are identified as *one* logical operation.
* **Algorithm 2** (§4.4, wildcard resolution) additionally interprets
  point-to-point matching: sends and receives are paired in traversal
  order under MPI's FIFO rules, blocking receives/sends/waits suspend the
  cursor, and every ``MPI_ANY_SOURCE`` receive is bound to the first
  matching sender — turning a nondeterministic program into an equivalent
  deterministic one.

If the traversal reaches a state where no cursor can advance, the trace
admits an execution that deadlocks (the paper's Fig. 5 scenario) and a
:class:`~repro.errors.TraceDeadlockError` is raised.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.errors import TraceDeadlockError, TraceError
from repro.mpi.hooks import COLLECTIVE_OPS, WAIT_OPS
from repro.scalatrace.rsd import ConcreteEvent, Trace
from repro.util.expr import ANY_SOURCE

ANY_TAG = -1


class _SendRec:
    __slots__ = ("gseq", "src", "dst", "tag", "event", "matched")

    def __init__(self, gseq, src, dst, tag, event):
        self.gseq = gseq
        self.src = src
        self.dst = dst
        self.tag = tag
        self.event = event
        self.matched = False


class _RecvRec:
    __slots__ = ("gseq", "rank", "src", "tag", "event", "matched",
                 "resolved_src")

    def __init__(self, gseq, rank, src, tag, event):
        self.gseq = gseq
        self.rank = rank
        self.src = src          # requested source (may be ANY_SOURCE)
        self.tag = tag
        self.event = event
        self.matched = False
        self.resolved_src: Optional[int] = None


class CollectiveInstance:
    """One logical collective operation: the k-th collective on a
    communicator, with every member's per-rank event."""

    __slots__ = ("comm_id", "seq", "op", "members", "canonical_callsite")

    def __init__(self, comm_id: int, seq: int, op: str):
        self.comm_id = comm_id
        self.seq = seq
        self.op = op
        self.members: Dict[int, ConcreteEvent] = {}
        self.canonical_callsite = None


class TraversalResult:
    """Everything the downstream passes need."""

    def __init__(self):
        #: (id(node), rank, instance) -> resolved source rank (world)
        self.resolutions: Dict[Tuple[int, int, int], int] = {}
        #: all collective instances, in completion order
        self.collectives: List[CollectiveInstance] = []
        #: (id(node), rank, instance) -> canonical callsite for collectives
        self.callsite_map: Dict[Tuple[int, int, int], object] = {}


class TraceScheduler:
    """Traverse a global trace on behalf of all ranks.

    ``block_p2p=False`` gives Algorithm 1 semantics (collectives only);
    ``block_p2p=True`` adds Algorithm 2's point-to-point interpretation
    and wildcard resolution.
    """

    def __init__(self, trace: Trace, block_p2p: bool):
        self.trace = trace
        self.block_p2p = block_p2p
        self.nranks = trace.world_size
        self._events: List[List[ConcreteEvent]] = [
            list(trace.iter_rank(r)) for r in range(self.nranks)]
        self._pos = [0] * self.nranks
        self._gseq = 0
        # matching state (Algorithm 2)
        self._sends_to: Dict[int, List[_SendRec]] = defaultdict(list)
        self._recvs_at: Dict[int, List[_RecvRec]] = defaultdict(list)
        self._outstanding: Dict[int, List[object]] = defaultdict(list)
        self._blocked_on: Dict[int, object] = {}
        # collective state
        self._coll_seq: Dict[Tuple[int, int], int] = defaultdict(int)
        self._coll: Dict[Tuple[int, int], CollectiveInstance] = {}
        self.result = TraversalResult()

    # -- public ------------------------------------------------------------
    def run(self) -> TraversalResult:
        iterations = 0
        alg = "resolve" if self.block_p2p else "align"
        with obs.span("generator.traversal", alg=alg, nranks=self.nranks):
            try:
                while True:
                    iterations += 1
                    progress = False
                    for rank in range(self.nranks):
                        if self._advance_rank(rank):
                            progress = True
                    if all(self._pos[r] >= len(self._events[r])
                           for r in range(self.nranks)):
                        self._check_unmatched()
                        return self.result
                    if not progress:
                        self._raise_deadlock()
            finally:
                obs.count("generator.scheduler_iterations", iterations)

    # -- per-rank stepping ------------------------------------------------------
    def _advance_rank(self, rank: int) -> bool:
        made_progress = False
        while self._pos[rank] < len(self._events[rank]):
            ev = self._events[rank][self._pos[rank]]
            if not self._process(rank, ev):
                break
            self._pos[rank] += 1
            made_progress = True
        return made_progress

    def _process(self, rank: int, ev: ConcreteEvent) -> bool:
        """Interpret one event; return True if the cursor may advance."""
        op = ev.op
        if op in COLLECTIVE_OPS:
            return self._process_collective(rank, ev)
        if not self.block_p2p:
            # Algorithm 1 ignores point-to-point structure entirely
            return True
        if op == "Isend":
            self._post_send(rank, ev, blocking=False)
            return True
        if op == "Send":
            return self._post_send(rank, ev, blocking=True)
        if op == "Irecv":
            self._post_recv(rank, ev, blocking=False)
            return True
        if op == "Recv":
            return self._post_recv(rank, ev, blocking=True)
        if op in WAIT_OPS:
            return self._process_wait(rank, ev)
        # unknown / neutral events never block
        return True

    # -- point-to-point ------------------------------------------------------------
    def _post_send(self, rank: int, ev: ConcreteEvent, blocking: bool) -> bool:
        rec = self._blocked_on.get(rank)
        if isinstance(rec, _SendRec) and rec.event is ev:
            # re-checking a blocked send
            if rec.matched:
                del self._blocked_on[rank]
                return True
            return False
        rec = _SendRec(self._gseq, rank, int(ev.peer), ev.tag, ev)
        self._gseq += 1
        self._sends_to[rec.dst].append(rec)
        self._try_match_new_send(rec)
        if not blocking:
            self._outstanding[rank].append(rec)
            return True
        if rec.matched:
            return True
        self._blocked_on[rank] = rec
        return False

    def _post_recv(self, rank: int, ev: ConcreteEvent, blocking: bool) -> bool:
        rec = self._blocked_on.get(rank)
        if isinstance(rec, _RecvRec) and rec.event is ev:
            if rec.matched:
                del self._blocked_on[rank]
                return True
            return False
        src = ANY_SOURCE if ev.peer is None or ev.peer == ANY_SOURCE \
            else int(ev.peer)
        rec = _RecvRec(self._gseq, rank, src, ev.tag, ev)
        self._gseq += 1
        self._recvs_at[rank].append(rec)
        self._try_match_new_recv(rec)
        if not blocking:
            self._outstanding[rank].append(rec)
            return True
        if rec.matched:
            return True
        self._blocked_on[rank] = rec
        return False

    def _compatible(self, send: _SendRec, recv: _RecvRec) -> bool:
        if send.matched or recv.matched:
            return False
        if send.dst != recv.rank:
            return False
        if recv.src not in (ANY_SOURCE, send.src):
            return False
        if recv.tag not in (ANY_TAG, send.tag):
            return False
        return True

    def _commit(self, send: _SendRec, recv: _RecvRec) -> None:
        send.matched = True
        recv.matched = True
        recv.resolved_src = send.src
        if recv.src == ANY_SOURCE:
            key = (id(recv.event.node), recv.rank, recv.event.instance)
            self.result.resolutions[key] = send.src

    def _try_match_new_recv(self, recv: _RecvRec) -> None:
        if recv.src != ANY_SOURCE:
            # the send list is in traversal (gseq) order, so the first
            # compatible send is channel-FIFO correct
            for send in self._sends_to[recv.rank]:
                if self._compatible(send, recv):
                    self._commit(send, recv)
                    return
            return
        # wildcard: §4.4 allows any valid sender; among the currently
        # available candidates (channel heads) prefer the lowest rank,
        # which keeps the resolved pattern regular across iterations and
        # therefore compressible
        best = None
        for send in self._sends_to[recv.rank]:
            if self._compatible(send, recv):
                if best is None or send.src < best.src:
                    best = send
        if best is not None:
            self._commit(best, recv)

    def _try_match_new_send(self, send: _SendRec) -> None:
        # posted receives are consulted in their own posting order; the
        # send list being gseq-ordered keeps per-channel FIFO intact
        for recv in self._recvs_at[send.dst]:
            if self._compatible(send, recv):
                self._commit(send, recv)
                return

    def _process_wait(self, rank: int, ev: ConcreteEvent) -> bool:
        state = self._blocked_on.get(rank)
        if isinstance(state, tuple) and state[0] == "wait" \
                and state[1] is ev:
            recs = state[2]
        else:
            offsets = ev.wait_offsets or ()
            outstanding = self._outstanding[rank]
            for off in offsets:
                if off >= len(outstanding):
                    raise TraceError(
                        f"rank {rank}: wait offset {off} exceeds "
                        f"{len(outstanding)} outstanding ops")
            # snapshot before removal (offsets index the pre-wait list)
            recs = [outstanding[off] for off in offsets]
            for rec in recs:
                outstanding.remove(rec)
            self._blocked_on[rank] = ("wait", ev, recs)
        if all(r.matched for r in recs):
            del self._blocked_on[rank]
            return True
        return False

    # -- collectives ------------------------------------------------------------------
    def _process_collective(self, rank: int, ev: ConcreteEvent) -> bool:
        state = self._blocked_on.get(rank)
        if isinstance(state, CollectiveInstance) and \
                state.members.get(rank) is ev:
            if state.canonical_callsite is not None:
                del self._blocked_on[rank]
                return True
            return False
        members = self.trace.comm_ranks(ev.comm_id)
        seq = self._coll_seq[(rank, ev.comm_id)]
        self._coll_seq[(rank, ev.comm_id)] = seq + 1
        key = (ev.comm_id, seq)
        inst = self._coll.get(key)
        if inst is None:
            inst = CollectiveInstance(ev.comm_id, seq, ev.op)
            self._coll[key] = inst
        elif inst.op != ev.op:
            raise TraceError(
                f"collective mismatch on comm {ev.comm_id} (instance "
                f"{seq}): {inst.op} vs {ev.op} at rank {rank}")
        inst.members[rank] = ev
        if len(inst.members) == len(members):
            # all arrived: this is ONE logical collective; unify call sites
            lowest = min(inst.members)
            inst.canonical_callsite = inst.members[lowest].node.callsite
            for r, mev in inst.members.items():
                self.result.callsite_map[
                    (id(mev.node), r, mev.instance)] = \
                    inst.canonical_callsite
            self.result.collectives.append(inst)
            return True
        self._blocked_on[rank] = inst
        return False

    # -- failure reporting ------------------------------------------------------------
    def _describe_block(self, rank: int) -> str:
        state = self._blocked_on.get(rank)
        if isinstance(state, CollectiveInstance):
            members = self.trace.comm_ranks(state.comm_id)
            missing = [r for r in members if r not in state.members]
            return (f"collective {state.op} on comm {state.comm_id} "
                    f"awaiting ranks {missing}")
        if isinstance(state, _SendRec):
            return f"blocking Send to rank {state.dst} (unreceived)"
        if isinstance(state, _RecvRec):
            src = "ANY_SOURCE" if state.src == ANY_SOURCE else state.src
            return f"blocking Recv from {src} (no matching send)"
        if isinstance(state, tuple) and state and state[0] == "wait":
            pending = [r for r in state[2] if not r.matched]
            return f"wait on {len(pending)} unmatched requests"
        if self._pos[rank] >= len(self._events[rank]):
            return "finished"
        return "stuck"

    def _raise_deadlock(self) -> None:
        blocked = {r: self._describe_block(r) for r in range(self.nranks)
                   if self._pos[r] < len(self._events[r])}
        raise TraceDeadlockError(
            "trace traversal deadlocked — the application admits an "
            "execution that deadlocks (cf. paper Fig. 5): "
            + "; ".join(f"rank {r}: {d}" for r, d in sorted(blocked.items())),
            cycle=sorted(blocked))

    def _check_unmatched(self) -> None:
        if not self.block_p2p:
            return
        for dst, sends in self._sends_to.items():
            for s in sends:
                if not s.matched:
                    raise TraceError(
                        f"unmatched send from rank {s.src} to rank {dst} "
                        f"at end of trace")
        for rank, recvs in self._recvs_at.items():
            for r in recvs:
                if not r.matched:
                    raise TraceError(
                        f"unmatched receive at rank {rank} at end of trace")
