"""Absolute-rank conversion (§4.2).

Applications address peers and roots in *communicator* ranks; a line that
appears to send to rank 3 may really target world rank 8.  To keep the
generated benchmark readable, every rank-valued parameter is re-expressed
in MPI_COMM_WORLD ("absolute") ranks before code is emitted.

Closed forms are preserved where the communicator layout permits: a ring
on an arithmetically regular sub-communicator re-infers to a world-space
expression; irregular layouts fall back to explicit per-rank tables, which
the emitter renders as per-task-group statements.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.scalatrace.rsd import ParamField
from repro.util.expr import ANY_SOURCE, ParamExpr
from repro.util.valueseq import ValueSeq


def absolutize_rank_field(field: ParamField, node_ranks: Sequence[int],
                          comm_ranks: Tuple[int, ...],
                          world_size: int) -> ParamField:
    """Convert a communicator-rank-valued field to world ranks.

    ``node_ranks`` are the (world) ranks covered by the RSD; expressions
    are re-inferred over exactly those ranks.
    """
    identity = comm_ranks == tuple(range(world_size))

    def to_world(comm_value):
        if comm_value == ANY_SOURCE:
            return ANY_SOURCE
        return comm_ranks[comm_value]

    if field.seq is not None:
        if identity:
            return field
        mapped = ValueSeq.from_runs(
            [(to_world(v), c) for v, c in field.seq.runs])
        return ParamField(seq=mapped)
    index = {w: i for i, w in enumerate(comm_ranks)}
    if field.rank_map is not None:
        # re-key by world rank, map values to world ranks
        m = {}
        for w in node_ranks:
            s = field.rank_map[index[w]]
            m[w] = s if identity else ValueSeq.from_runs(
                [(to_world(v), c) for v, c in s.runs])
        return ParamField(rank_map=m)
    samples = []
    for w in node_ranks:
        comm_peer = field.expr.evaluate(index[w])
        samples.append((w, to_world(comm_peer)))
    if any(v == ANY_SOURCE for _, v in samples):
        # wildcards must survive absolutization verbatim
        if all(v == ANY_SOURCE for _, v in samples):
            return ParamField(expr=ParamExpr.const(ANY_SOURCE))
        return ParamField(expr=ParamExpr.from_table(dict(samples)))
    return ParamField(expr=ParamExpr.infer(samples, comm_size=world_size))


def absolutize_value(comm_value: int, comm_ranks: Tuple[int, ...]) -> int:
    if comm_value == ANY_SOURCE:
        return ANY_SOURCE
    return comm_ranks[comm_value]
