"""Trace extrapolation (the paper's §6 future work; ScalaExtrap [26]).

"The ability to generate benchmarks that can be executed with arbitrary
numbers of MPI processes still remains an open problem.  Our prior
publication contributed a set of algorithms and techniques to extrapolate
a trace of a large-scale execution of an application from traces of
several smaller runs.  We intend to incorporate that effort into
benchmark generation." — §6

This module incorporates it: given structurally matching traces of the
same SPMD application at two or more rank counts, every scalable aspect
is fitted against the rank count and evaluated at an arbitrary target:

* loop iteration counts        — const / affine in p, log2 p, sqrt p, 1/p
* rank sets                    — per-run (start, stop, stride) fitting
* peers and roots              — relative offsets, moduli, fitted consts
* message sizes                — the same model (strong scaling shrinks
                                 per-rank messages as c/p)
* computation-time histograms  — first/rest means fitted in 1/p family

Irregular per-rank tables (e.g. CG's XOR butterfly) have no closed form
and raise :class:`ExtrapolationError` — the honest limit of the method,
shared with ScalaExtrap's requirement of "communication topologies whose
structure scales".
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import GenerationError
from repro.scalatrace.rsd import (EventNode, LoopNode, Node, ParamField,
                                  Trace)
from repro.util.expr import ANY_SOURCE, ParamExpr
from repro.util.histogram import TimeHistogram
from repro.util.rankset import RankSet
from repro.util.valueseq import ValueSeq


class ExtrapolationError(GenerationError):
    """The input traces do not admit a scalable closed form."""


# ---------------------------------------------------------------- fitting
#: candidate basis functions g(p) for v = a + b * g(p)
_FEATURES: List[Tuple[str, Callable[[int], float]]] = [
    ("p", float),
    ("log2p", lambda p: math.log2(p) if p > 1 else 0.0),
    ("sqrtp", math.sqrt),
    ("invp", lambda p: 1.0 / p),
    ("invp2", lambda p: 1.0 / (p * p)),
    ("p2", lambda p: float(p * p)),
]
# NOTE: two samples fit every two-parameter model, so with only two input
# traces the first listed feature wins ties; supply three or more traces
# to disambiguate (the ScalaExtrap paper makes the same recommendation).


def fit_int(samples: Sequence[Tuple[int, int]],
            what: str = "value") -> Callable[[int], int]:
    """Exact integer model v(p) from (rank count, value) samples.

    Tries a constant, then ``a + b*g(p)`` for each basis function,
    accepting only models that reproduce *every* sample exactly (after
    rounding).  Raises :class:`ExtrapolationError` if nothing fits.
    """
    ps = [p for p, _ in samples]
    vs = [v for _, v in samples]
    if len(set(vs)) == 1:
        v0 = vs[0]
        return lambda p: v0
    if len(samples) < 2:
        raise ExtrapolationError(
            f"{what}: one sample cannot determine a scaling law")
    for name, g in _FEATURES:
        (p1, v1), (p2, v2) = samples[0], samples[1]
        g1, g2 = g(p1), g(p2)
        if abs(g1 - g2) < 1e-12:
            continue
        b = (v2 - v1) / (g2 - g1)
        a = v1 - b * g1
        # exact for small values; integer-flooring in the application's
        # own size computations earns large values a 0.5% slack
        if all(abs(a + b * g(p) - v) <= max(0.5, 0.005 * abs(v))
               for p, v in samples):
            return lambda p, a=a, b=b, g=g: int(round(a + b * g(p)))
    raise ExtrapolationError(
        f"{what}: no scaling law fits samples {list(samples)}")


def fit_float(samples: Sequence[Tuple[int, float]],
              rel_tol: float = 0.35) -> Callable[[int], float]:
    """Approximate float model (for timing means): best of the same
    family by relative error; falls back to the last sample's value when
    nothing fits well (timing is allowed to be approximate, §4.5)."""
    vs = [v for _, v in samples]
    if max(vs) <= 0:
        return lambda p: 0.0
    if len(samples) < 2 or max(vs) - min(vs) <= 0.05 * max(vs):
        mean = sum(vs) / len(vs)
        return lambda p: mean
    pmax = max(p for p, _ in samples)
    best = None
    best_err = None
    for name, g in _FEATURES:
        (p1, v1), (p2, v2) = samples[0], samples[1]
        g1, g2 = g(p1), g(p2)
        if abs(g1 - g2) < 1e-12:
            continue
        b = (v2 - v1) / (g2 - g1)
        a = v1 - b * g1
        err = max(abs(a + b * g(p) - v) / max(abs(v), 1e-12)
                  for p, v in samples)
        # timing laws must stay non-negative well past the sample range;
        # this disambiguates "linear decrease" from the physical c/p law
        if a + b * g(8 * pmax) < -1e-12:
            continue
        if best_err is None or err < best_err:
            best, best_err = (a, b, g), err
    if best is not None and best_err < rel_tol:
        a, b, g = best
        return lambda p: max(a + b * g(p), 0.0)
    last = vs[-1]
    return lambda p: last


# ------------------------------------------------------------ structures
def extrapolate_rankset(sets: Sequence[RankSet], ps: Sequence[int],
                        target: int) -> RankSet:
    """Fit each strided run's (start, stop, stride) against p."""
    if all(len(s) == p for s, p in zip(sets, ps)):
        return RankSet.world(target)
    # contiguous sets fit directly on (min, max) — the canonical run form
    # of very small sets (2 elements) would otherwise differ in shape
    # from larger ones
    if all(s and len(s) == s.max() - s.min() + 1 for s in sets):
        lo = fit_int([(p, s.min()) for p, s in zip(ps, sets)],
                     "interval start")(target)
        hi = fit_int([(p, s.max()) for p, s in zip(ps, sets)],
                     "interval stop")(target)
        if not 0 <= lo <= hi:
            raise ExtrapolationError(
                f"interval ({lo}, {hi}) invalid at {target} ranks")
        return RankSet.interval(lo, min(hi, target - 1))
    runs_list = [s.runs for s in sets]
    lengths = {len(r) for r in runs_list}
    if len(lengths) != 1:
        raise ExtrapolationError(
            f"rank sets change shape with p: {[s.serialize() for s in sets]}")
    out = []
    for i in range(lengths.pop()):
        start = fit_int([(p, runs[i][0]) for p, runs in zip(ps, runs_list)],
                        "run start")(target)
        stop = fit_int([(p, runs[i][1]) for p, runs in zip(ps, runs_list)],
                       "run stop")(target)
        stride = fit_int([(p, runs[i][2]) for p, runs in zip(ps, runs_list)],
                         "run stride")(target)
        if stride <= 0 or stop < start or stop >= target and start >= target:
            raise ExtrapolationError(
                f"extrapolated run ({start},{stop},{stride}) is invalid "
                f"at {target} ranks")
        out.extend(range(start, min(stop, target - 1) + 1, stride))
    return RankSet(out)


def _extrapolate_seq(seqs: Sequence[ValueSeq], ps: Sequence[int],
                     target: int, what: str) -> ValueSeq:
    lengths = {len(s.runs) for s in seqs}
    if len(lengths) != 1:
        raise ExtrapolationError(f"{what}: sequence shape changes with p")
    runs = []
    for i in range(lengths.pop()):
        values = [(p, s.runs[i][0]) for p, s in zip(ps, seqs)]
        counts = [(p, s.runs[i][1]) for p, s in zip(ps, seqs)]
        if any(isinstance(v, tuple) for _, v in values):
            # vector sizes: fit element-wise with a fitted vector length
            vecs = [v for _, v in values]
            vlen = fit_int([(p, len(v)) for (p, _), v in zip(values, vecs)],
                           f"{what} vector length")(target)
            elem_samples = [(p, sum(v) // max(len(v), 1))
                            for (p, _), v in zip(values, vecs)]
            elem = fit_int(elem_samples, f"{what} vector element")(target)
            value: object = tuple([max(elem, 0)] * max(vlen, 0))
        else:
            value = fit_int(values, what)(target)
        count = fit_int(counts, f"{what} run count")(target)
        if count <= 0:
            raise ExtrapolationError(
                f"{what}: run count extrapolates to {count}")
        runs.append((value, count))
    return ValueSeq.from_runs(runs)


def _extrapolate_field(fields: Sequence[Optional[ParamField]],
                       ps: Sequence[int], target: int,
                       what: str) -> Optional[ParamField]:
    if all(f is None for f in fields):
        return None
    if any(f is None for f in fields):
        raise ExtrapolationError(f"{what}: present only in some traces")
    kinds = {("seq" if f.seq is not None else
              "expr" if f.expr is not None else "map") for f in fields}
    if len(kinds) != 1:
        raise ExtrapolationError(f"{what}: representation changes with p")
    kind = kinds.pop()
    if kind == "map":
        raise ExtrapolationError(
            f"{what}: irregular per-rank values (no closed form in p)")
    if kind == "seq":
        seq = _extrapolate_seq([f.seq for f in fields], ps, target, what)
        return ParamField(seq=seq)
    exprs = [f.expr for f in fields]
    ekinds = {e.kind for e in exprs}
    if len(ekinds) != 1:
        raise ExtrapolationError(f"{what}: expression form changes with p")
    ekind = ekinds.pop()
    if ekind == "table":
        raise ExtrapolationError(
            f"{what}: irregular per-rank table (no closed form in p)")
    if ekind == "const":
        samples = [(p, e.delta) for p, e in zip(ps, exprs)]
        if all(v == ANY_SOURCE for _, v in samples):
            return ParamField(expr=ParamExpr.const(ANY_SOURCE))
        return ParamField(expr=ParamExpr.const(
            fit_int(samples, what)(target)))
    # rel: fit the offset; moduli must track the communicator size
    delta = fit_int([(p, e.delta) for p, e in zip(ps, exprs)],
                    f"{what} offset")(target)
    mods = [e.mod for e in exprs]
    if all(m is None for m in mods):
        return ParamField(expr=ParamExpr.rel(delta))
    if any(m is None for m in mods):
        raise ExtrapolationError(f"{what}: modulus present only sometimes")
    mod = fit_int([(p, m) for p, m in zip(ps, mods)],
                  f"{what} modulus")(target)
    return ParamField(expr=ParamExpr.rel(delta, mod=mod))


def _scaled_histogram(hists: Sequence[TimeHistogram], ps: Sequence[int],
                      target: int, count: int) -> TimeHistogram:
    """Histogram with ``count`` samples at the fitted mean."""
    h = TimeHistogram()
    if count <= 0:
        return h
    mean = fit_float([(p, hist.mean) for p, hist in zip(ps, hists)])(target)
    mean = max(mean, 0.0)
    # construct directly (count may be large)
    from repro.util.histogram import _bin_index
    idx = _bin_index(mean)
    h.bins[idx] = (count, mean * count)
    h.count = count
    h.total = mean * count
    h.min = mean
    h.max = mean
    return h


# ------------------------------------------------------------- main walk
def _match_structures(node_lists: Sequence[List[Node]], what: str):
    lengths = {len(nl) for nl in node_lists}
    if len(lengths) != 1:
        raise ExtrapolationError(
            f"{what}: trace structure changes with p "
            f"({[len(nl) for nl in node_lists]} nodes)")
    for i in range(lengths.pop()):
        nodes = [nl[i] for nl in node_lists]
        types = {type(n) for n in nodes}
        if len(types) != 1:
            raise ExtrapolationError(f"{what}[{i}]: node types differ")
        if isinstance(nodes[0], EventNode):
            sigs = {(n.op, n.callsite, n.comm_id, n.wait_offsets)
                    for n in nodes}
            if len(sigs) != 1:
                raise ExtrapolationError(
                    f"{what}[{i}]: event signatures differ across traces")
        yield nodes


def _extrapolate_nodes(node_lists: Sequence[List[Node]], ps: Sequence[int],
                       target: int, what: str = "trace") -> List[Node]:
    out: List[Node] = []
    for nodes in _match_structures(node_lists, what):
        if isinstance(nodes[0], LoopNode):
            count = fit_int([(p, n.count) for p, n in zip(ps, nodes)],
                            f"{what} loop count")(target)
            if count <= 0:
                raise ExtrapolationError(
                    f"{what}: loop count extrapolates to {count}")
            ranks = extrapolate_rankset([n.ranks for n in nodes], ps,
                                        target)
            body = _extrapolate_nodes([n.body for n in nodes], ps, target,
                                      what + ".loop")
            out.append(LoopNode(count, body, ranks))
            continue
        ev: EventNode = nodes[0]
        ranks = extrapolate_rankset([n.ranks for n in nodes], ps, target)
        fields = {}
        for name in ("peer", "size", "tag", "root"):
            fields[name] = _extrapolate_field(
                [getattr(n, name) for n in nodes], ps, target,
                f"{what}.{ev.op}.{name}")
        nranks = len(ranks)
        first_per_rank = fit_int(
            [(p, n.time_first.count // max(len(n.ranks), 1))
             for p, n in zip(ps, nodes)], "first count")(target)
        rest_per_rank = fit_int(
            [(p, n.time_rest.count // max(len(n.ranks), 1))
             for p, n in zip(ps, nodes)], "rest count")(target)
        time_first = _scaled_histogram([n.time_first for n in nodes], ps,
                                       target, first_per_rank * nranks)
        time_rest = _scaled_histogram([n.time_rest for n in nodes], ps,
                                      target, rest_per_rank * nranks)
        out.append(EventNode(ev.op, ev.callsite, ev.comm_id, ranks,
                             ev.instances, fields["peer"], fields["size"],
                             fields["tag"], fields["root"],
                             ev.wait_offsets, time_first, time_rest))
    return out


def extrapolate_trace(traces: Sequence[Trace], target: int) -> Trace:
    """Extrapolate structurally matching traces to ``target`` ranks.

    ``traces`` must come from the same application at distinct rank
    counts (two or more; more samples disambiguate the scaling laws).
    """
    if len(traces) < 2:
        raise ExtrapolationError(
            "extrapolation needs traces at two or more rank counts")
    ps = [t.world_size for t in traces]
    if len(set(ps)) != len(ps):
        raise ExtrapolationError("duplicate rank counts in input traces")
    order = sorted(range(len(traces)), key=lambda i: ps[i])
    traces = [traces[i] for i in order]
    ps = [ps[i] for i in order]

    # communicator table: comm ids must agree; memberships extrapolate
    id_sets = {tuple(sorted(t.comm_table)) for t in traces}
    if len(id_sets) != 1:
        raise ExtrapolationError("communicator structure changes with p")
    comm_table = {}
    for cid in sorted(traces[0].comm_table):
        sets = [RankSet(t.comm_table[cid]) for t in traces]
        comm_table[cid] = tuple(
            extrapolate_rankset(sets, ps, target))
    nodes = _extrapolate_nodes([t.nodes for t in traces], ps, target)
    return Trace(target, nodes, comm_table)
