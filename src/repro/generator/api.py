"""Public pipeline API: application → trace → coNCePTuaL benchmark.

The one-call path mirrors Figure 1 of the paper::

    from repro.generator import generate_from_application
    bench = generate_from_application(app_program, nranks=16)
    print(bench.source)                  # readable coNCePTuaL text
    result, logs = bench.program.run(16) # execute the benchmark

or step by step: :func:`trace_application` →
:func:`align_collectives` → :func:`resolve_wildcards` →
:func:`generate_benchmark`.

These entry points are thin wrappers over :mod:`repro.pipeline` — the
single app→trace→benchmark→run code path — kept for API stability; new
code that wants per-stage reports, instrumentation, or artifact caching
should drive the pipeline directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.conceptual.ast_nodes import (ComputeStmt, ForEach, ForRep,
                                        IfStmt, Num, Program)
from repro.conceptual.compiler import ConceptualProgram
from repro.generator.emit_python import emit_python
from repro.scalatrace.rsd import Trace


def trace_application(program: Callable, nranks: int, model=None,
                      hooks=None, max_steps=None) -> Trace:
    """Run an application under ScalaTrace interposition; return the
    merged global trace."""
    from repro.pipeline import (Pipeline, PipelineConfig, RunContext,
                                TraceStage)
    config = PipelineConfig(nranks=nranks, platform=None,
                            max_steps=max_steps)
    ctx = RunContext(config, program=program, model=model, hooks=hooks)
    Pipeline([TraceStage()]).run(context=ctx)
    return ctx.artifacts["trace"]


@dataclass
class GeneratedBenchmark:
    """The generator's output bundle."""

    program: ConceptualProgram   #: compiled, runnable benchmark
    source: str                  #: readable coNCePTuaL text
    trace: Trace                 #: the processed (aligned/resolved) trace
    was_aligned: bool            #: Algorithm 1 ran
    was_resolved: bool           #: Algorithm 2 ran

    def python_source(self) -> str:
        """The same benchmark rendered by the pluggable Python backend."""
        return emit_python(self.program.ast, self.trace.world_size)


def generate_benchmark(trace: Trace, align: bool = True,
                       resolve: bool = True, include_timing: bool = True,
                       split_first_rest: bool = True,
                       name: str = "generated") -> GeneratedBenchmark:
    """Convert a ScalaTrace trace into an executable coNCePTuaL benchmark.

    ``align``/``resolve`` correspond to Algorithms 1 and 2; each runs only
    after its cheap O(r) pre-check says the trace needs it (§4.3/§4.4).
    ``split_first_rest=False`` disables the path-aware first-iteration
    timing conditionals (an ablation of §4.5's summarization error).
    """
    from repro.pipeline import (Pipeline, PipelineConfig, RunContext,
                                generation_stages)
    config = PipelineConfig(nranks=trace.world_size, platform=None,
                            align=align, resolve=resolve,
                            include_timing=include_timing,
                            split_first_rest=split_first_rest, name=name)
    ctx = RunContext(config)
    ctx.artifacts["trace"] = trace
    Pipeline(generation_stages()).run(context=ctx)
    return _bundle(ctx)


def _bundle(ctx) -> GeneratedBenchmark:
    """Assemble the classic output bundle from a finished context."""
    program = ctx.artifacts["benchmark"]
    return GeneratedBenchmark(program=program, source=program.source,
                              trace=ctx.artifacts["trace"],
                              was_aligned=ctx.artifacts["was_aligned"],
                              was_resolved=ctx.artifacts["was_resolved"])


def generate_from_application(app_program: Callable, nranks: int,
                              model=None, **kwargs) -> GeneratedBenchmark:
    """Figure 1 in one call: trace the application, then generate."""
    from repro.pipeline import (Pipeline, PipelineConfig, RunContext,
                                TraceStage, generation_stages)
    config = PipelineConfig(nranks=nranks, platform=None, **kwargs)
    ctx = RunContext(config, program=app_program, model=model)
    Pipeline([TraceStage()] + generation_stages()).run(context=ctx)
    return _bundle(ctx)


def scale_compute(program: ConceptualProgram, factor: float,
                  name: Optional[str] = None,
                  where: Optional[Callable] = None) -> ConceptualProgram:
    """Scale COMPUTE statements by ``factor`` (the §5.4 what-if study:
    1.0 = original compute time, 0.0 = infinitely fast CPUs).

    ``where`` optionally selects which COMPUTE statements to scale
    (``where(stmt) -> bool``), realizing §5.4's refinement of "different
    speedup factors for different computational phases" — compose several
    calls with different predicates and factors.  Works on the AST,
    exactly like hand-editing the generated source.
    """
    if factor < 0:
        raise ValueError("factor must be non-negative")

    def scale_stmt(stmt):
        if isinstance(stmt, ComputeStmt):
            if where is not None and not where(stmt):
                return stmt
            usecs = stmt.usecs
            if not isinstance(usecs, Num):
                raise ValueError(
                    "can only scale constant COMPUTE durations")
            return ComputeStmt(stmt.sel, Num(round(usecs.value * factor,
                                                   6)))
        if isinstance(stmt, ForRep):
            return ForRep(stmt.count, [scale_stmt(s) for s in stmt.body])
        if isinstance(stmt, ForEach):
            return ForEach(stmt.var, stmt.lo, stmt.hi,
                           [scale_stmt(s) for s in stmt.body])
        if isinstance(stmt, IfStmt):
            return IfStmt(stmt.cond, [scale_stmt(s) for s in stmt.then],
                          [scale_stmt(s) for s in stmt.otherwise])
        return stmt

    ast = Program([scale_stmt(s) for s in program.ast.stmts])
    return ConceptualProgram(ast, name=name or
                             f"{program.name}-x{factor:g}")
