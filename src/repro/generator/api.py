"""Public pipeline API: application → trace → coNCePTuaL benchmark.

The one-call path mirrors Figure 1 of the paper::

    from repro.generator import generate_from_application
    bench = generate_from_application(app_program, nranks=16)
    print(bench.source)                  # readable coNCePTuaL text
    result, logs = bench.program.run(16) # execute the benchmark

or step by step: :func:`trace_application` →
:func:`align_collectives` → :func:`resolve_wildcards` →
:func:`generate_benchmark`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.conceptual.ast_nodes import (ComputeStmt, ForEach, ForRep,
                                        IfStmt, Num, Program)
from repro.conceptual.compiler import ConceptualProgram
from repro.generator.align import align_collectives, needs_alignment
from repro.generator.emit_conceptual import ConceptualEmitter
from repro.generator.emit_python import emit_python
from repro.generator.wildcard import has_wildcards, resolve_wildcards
from repro.mpi.world import run_spmd
from repro.scalatrace.rsd import Trace
from repro.scalatrace.tracer import ScalaTraceHook


def trace_application(program: Callable, nranks: int, model=None,
                      hooks=None, max_steps=None) -> Trace:
    """Run an application under ScalaTrace interposition; return the
    merged global trace."""
    tracer = ScalaTraceHook()
    all_hooks = [tracer] + list(hooks or [])
    run_spmd(program, nranks, model=model, hooks=all_hooks,
             max_steps=max_steps)
    return tracer.trace


@dataclass
class GeneratedBenchmark:
    """The generator's output bundle."""

    program: ConceptualProgram   #: compiled, runnable benchmark
    source: str                  #: readable coNCePTuaL text
    trace: Trace                 #: the processed (aligned/resolved) trace
    was_aligned: bool            #: Algorithm 1 ran
    was_resolved: bool           #: Algorithm 2 ran

    def python_source(self) -> str:
        """The same benchmark rendered by the pluggable Python backend."""
        return emit_python(self.program.ast, self.trace.world_size)


def generate_benchmark(trace: Trace, align: bool = True,
                       resolve: bool = True, include_timing: bool = True,
                       split_first_rest: bool = True,
                       name: str = "generated") -> GeneratedBenchmark:
    """Convert a ScalaTrace trace into an executable coNCePTuaL benchmark.

    ``align``/``resolve`` correspond to Algorithms 1 and 2; each runs only
    after its cheap O(r) pre-check says the trace needs it (§4.3/§4.4).
    ``split_first_rest=False`` disables the path-aware first-iteration
    timing conditionals (an ablation of §4.5's summarization error).
    """
    was_aligned = was_resolved = False
    if align and needs_alignment(trace):
        trace = align_collectives(trace)
        was_aligned = True
    if resolve and has_wildcards(trace):
        trace = resolve_wildcards(trace)
        was_resolved = True
    emitter = ConceptualEmitter(trace, include_timing=include_timing,
                                split_first_rest=split_first_rest)
    ast = emitter.generate()
    program = ConceptualProgram(ast, name=name)
    return GeneratedBenchmark(program=program, source=program.source,
                              trace=trace, was_aligned=was_aligned,
                              was_resolved=was_resolved)


def generate_from_application(app_program: Callable, nranks: int,
                              model=None, **kwargs) -> GeneratedBenchmark:
    """Figure 1 in one call: trace the application, then generate."""
    trace = trace_application(app_program, nranks, model=model)
    return generate_benchmark(trace, **kwargs)


def scale_compute(program: ConceptualProgram, factor: float,
                  name: Optional[str] = None,
                  where: Optional[Callable] = None) -> ConceptualProgram:
    """Scale COMPUTE statements by ``factor`` (the §5.4 what-if study:
    1.0 = original compute time, 0.0 = infinitely fast CPUs).

    ``where`` optionally selects which COMPUTE statements to scale
    (``where(stmt) -> bool``), realizing §5.4's refinement of "different
    speedup factors for different computational phases" — compose several
    calls with different predicates and factors.  Works on the AST,
    exactly like hand-editing the generated source.
    """
    if factor < 0:
        raise ValueError("factor must be non-negative")

    def scale_stmt(stmt):
        if isinstance(stmt, ComputeStmt):
            if where is not None and not where(stmt):
                return stmt
            usecs = stmt.usecs
            if not isinstance(usecs, Num):
                raise ValueError(
                    "can only scale constant COMPUTE durations")
            return ComputeStmt(stmt.sel, Num(round(usecs.value * factor,
                                                   6)))
        if isinstance(stmt, ForRep):
            return ForRep(stmt.count, [scale_stmt(s) for s in stmt.body])
        if isinstance(stmt, ForEach):
            return ForEach(stmt.var, stmt.lo, stmt.hi,
                           [scale_stmt(s) for s in stmt.body])
        if isinstance(stmt, IfStmt):
            return IfStmt(stmt.cond, [scale_stmt(s) for s in stmt.then],
                          [scale_stmt(s) for s in stmt.otherwise])
        return stmt

    ast = Program([scale_stmt(s) for s in program.ast.stmts])
    return ConceptualProgram(ast, name=name or
                             f"{program.name}-x{factor:g}")
