"""Table 1: mapping MPI collectives onto coNCePTuaL collectives.

coNCePTuaL expresses collectives with MULTICAST, REDUCE, and SYNCHRONIZE;
MPI collectives without a direct equivalent are substituted by one or more
coNCePTuaL collectives with a similar data-movement pattern and volume —
exactly the paper's Table 1:

==============  =================================================
MPI collective  coNCePTuaL implementation
==============  =================================================
Barrier         SYNCHRONIZE
Bcast           MULTICAST (root → participants)
Reduce          REDUCE → root
Allreduce       REDUCE → all participants
Alltoall        many-to-many MULTICAST
Allgather       REDUCE + MULTICAST
Allgatherv      REDUCE with averaged message size + MULTICAST
Alltoallv       MULTICAST with averaged message size
Gather          REDUCE
Gatherv         REDUCE with averaged message size
Reduce_scatter  n many-to-one REDUCEs with different sizes/roots
Scatter         MULTICAST
Scatterv        MULTICAST with averaged message size
Comm_split/dup  SYNCHRONIZE (parent-communicator synchronization)
==============  =================================================
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.conceptual.ast_nodes import (MulticastStmt, Num, ReduceStmt,
                                        SingleTask, Stmt, SyncStmt,
                                        TaskSelector)
from repro.errors import GenerationError

#: Ops where a vector (tuple) size is averaged per Table 1.
AVERAGED_OPS = frozenset({"Gatherv", "Scatterv", "Allgatherv", "Alltoallv"})


def average_size(size) -> int:
    """Vector sizes collapse to their average (Table 1's 'averaged
    message size'); scalars pass through."""
    if isinstance(size, tuple):
        return sum(size) // max(len(size), 1)
    return int(size)


def map_collective(op: str, size, root_world: Optional[int],
                   participants_sel: TaskSelector,
                   members: Tuple[int, ...]) -> List[Stmt]:
    """coNCePTuaL statements standing in for one MPI collective.

    ``size`` is the per-rank payload (possibly a tuple for v-variants),
    ``root_world`` the absolutized root where applicable,
    ``participants_sel`` a selector covering all communicator members.
    """
    n = average_size(size)
    size_expr = Num(n)
    if op == "Barrier":
        return [SyncStmt(participants_sel)]
    if op in ("Comm_split", "Comm_dup"):
        # communicators vanish from generated code entirely (§4.2): the
        # benchmark's groups are static, so, like coNCePTuaL itself, all
        # sub-communicator setup happens implicitly outside the measured
        # region and no statement is emitted
        return []
    if op == "Bcast":
        return [MulticastStmt(SingleTask(Num(root_world)), size_expr,
                              participants_sel)]
    if op in ("Scatter", "Scatterv"):
        return [MulticastStmt(SingleTask(Num(root_world)), size_expr,
                              participants_sel)]
    if op == "Reduce":
        return [ReduceStmt(participants_sel, size_expr,
                           SingleTask(Num(root_world)))]
    if op in ("Gather", "Gatherv"):
        return [ReduceStmt(participants_sel, size_expr,
                           SingleTask(Num(root_world)))]
    if op == "Allreduce":
        return [ReduceStmt(participants_sel, size_expr, participants_sel)]
    if op in ("Alltoall", "Alltoallv"):
        return [MulticastStmt(participants_sel, size_expr,
                              participants_sel)]
    if op in ("Allgather", "Allgatherv"):
        root = min(members)
        total = n * len(members)
        return [
            ReduceStmt(participants_sel, size_expr, SingleTask(Num(root))),
            MulticastStmt(SingleTask(Num(root)), Num(total),
                          participants_sel),
        ]
    if op == "Reduce_scatter":
        sizes = size if isinstance(size, tuple) else \
            tuple([int(size)] * len(members))
        if len(sizes) != len(members):
            raise GenerationError(
                f"Reduce_scatter has {len(sizes)} sizes for "
                f"{len(members)} members")
        return [ReduceStmt(participants_sel, Num(sz),
                           SingleTask(Num(member)))
                for member, sz in zip(members, sizes)]
    if op == "Finalize":
        return []  # the compiled benchmark finalizes implicitly
    raise GenerationError(f"no Table 1 mapping for collective {op!r}")
