"""A second code-generation backend: coNCePTuaL AST → executable Python.

The paper's traversal framework takes *pluggable* per-language generators
(§4.1: "By implementing a generator for a different target language, we
can easily generate code for languages other than CONCEPTUAL as well").
This backend demonstrates that: it renders the same benchmark as a
self-contained Python SPMD generator function over :mod:`repro.mpi`,
so the output can be ``exec``'d and run on the simulator directly —
playing the role the C+MPI backend plays for real coNCePTuaL.
"""

from __future__ import annotations

from typing import List

from repro.conceptual.ast_nodes import (AllTasks, AwaitStmt, BinOp,
                                        ComputeStmt, Expr, ForEach, ForRep,
                                        IfStmt, IsIn, LogStmt, MulticastStmt,
                                        Num, Program, RecvStmt, ReduceStmt,
                                        ResetStmt, SendStmt, SingleTask,
                                        Stmt, SuchThat, SyncStmt,
                                        TaskSelector, Var)
from repro.errors import GenerationError

_PY_OPS = {"+": "+", "-": "-", "*": "*", "/": "//", "MOD": "%",
           "=": "==", "<>": "!=", "<": "<", ">": ">", "<=": "<=",
           ">=": ">=", "/\\": "and", "\\/": "or"}


def _expr(e: Expr) -> str:
    if isinstance(e, Num):
        return repr(e.value)
    if isinstance(e, Var):
        if e.name == "num_tasks":
            return "mpi.size"
        return e.name
    if isinstance(e, IsIn):
        members = ", ".join(_expr(m) for m in e.members)
        return f"(({_expr(e.item)}) in ({members},))"
    if isinstance(e, BinOp):
        if e.op == "DIVIDES":
            return f"(({_expr(e.right)}) % ({_expr(e.left)}) == 0)"
        return f"(({_expr(e.left)}) {_PY_OPS[e.op]} ({_expr(e.right)}))"
    raise GenerationError(f"cannot translate expression {e!r}")


def _sel_guard(sel: TaskSelector, bind: str = "mpi.rank") -> str:
    """Python boolean expression: does this rank match the selector?
    Also returns the variable binding prelude needed (task var = rank)."""
    if isinstance(sel, AllTasks):
        return "True"
    if isinstance(sel, SingleTask):
        return f"({bind} == ({_expr(sel.expr)}))"
    if isinstance(sel, SuchThat):
        # the task variable is bound to the candidate rank
        pred = _expr(sel.predicate)
        return pred  # caller must bind sel.var
    raise GenerationError(f"cannot translate selector {sel!r}")


def _sel_var(sel: TaskSelector) -> str:
    if isinstance(sel, AllTasks) and sel.var:
        return sel.var
    if isinstance(sel, SuchThat):
        return sel.var
    return "_t"


def _sel_members_expr(sel: TaskSelector) -> str:
    """Python expression producing the sorted member list of a selector."""
    var = _sel_var(sel)
    guard = _sel_guard(sel, bind=var)
    return f"[{var} for {var} in range(mpi.size) if ({guard})]"


class _Py:
    def __init__(self):
        self.lines: List[str] = []

    def emit(self, depth: int, text: str) -> None:
        self.lines.append("    " * depth + text)


def _emit_stmts(py: _Py, stmts, depth: int) -> None:
    for stmt in stmts:
        _emit_stmt(py, stmt, depth)


def _emit_guarded(py: _Py, sel: TaskSelector, depth: int) -> int:
    """Emit the 'am I selected' guard; returns the new depth."""
    var = _sel_var(sel)
    if isinstance(sel, AllTasks):
        if sel.var:
            py.emit(depth, f"{sel.var} = mpi.rank")
        return depth
    if isinstance(sel, SingleTask):
        py.emit(depth, f"if mpi.rank == ({_expr(sel.expr)}):")
        return depth + 1
    py.emit(depth, f"{var} = mpi.rank")
    py.emit(depth, f"if {_expr(sel.predicate)}:")
    return depth + 1


def _emit_stmt(py: _Py, stmt: Stmt, depth: int) -> None:
    if isinstance(stmt, ForRep):
        py.emit(depth, f"for _ in range({_expr(stmt.count)}):")
        _emit_stmts(py, stmt.body, depth + 1)
        return
    if isinstance(stmt, ForEach):
        py.emit(depth, f"for {stmt.var} in range({_expr(stmt.lo)}, "
                       f"({_expr(stmt.hi)}) + 1):")
        _emit_stmts(py, stmt.body, depth + 1)
        return
    if isinstance(stmt, IfStmt):
        py.emit(depth, f"if {_expr(stmt.cond)}:")
        _emit_stmts(py, stmt.then, depth + 1)
        if stmt.otherwise:
            py.emit(depth, "else:")
            _emit_stmts(py, stmt.otherwise, depth + 1)
        return
    if isinstance(stmt, SendStmt):
        d = _emit_guarded(py, stmt.sel, depth)
        count = _expr(stmt.count)
        if stmt.count != Num(1):
            py.emit(d, f"for _ in range({count}):")
            d += 1
        if stmt.is_async:
            py.emit(d, f"_req = yield from mpi.isend(dest={_expr(stmt.dest)},"
                       f" nbytes={_expr(stmt.size)}, tag={stmt.tag})")
            py.emit(d, "_pending.append(_req)")
        else:
            py.emit(d, f"yield from mpi.send(dest={_expr(stmt.dest)}, "
                       f"nbytes={_expr(stmt.size)}, tag={stmt.tag})")
        if not stmt.unsuspecting:
            raise GenerationError(
                "the Python backend only renders generator output, which "
                "always uses unsuspecting sends + explicit receives")
        return
    if isinstance(stmt, RecvStmt):
        d = _emit_guarded(py, stmt.sel, depth)
        if stmt.count != Num(1):
            py.emit(d, f"for _ in range({_expr(stmt.count)}):")
            d += 1
        src = "ANY_SOURCE" if stmt.source is None else _expr(stmt.source)
        if stmt.is_async:
            py.emit(d, f"_req = yield from mpi.irecv(source={src}, "
                       f"tag={stmt.tag})")
            py.emit(d, "_pending.append(_req)")
        else:
            py.emit(d, f"yield from mpi.recv(source={src}, tag={stmt.tag})")
        return
    if isinstance(stmt, MulticastStmt):
        sources = _sel_members_expr(stmt.sel)
        targets = _sel_members_expr(stmt.targets)
        py.emit(depth, f"_src = {sources}")
        py.emit(depth, f"_tgt = {targets}")
        py.emit(depth, f"_size = {_expr(stmt.size)}")
        py.emit(depth, "yield from _multicast(mpi, _src, _tgt, _size)")
        return
    if isinstance(stmt, ReduceStmt):
        sources = _sel_members_expr(stmt.sel)
        targets = _sel_members_expr(stmt.targets)
        py.emit(depth, f"_src = {sources}")
        py.emit(depth, f"_tgt = {targets}")
        py.emit(depth, f"_size = {_expr(stmt.size)}")
        py.emit(depth, "yield from _reduce(mpi, _src, _tgt, _size)")
        return
    if isinstance(stmt, SyncStmt):
        members = _sel_members_expr(stmt.sel)
        py.emit(depth, f"_grp = {members}")
        py.emit(depth, "if mpi.rank in _grp:")
        py.emit(depth + 1,
                "yield from mpi.barrier(comm=mpi.group_comm(_grp))")
        return
    if isinstance(stmt, ComputeStmt):
        d = _emit_guarded(py, stmt.sel, depth)
        py.emit(d, f"yield from mpi.compute(({_expr(stmt.usecs)}) * 1e-6)")
        return
    if isinstance(stmt, AwaitStmt):
        d = _emit_guarded(py, stmt.sel, depth)
        py.emit(d, "if _pending:")
        py.emit(d + 1, "yield from mpi.waitall(_pending)")
        py.emit(d + 1, "_pending.clear()")
        return
    if isinstance(stmt, ResetStmt):
        py.emit(depth, "_t0 = mpi.now()")
        return
    if isinstance(stmt, LogStmt):
        py.emit(depth, f"_log.append(({stmt.label!r}, mpi.rank, "
                       f"(mpi.now() - _t0) * 1e6))")
        return
    raise GenerationError(f"cannot translate statement {stmt!r}")


_PRELUDE = '''\
"""Auto-generated communication benchmark (Python backend).

Run with:  repro.mpi.run_spmd(benchmark, nranks={nranks}, ...)
Per-rank log records accumulate in the module-level `collected_logs`.
"""

from repro.mpi.api import ANY_SOURCE

collected_logs = []


def _multicast(mpi, sources, targets, size):
    if set(sources) == set(targets) and len(sources) > 1:
        grp = sorted(set(sources))
        if mpi.rank in grp:
            yield from mpi.alltoall(size, comm=mpi.group_comm(grp))
        return
    for src in sorted(set(sources)):
        grp = sorted(set(targets) | {{src}})
        if mpi.rank in grp:
            comm = mpi.group_comm(grp)
            yield from mpi.bcast(size, root=comm.rank_of_world(src),
                                 comm=comm)


def _reduce(mpi, sources, targets, size):
    src, tgt = set(sources), set(targets)
    grp = sorted(src | tgt)
    if mpi.rank not in grp:
        return
    comm = mpi.group_comm(grp)
    if src == tgt:
        yield from mpi.allreduce(size, comm=comm)
        return
    root = min(tgt)
    yield from mpi.reduce(size, root=comm.rank_of_world(root), comm=comm)
    rest = sorted(tgt - {{root}})
    if rest:
        bgrp = sorted({{root}} | set(rest))
        if mpi.rank in bgrp:
            bcomm = mpi.group_comm(bgrp)
            yield from mpi.bcast(size, root=bcomm.rank_of_world(root),
                                 comm=bcomm)


def benchmark(mpi):
    _pending = []
    _log = collected_logs
    _t0 = mpi.now()
'''


def emit_python(program: Program, nranks: int) -> str:
    """Render a generated coNCePTuaL AST as executable Python source.

    The output defines ``benchmark(mpi)``, runnable via
    :func:`repro.mpi.run_spmd`.
    """
    py = _Py()
    _emit_stmts(py, program.stmts, 1)
    py.emit(1, "yield from mpi.finalize()")
    return _PRELUDE.format(nranks=nranks) + "\n".join(py.lines) + "\n"
