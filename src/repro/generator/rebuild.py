"""Re-trace a transformed event stream back into compressed form.

Algorithms 1 and 2 conceptually rewrite the trace (unified collective call
sites; resolved wildcard sources).  We apply their outputs by decompressing
each rank's stream, substituting, and feeding the result through the same
on-the-fly compression and radix merge the tracer uses — which is exactly
the paper's "append an RSD to the output queue, then compress" step and
preserves its guarantees: one RSD per collective, per-rank event order
intact, output still compressed.
"""

from __future__ import annotations

from typing import Dict

from repro.mpi.hooks import P2P_OPS, WAIT_OPS
from repro.scalatrace.compress import CompressionQueue
from repro.scalatrace.merge import merge_traces
from repro.scalatrace.rsd import Trace
from repro.generator.traversal import TraversalResult


def rebuild_trace(trace: Trace, result: TraversalResult,
                  fold_collectives: bool = True) -> Trace:
    """New compressed trace with the traversal's substitutions applied.

    ``fold_collectives=False`` defers all loop folding around collectives
    to the caller's global recompression pass (Algorithm 1), so that every
    rank presents its collectives at the same structural positions.
    """
    per_rank = []
    for rank in range(trace.world_size):
        queue = CompressionQueue(rank, fold_collectives=fold_collectives)
        replay: Dict[tuple, object] = {}

        def draw(node, kind, hist):
            it = replay.get((id(node), kind))
            if it is None:
                it = hist.replay_values()
                replay[(id(node), kind)] = it
            return next(it)

        for ev in trace.iter_rank(rank):
            node = ev.node
            # path-aware timing: loop-entry-first instances draw from the
            # first-iteration histogram, the rest from the subsequent one
            period = node.first_period()
            if period is not None and ev.instance % period == 0:
                delta = draw(node, "first", node.time_first)
            elif node.time_rest.count:
                delta = draw(node, "rest", node.time_rest)
            else:
                delta = draw(node, "first", node.time_first)
            key = (id(node), rank, ev.instance)
            callsite = result.callsite_map.get(key, node.callsite)
            peer = result.resolutions.get(key, ev.peer)
            kwargs = {}
            if ev.op in P2P_OPS:
                kwargs.update(peer=peer, size=ev.size, tag=ev.tag)
            elif ev.op in WAIT_OPS:
                kwargs.update(wait_offsets=ev.wait_offsets)
            else:
                kwargs.update(size=ev.size, root=ev.root)
            queue.append_event(ev.op, callsite, ev.comm_id, delta_t=delta,
                               **kwargs)
        per_rank.append(Trace(trace.world_size, queue.nodes,
                              dict(trace.comm_table)))
    return merge_traces(per_rank)
