"""Trace and profile comparison utilities.

§5.2's per-event check: two traces are *semantically equivalent* when
every rank's decompressed event stream matches on operation, communicator
membership, peers, sizes, tags, roots, and wait structure — ignoring the
call-stack signatures that always differ between an application and its
generated benchmark (hence the paper replays both traces through
ScalaReplay before comparing; our normalization achieves the same).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.mpi.hooks import WAIT_OPS
from repro.scalatrace.rsd import Trace


#: bookkeeping events that generated benchmarks legitimately omit (their
#: communicators are static, §4.2), so equivalence ignores them
_BOOKKEEPING = frozenset({"Comm_split", "Comm_dup"})


def normalized_stream(trace: Trace, rank: int) -> List[tuple]:
    """Per-rank event stream with communicators canonicalized to their
    membership (ids differ across independently collected traces), the
    whole MPI_Wait family (Wait/Waitany/Waitsome) folded into MPI_Waitall
    — the generator emits one AWAITS statement for any of them — and
    communicator-management bookkeeping dropped."""
    out = []
    for ev in trace.iter_rank(rank):
        if ev.op in _BOOKKEEPING:
            continue
        op = "Waitall" if ev.op in WAIT_OPS else ev.op
        comm = tuple(trace.comm_ranks(ev.comm_id))
        out.append((op, comm, ev.peer, ev.size, ev.tag, ev.root,
                    ev.wait_offsets))
    return out


def traces_equivalent(a: Trace, b: Trace,
                      check_wildcards: bool = True) -> Tuple[bool, str]:
    """Semantic equivalence of two traces (per-event, per-rank).

    ``check_wildcards=False`` treats a wildcard receive as equal to any
    concrete-source receive with the same size/tag — useful when comparing
    an original trace against its Algorithm 2-resolved counterpart.
    """
    if a.world_size != b.world_size:
        return False, (f"world sizes differ: {a.world_size} vs "
                       f"{b.world_size}")
    from repro.util.expr import ANY_SOURCE

    for rank in range(a.world_size):
        sa = normalized_stream(a, rank)
        sb = normalized_stream(b, rank)
        if len(sa) != len(sb):
            return False, (f"rank {rank}: {len(sa)} vs {len(sb)} events")
        for i, (ea, eb) in enumerate(zip(sa, sb)):
            if ea == eb:
                continue
            if not check_wildcards:
                la, lb = list(ea), list(eb)
                if ANY_SOURCE in (la[2], lb[2]):
                    la[2] = lb[2] = None
                if la == lb:
                    continue
            return False, (f"rank {rank} event {i}: {ea} != {eb}")
    return True, "traces equivalent"


def total_recorded_time(trace: Trace) -> float:
    """Sum of all computation deltas recorded in the trace (all ranks)."""
    def walk(nodes):
        from repro.scalatrace.rsd import EventNode
        total = 0.0
        for n in nodes:
            if isinstance(n, EventNode):
                total += n.time.total
            else:
                total += walk(n.body)
        return total
    return walk(trace.nodes)


def compression_ratio(trace: Trace) -> float:
    """Decompressed events per stored trace node."""
    nodes = trace.node_count()
    return trace.event_count() / nodes if nodes else 0.0
