"""Communication-matrix analysis of traces.

A p×p matrix of bytes (or message counts) exchanged between rank pairs is
the standard first look at an application's communication structure —
the kind of view tools like mpiP and Vampir provide.  Here it doubles as
another correctness lens: an application and its generated benchmark must
produce identical matrices.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.scalatrace.rsd import Trace

#: events counted as directed traffic, with the byte interpretation
_P2P_SENDS = ("Send", "Isend")


def communication_matrix(trace: Trace,
                         counts: bool = False) -> np.ndarray:
    """p×p matrix: entry [src, dst] is bytes (or messages) sent src→dst.

    Only point-to-point traffic is directed; collectives are excluded
    (they have no single peer).  Wildcard receives do not contribute —
    the matrix is built from the send side, which is always concrete.
    """
    p = trace.world_size
    m = np.zeros((p, p), dtype=np.int64)
    for rank in range(p):
        for ev in trace.iter_rank(rank):
            if ev.op not in _P2P_SENDS:
                continue
            comm = trace.comm_ranks(ev.comm_id)
            dst = comm[ev.peer]
            m[rank, dst] += 1 if counts else int(ev.size)
    return m


def matrices_equal(a: Trace, b: Trace) -> bool:
    return bool(np.array_equal(communication_matrix(a),
                               communication_matrix(b)))


def render_matrix(m: np.ndarray, max_width: int = 100) -> str:
    """ASCII heat map: '.' for zero, then 1-9 by decile of the maximum."""
    p = m.shape[0]
    peak = m.max()
    lines = []
    header = "    " + "".join(f"{j % 10}" for j in range(p))
    lines.append(header[:max_width])
    for i in range(p):
        row = []
        for j in range(p):
            v = m[i, j]
            if v == 0:
                row.append(".")
            else:
                row.append(str(min(9, 1 + int(8 * v / peak))))
        lines.append((f"{i:3d} " + "".join(row))[:max_width])
    lines.append(f"peak: {int(peak)} bytes/pair")
    return "\n".join(lines)


def hotspots(m: np.ndarray, top: int = 5) -> List[Tuple[int, int, int]]:
    """The ``top`` heaviest (src, dst, bytes) pairs."""
    flat = [(int(m[i, j]), i, j) for i in range(m.shape[0])
            for j in range(m.shape[1]) if m[i, j] > 0]
    flat.sort(reverse=True)
    return [(i, j, v) for v, i, j in flat[:top]]
