"""mpiP-style lightweight MPI profiling (Vetter & McCracken).

The paper's §5.2 correctness check links both the original application and
the generated benchmark against mpiP and compares, per MPI operation type,
the event counts and message volumes.  :class:`MpiPHook` gathers exactly
those statistics from the interposition stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.mpi.hooks import COLLECTIVE_OPS, MPIEvent, MPIHook, P2P_OPS

#: Operations counted as data movement (waits and communicator management
#: are bookkeeping, not traffic, and their counts legitimately differ
#: between an application and its generated benchmark).
DATA_OPS = (P2P_OPS | COLLECTIVE_OPS) - {
    "Finalize", "Comm_split", "Comm_dup"}


@dataclass
class OpStats:
    calls: int = 0
    bytes: int = 0

    def add(self, nbytes: int) -> None:
        self.calls += 1
        self.bytes += nbytes


class MpiPHook(MPIHook):
    """Collects per-op call counts and message volumes, per rank and
    aggregated."""

    def __init__(self, track_ops: Optional[Set[str]] = None):
        self.track_ops = track_ops if track_ops is not None else DATA_OPS
        self.per_rank: Dict[Tuple[int, str], OpStats] = {}
        self.total: Dict[str, OpStats] = {}

    def on_event(self, event: MPIEvent) -> None:
        if event.op not in self.track_ops:
            return
        nbytes = event.total_bytes
        if event.op == "Alltoall":
            # scalar alltoall records the per-destination payload; scale
            # to the full per-rank volume so it is commensurable with
            # Alltoallv's size vector
            nbytes *= event.comm.size
        self.per_rank.setdefault((event.rank, event.op),
                                 OpStats()).add(nbytes)
        self.total.setdefault(event.op, OpStats()).add(nbytes)

    # -- queries ------------------------------------------------------------
    def calls(self, op: str) -> int:
        return self.total.get(op, OpStats()).calls

    def bytes(self, op: str) -> int:
        return self.total.get(op, OpStats()).bytes

    def snapshot(self) -> Dict[str, Tuple[int, int]]:
        """op -> (calls, bytes), aggregated over ranks."""
        return {op: (s.calls, s.bytes) for op, s in sorted(self.total.items())}

    def rank_snapshot(self, rank: int) -> Dict[str, Tuple[int, int]]:
        out = {}
        for (r, op), s in self.per_rank.items():
            if r == rank:
                out[op] = (s.calls, s.bytes)
        return dict(sorted(out.items()))

    def report(self) -> str:
        lines = ["op | calls | bytes"]
        for op, s in sorted(self.total.items()):
            lines.append(f"{op} | {s.calls} | {s.bytes}")
        return "\n".join(lines)


def stats_match(a: MpiPHook, b: MpiPHook,
                per_rank: bool = True) -> Tuple[bool, str]:
    """Compare two profiles; returns (equal, human-readable diff)."""
    diffs = []
    if a.snapshot() != b.snapshot():
        sa, sb = a.snapshot(), b.snapshot()
        for op in sorted(set(sa) | set(sb)):
            if sa.get(op) != sb.get(op):
                diffs.append(f"{op}: {sa.get(op)} vs {sb.get(op)}")
    if per_rank and not diffs:
        ranks = {r for r, _ in a.per_rank} | {r for r, _ in b.per_rank}
        for r in sorted(ranks):
            ra, rb = a.rank_snapshot(r), b.rank_snapshot(r)
            if ra != rb:
                for op in sorted(set(ra) | set(rb)):
                    if ra.get(op) != rb.get(op):
                        diffs.append(
                            f"rank {r} {op}: {ra.get(op)} vs {rb.get(op)}")
    if diffs:
        return False, "; ".join(diffs[:20])
    return True, "profiles identical"
