"""Measurement and verification tools: the mpiP-style profiler (§5.2),
ScalaReplay (§5.2), trace comparison, and report rendering."""

from repro.tools.compare import (compression_ratio, normalized_stream,
                                 total_recorded_time, traces_equivalent)
from repro.tools.matrix import (communication_matrix, hotspots,
                                matrices_equal, render_matrix)
from repro.tools.mpip import DATA_OPS, MpiPHook, OpStats, stats_match
from repro.tools.replay import replay_program, replay_trace
from repro.tools.report import render_table

__all__ = [
    "DATA_OPS",
    "communication_matrix",
    "hotspots",
    "matrices_equal",
    "render_matrix",
    "MpiPHook",
    "OpStats",
    "compression_ratio",
    "normalized_stream",
    "render_table",
    "replay_program",
    "replay_trace",
    "stats_match",
    "total_recorded_time",
    "traces_equivalent",
]
