"""ScalaReplay: execute a ScalaTrace trace directly on the simulator.

The paper's §5.2 uses ScalaReplay to compare an application's trace with
its generated benchmark's trace "fairly": replaying both erases spurious
structural differences (call-stack signatures) while preserving the
semantic event stream.  Replay is also useful on its own — it is the
trace-driven twin of the generated benchmark.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import TraceError
from repro.mpi.api import ANY_SOURCE, MPIProcess
from repro.mpi.hooks import WAIT_OPS
from repro.mpi.world import SpmdResult
from repro.scalatrace.rsd import Trace
from repro.util.expr import ANY_SOURCE as TRACE_ANY


def replay_program(trace: Trace, include_timing: bool = True):
    """SPMD program function that re-executes ``trace`` event by event.

    Communicators are rebuilt by replaying the recorded Comm_split /
    Comm_dup events; trace communicator ids are mapped onto the replayed
    ones by membership.  Computation gaps are reproduced from the per-node
    timing histograms (deterministic round-robin draws, preserving each
    node's total recorded time).
    """

    def program(mpi: MPIProcess):
        outstanding = []
        replay_iters: Dict[int, object] = {}
        # trace comm id -> replayed Communicator, matched by membership
        by_ranks = {tuple(range(trace.world_size)): mpi.comm_world}

        def comm_for(comm_id):
            ranks = trace.comm_ranks(comm_id)
            try:
                return by_ranks[tuple(ranks)]
            except KeyError:
                raise TraceError(
                    f"replay reached an event on communicator {comm_id} "
                    f"({ranks}) before replaying its creation") from None

        def draw(node, kind, hist):
            it = replay_iters.get((id(node), kind))
            if it is None:
                it = hist.replay_values()
                replay_iters[(id(node), kind)] = it
            return next(it)

        for ev in trace.iter_rank(mpi.rank):
            node = ev.node
            # loop-entry-first instances draw from the first-iteration
            # histogram, the rest from the subsequent-iteration one
            period = node.first_period()
            if period is not None and ev.instance % period == 0:
                delta = draw(node, "first", node.time_first)
            elif node.time_rest.count:
                delta = draw(node, "rest", node.time_rest)
            else:
                delta = draw(node, "first", node.time_first)
            if include_timing and delta > 0:
                yield from mpi.compute(delta)

            op = ev.op
            if op == "Isend":
                req = yield from mpi.isend(dest=ev.peer, nbytes=ev.size,
                                           tag=ev.tag,
                                           comm=comm_for(ev.comm_id))
                outstanding.append(req)
            elif op == "Send":
                yield from mpi.send(dest=ev.peer, nbytes=ev.size,
                                    tag=ev.tag, comm=comm_for(ev.comm_id))
            elif op == "Irecv":
                src = ANY_SOURCE if ev.peer == TRACE_ANY else ev.peer
                req = yield from mpi.irecv(source=src, tag=ev.tag,
                                           comm=comm_for(ev.comm_id))
                outstanding.append(req)
            elif op == "Recv":
                src = ANY_SOURCE if ev.peer == TRACE_ANY else ev.peer
                yield from mpi.recv(source=src, tag=ev.tag,
                                    comm=comm_for(ev.comm_id))
            elif op in WAIT_OPS:
                # Waitany/Waitsome record the offsets of the requests
                # that actually completed, so replaying them as a
                # waitall over exactly those requests reproduces the
                # original completion (the simulator is deterministic)
                offsets = ev.wait_offsets or ()
                reqs = [outstanding[o] for o in offsets]
                for r in reqs:
                    outstanding.remove(r)
                if len(reqs) == 1 and op == "Wait":
                    yield from mpi.wait(reqs[0])
                else:
                    yield from mpi.waitall(reqs)
            elif op == "Barrier":
                yield from mpi.barrier(comm=comm_for(ev.comm_id))
            elif op == "Bcast":
                yield from mpi.bcast(ev.size, root=ev.root,
                                     comm=comm_for(ev.comm_id))
            elif op == "Reduce":
                yield from mpi.reduce(ev.size, root=ev.root,
                                      comm=comm_for(ev.comm_id))
            elif op == "Allreduce":
                yield from mpi.allreduce(ev.size,
                                         comm=comm_for(ev.comm_id))
            elif op in ("Gather", "Gatherv"):
                fn = mpi.gather if op == "Gather" else mpi.gatherv
                yield from fn(ev.size, root=ev.root,
                              comm=comm_for(ev.comm_id))
            elif op in ("Scatter", "Scatterv"):
                fn = mpi.scatter if op == "Scatter" else mpi.scatterv
                yield from fn(ev.size, root=ev.root,
                              comm=comm_for(ev.comm_id))
            elif op in ("Allgather", "Allgatherv"):
                fn = (mpi.allgather if op == "Allgather"
                      else mpi.allgatherv)
                yield from fn(ev.size, comm=comm_for(ev.comm_id))
            elif op == "Alltoall":
                yield from mpi.alltoall(ev.size, comm=comm_for(ev.comm_id))
            elif op == "Alltoallv":
                yield from mpi.alltoallv(list(ev.size),
                                         comm=comm_for(ev.comm_id))
            elif op == "Reduce_scatter":
                yield from mpi.reduce_scatter(list(ev.size),
                                              comm=comm_for(ev.comm_id))
            elif op == "Comm_split":
                color, key = ev.size
                sub = yield from mpi.comm_split(
                    comm_for(ev.comm_id),
                    None if color == -1 else color, key)
                if sub is not None:
                    by_ranks[sub.world_ranks] = sub
            elif op == "Comm_dup":
                sub = yield from mpi.comm_dup(comm_for(ev.comm_id))
                by_ranks[sub.world_ranks] = sub
            elif op == "Finalize":
                yield from mpi.finalize()
            else:
                raise TraceError(f"replay cannot interpret op {op!r}")

    return program


def replay_trace(trace: Trace, model=None, hooks=None,
                 include_timing: bool = True,
                 max_steps: Optional[int] = None) -> SpmdResult:
    """Run a full replay of ``trace``; returns the simulation result.

    Thin wrapper over the pipeline's :class:`ReplayStage`, so replays
    share the one orchestrated code path (context, instrumentation,
    stage records) with the rest of the system.
    """
    from repro.pipeline import Pipeline, PipelineConfig, ReplayStage, \
        RunContext
    config = PipelineConfig(nranks=trace.world_size, platform=None,
                            include_timing=include_timing,
                            max_steps=max_steps)
    ctx = RunContext(config, model=model, hooks=hooks)
    ctx.artifacts["trace"] = trace
    Pipeline([ReplayStage()]).run(context=ctx)
    return ctx.artifacts["run_result"]
