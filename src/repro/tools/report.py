"""Plain-text table rendering for benchmark harness output."""

from __future__ import annotations

from typing import List, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Fixed-width table; numbers are right-aligned, text left-aligned."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([_fmt(v) for v in row])
    widths = [max(len(r[c]) for r in cells) for c in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(cells):
        rendered = "  ".join(
            row[c].rjust(widths[c]) if _numeric(cells, c) and i > 0
            else row[c].ljust(widths[c])
            for c in range(len(row)))
        lines.append(rendered.rstrip())
        if i == 0:
            lines.append("-" * len(lines[-1]))
    return "\n".join(lines)


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 100:
            return f"{v:.0f}"
        if abs(v) >= 1:
            return f"{v:.2f}"
        return f"{v:.4f}"
    return str(v)


def _numeric(cells: List[List[str]], col: int) -> bool:
    for row in cells[1:]:
        try:
            float(row[col])
        except ValueError:
            return False
    return True
