"""Command-line interface for the benchmark-generation pipeline.

Mirrors Fig. 1 of the paper as shell steps::

    repro apps                                    # list workloads
    repro trace --app lu --np 16 -o lu.scalatrace # run + trace
    repro generate lu.scalatrace -o lu.ncptl      # trace -> coNCePTuaL
    repro run lu.ncptl --np 16                    # execute the benchmark
    repro replay lu.scalatrace                    # ScalaReplay
    repro compare a.scalatrace b.scalatrace       # semantic equivalence
    repro pipeline --app lu --np 8                # the whole flow, cached

Every pipeline-shaped command is a thin shell over
:mod:`repro.pipeline` — the one orchestrated code path — and accepts
``--metrics FILE`` to dump the instrumentation event log (JSON lines)
of everything the run did.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
import tempfile

from repro import __version__, obs
from repro.apps import APPS
from repro.generator import extrapolate_trace
from repro.pipeline import (CompileStage, Pipeline, PipelineConfig,
                            ReplayStage, RunContext, RunStage, TraceStage,
                            full_pipeline, generation_stages)
from repro.scalatrace.serialize import dump_trace, load_trace
from repro.sim.network import PLATFORMS
from repro.tools.compare import compression_ratio, traces_equivalent
from repro.tools.mpip import MpiPHook
from repro.tools.matrix import (communication_matrix, hotspots,
                                render_matrix)


def _add_platform(parser):
    parser.add_argument("--platform", default="bluegene",
                        choices=sorted(PLATFORMS),
                        help="network model preset")


def _add_metrics(parser):
    parser.add_argument("--metrics", metavar="FILE",
                        help="write the instrumentation event log "
                             "(JSON lines) to FILE")


def _add_topology(parser):
    from repro.topology import TOPOLOGIES
    parser.add_argument("--topology", choices=sorted(TOPOLOGIES),
                        help="route messages over a fabric topology with "
                             "per-link contention (default: flat wire)")
    parser.add_argument("--placement", default="block",
                        help="rank-to-node placement: block, roundrobin, "
                             "random[:seed], map:<file> (default: block)")
    parser.add_argument("--topology-param", action="append", default=[],
                        metavar="KEY=VALUE", dest="topology_params",
                        help="topology/fabric parameter (repeatable), "
                             "e.g. nodes=4, arity=8, hop_latency=1e-6, "
                             "'dims=[2,2,2]'")


def _topology_kwargs(args) -> dict:
    """PipelineConfig keyword args for the ``--topology`` flag family."""
    params = {}
    for item in getattr(args, "topology_params", None) or []:
        key, sep, value = item.partition("=")
        if not sep or not key:
            raise SystemExit(
                f"error: --topology-param needs KEY=VALUE, got {item!r}")
        try:
            params[key] = json.loads(value)
        except ValueError:
            params[key] = value
    out = {"topology": args.topology, "placement": args.placement}
    if params:
        out["topology_params"] = params
    return out


def _add_schedule(parser):
    from repro.sim.policy import POLICIES
    parser.add_argument("--schedule-policy", choices=POLICIES,
                        default="canonical", dest="schedule_policy",
                        help="scheduler tie-break policy for simulated "
                             "runs (default: canonical; see "
                             "docs/FUZZING.md)")
    parser.add_argument("--schedule-seed", type=int, default=None,
                        dest="schedule_seed", metavar="N",
                        help="seed for a non-canonical schedule policy "
                             "(default: 0)")


def _schedule_kwargs(args) -> dict:
    """PipelineConfig keyword args for the ``--schedule-*`` flag family.

    Canonical runs return an empty mapping so every pre-policy call
    site stays byte-identical; a seed without a seeded policy is an
    argv error, caught here rather than deep inside a run.
    """
    policy = getattr(args, "schedule_policy", "canonical")
    seed = getattr(args, "schedule_seed", None)
    if policy == "canonical":
        if seed is not None:
            raise SystemExit(
                "error: --schedule-seed requires a non-canonical "
                "--schedule-policy (see docs/FUZZING.md)")
        return {}
    return {"schedule_policy": policy, "schedule_seed": seed}


def _add_queueing(parser):
    from repro.sim.queueing import QUEUE_DISCIPLINES
    parser.add_argument("--queue-discipline", choices=QUEUE_DISCIPLINES,
                        default="fifo", dest="queue_discipline",
                        help="per-link queue discipline for routed runs "
                             "(default: fifo; non-fifo disciplines need "
                             "--topology; see docs/SCENARIOS.md)")
    parser.add_argument("--queue-param", action="append", default=[],
                        metavar="KEY=VALUE", dest="queue_params",
                        help="queue-discipline knob (repeatable), e.g. "
                             "target=1e-6, interval=1e-5, penalty=5e-5")


def _queueing_kwargs(args) -> dict:
    """PipelineConfig keyword args for the ``--queue-*`` flag family.

    FIFO (the default) returns an empty mapping so pre-queueing call
    sites stay byte-identical; knobs without a non-fifo discipline are
    an argv error, caught here rather than deep inside a run.
    """
    discipline = getattr(args, "queue_discipline", "fifo")
    params = {}
    for item in getattr(args, "queue_params", None) or []:
        key, sep, value = item.partition("=")
        if not sep or not key:
            raise SystemExit(
                f"error: --queue-param needs KEY=VALUE, got {item!r}")
        try:
            params[key] = json.loads(value)
        except ValueError:
            params[key] = value
    if discipline in (None, "fifo"):
        if params:
            raise SystemExit(
                "error: --queue-param requires a non-fifo "
                "--queue-discipline")
        return {}
    out = {"queue_discipline": discipline}
    if params:
        out["queue_params"] = params
    return out


def _scenario_ref(value: str):
    """Resolve a ``--scenario``/positional scenario argument: a file
    path loads as an inline spec; anything else passes through as a
    curated registry name (resolved by the config/job layer)."""
    if os.path.exists(value):
        from repro.scenarios import load_scenario
        return load_scenario(value)
    return value


@contextlib.contextmanager
def _metrics(args):
    """Collect instrumentation for the command; dump it if requested."""
    inst = obs.Instrumentation()
    with obs.instrumented(inst):
        yield inst
    path = getattr(args, "metrics", None)
    if path:
        lines = inst.write_jsonl(path)
        print(f"wrote {lines} metric records -> {path}")


def _write_atomic(path: str, text: str) -> None:
    """Write ``text`` to ``path`` via a temp file + rename, so a failed
    generation can never leave a truncated output behind."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-",
                               suffix=os.path.basename(path))
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise


def cmd_apps(args):
    if args.json:
        listing = {name: {"description": APPS[name].description,
                          "classes": sorted(APPS[name].classes),
                          "pattern": APPS[name].pattern}
                   for name in sorted(APPS)}
        print(json.dumps(listing, indent=2, sort_keys=True))
        return 0
    for name in sorted(APPS):
        app = APPS[name]
        print(f"{name:10s} [{app.pattern}] {app.description}")
    return 0


def cmd_trace(args):
    config = PipelineConfig(app=args.app, nranks=args.np, cls=args.cls,
                            platform=args.platform,
                            **_schedule_kwargs(args))
    with _metrics(args):
        result = Pipeline([TraceStage()]).run(config)
    trace = result.trace
    dump_trace(trace, args.output)
    print(f"traced {args.app} (class {args.cls}, {args.np} ranks) on "
          f"{args.platform}: {trace.event_count()} events in "
          f"{trace.node_count()} trace nodes "
          f"({compression_ratio(trace):.1f}x compression) -> {args.output}")
    return 0


def cmd_generate(args):
    trace = load_trace(args.trace)
    config = PipelineConfig(nranks=trace.world_size, platform=None,
                            align=not args.no_align,
                            resolve=not args.no_resolve,
                            include_timing=not args.no_timing)
    ctx = RunContext(config)
    ctx.artifacts["trace"] = trace
    with _metrics(args):
        Pipeline(generation_stages()).run(context=ctx)
    source = ctx.artifacts["source"]
    # generation is complete before the output file is touched
    _write_atomic(args.output, source)
    notes = []
    if ctx.artifacts["was_aligned"]:
        notes.append("collectives aligned (Algorithm 1)")
    if ctx.artifacts["was_resolved"]:
        notes.append("wildcards resolved (Algorithm 2)")
    print(f"generated {args.output} "
          f"({len(source.splitlines())} lines"
          + (", " + ", ".join(notes) if notes else "") + ")")
    if args.python:
        from repro.generator.emit_python import emit_python
        _write_atomic(args.python,
                      emit_python(ctx.artifacts["benchmark"].ast,
                                  trace.world_size))
        print(f"generated {args.python} (Python backend)")
    return 0


def cmd_run(args):
    with open(args.program) as fh:
        source = fh.read()
    config = PipelineConfig(nranks=args.np, platform=args.platform,
                            **_topology_kwargs(args),
                            **_queueing_kwargs(args),
                            **_schedule_kwargs(args))
    hook = MpiPHook()
    ctx = RunContext(config, hooks=[hook])
    ctx.artifacts["source"] = source
    with _metrics(args):
        Pipeline([CompileStage(), RunStage()]).run(context=ctx)
    result = ctx.artifacts["run_result"]
    logs = ctx.artifacts["logs"]
    print(f"ran {args.program} on {args.np} simulated ranks "
          f"({args.platform}): {result.total_time * 1e6:.1f} us total")
    print(logs.report())
    if args.profile:
        print(hook.report())
    return 0


def cmd_replay(args):
    trace = load_trace(args.trace)
    config = PipelineConfig(nranks=trace.world_size,
                            platform=args.platform,
                            **_topology_kwargs(args),
                            **_queueing_kwargs(args),
                            **_schedule_kwargs(args))
    ctx = RunContext(config)
    ctx.artifacts["trace"] = trace
    with _metrics(args):
        Pipeline([ReplayStage()]).run(context=ctx)
    result = ctx.artifacts["run_result"]
    print(f"replayed {args.trace} on {trace.world_size} ranks "
          f"({args.platform}): {result.total_time * 1e6:.1f} us total, "
          f"{result.messages_sent} messages")
    return 0


def cmd_pipeline(args):
    """The full Fig. 1 flow in one command, with per-stage reporting."""
    plan = None
    if args.fault_plan:
        from repro.faults import load_fault_plan
        plan = load_fault_plan(args.fault_plan)
    config = PipelineConfig(app=args.app, nranks=args.np, cls=args.cls,
                            platform=args.platform,
                            use_cache=not args.no_cache,
                            cache_dir=args.cache_dir,
                            fault_plan=plan,
                            stage_retries=args.stage_retries,
                            profile=args.profile,
                            scenario=(_scenario_ref(args.scenario)
                                      if args.scenario else None),
                            **_topology_kwargs(args),
                            **_queueing_kwargs(args),
                            **_schedule_kwargs(args))
    from repro.errors import SimDeadlockError
    with _metrics(args) as inst:
        try:
            result = full_pipeline(run=not args.no_run).run(config)
        except SimDeadlockError as exc:
            # the normal outcome of replaying a fuzz reproducer seed:
            # report the structured evidence instead of a traceback
            print(f"deadlock: {exc}", file=sys.stderr)
            if exc.diagnostic is not None:
                print(exc.diagnostic.render(indent="  "),
                      file=sys.stderr)
            return 1
    print(result.report())
    hits = [r.stage + (" (generate)" if r.stage == "emit" else "")
            for r in result.records if r.cache == "hit"]
    if hits:
        print(f"cache hit: {', '.join(hits)}")
    if result.fault_report is not None:
        print(result.fault_report.render())
    if args.output:
        if result.source is None:
            print(f"no generated source to write to {args.output} "
                  "(degraded run)", file=sys.stderr)
        else:
            _write_atomic(args.output, result.source)
            print(f"wrote {args.output}")
    if args.profile:
        phases = {name[len("engine.profile."):-len("_s")]: value
                  for name, value in sorted(inst.counters.items())
                  if name.startswith("engine.profile.")
                  and name.endswith("_s")}
        if phases:
            total = sum(phases.values())
            print("engine phase profile (all simulation stages):")
            for phase, secs in phases.items():
                share = 100.0 * secs / total if total else 0.0
                print(f"  {phase:<10} {secs * 1e3:9.2f} ms  {share:5.1f}%")
        else:
            print("engine phase profile: no simulation stage executed")
    if args.report:
        print(inst.report())
    return 1 if result.degraded else 0


def cmd_faults_template(args):
    from repro.faults import TEMPLATE
    if args.output:
        _write_atomic(args.output, TEMPLATE)
        print(f"wrote {args.output}")
    else:
        print(TEMPLATE, end="")
    return 0


def cmd_faults_validate(args):
    from repro.errors import FaultPlanError
    from repro.faults import load_fault_plan
    try:
        plan = load_fault_plan(args.plan)
    except FaultPlanError as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    print(f"OK: {plan.describe()} (digest {plan.digest()})")
    return 0


def cmd_faults_run(args):
    from repro.apps import make_app
    from repro.errors import SimulationError
    from repro.faults import FaultInjector, load_fault_plan
    from repro.mpi.world import run_spmd
    from repro.sim.network import make_model
    plan = load_fault_plan(args.plan)
    faults = FaultInjector(plan)
    program = make_app(args.app, args.np, args.cls)
    with _metrics(args):
        try:
            result = run_spmd(program, args.np,
                              model=make_model(args.platform),
                              faults=faults)
        except SimulationError as exc:
            partial = getattr(exc, "partial", None)
            if partial is None:
                raise
            print(f"simulation failed: {exc}")
            print(partial.fault_report.render())
            return 1
    print(f"ran {args.app} (class {args.cls}, {args.np} ranks) on "
          f"{args.platform} under plan {args.plan}: "
          f"{result.total_time * 1e6:.1f} us total")
    print(result.fault_report.render())
    return 1 if result.degraded else 0


def cmd_sweep_template(args):
    from repro.sweep import TEMPLATE as SWEEP_TEMPLATE
    if args.output:
        _write_atomic(args.output, SWEEP_TEMPLATE)
        print(f"wrote {args.output}")
    else:
        print(SWEEP_TEMPLATE, end="")
    return 0


def cmd_sweep_validate(args):
    from repro.errors import SweepPlanError
    from repro.sweep import load_sweep_plan
    try:
        plan = load_sweep_plan(args.plan)
        plan.check()
    except SweepPlanError as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    print(f"OK: {plan.describe()}")
    return 0


def cmd_sweep_run(args):
    from repro.sweep import default_workers, load_sweep_plan, run_sweep
    plan = load_sweep_plan(args.plan)
    workers = args.workers if args.workers > 0 else default_workers()
    with _metrics(args) as inst:
        result = run_sweep(plan, workers=workers,
                           use_cache=not args.no_cache,
                           cache_dir=args.cache_dir)
    print(result.report())
    if args.output:
        _write_atomic(args.output,
                      json.dumps(result.to_dict(), indent=2,
                                 sort_keys=True) + "\n")
        print(f"wrote {args.output}")
    if args.jsonl:
        _write_atomic(args.jsonl, result.canonical_jsonl())
        print(f"wrote {args.jsonl} ({len(result.points)} point lines)")
    if args.report:
        print(inst.report())
    return 1 if result.failed else 0


def cmd_fuzz_template(args):
    from repro.fuzz import TEMPLATE as FUZZ_TEMPLATE
    if args.output:
        _write_atomic(args.output, FUZZ_TEMPLATE)
        print(f"wrote {args.output}")
    else:
        print(FUZZ_TEMPLATE, end="")
    return 0


def cmd_fuzz_validate(args):
    from repro.errors import FuzzError
    from repro.fuzz import load_campaign
    try:
        campaign = load_campaign(args.campaign)
        campaign.check()
    except FuzzError as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    print(f"OK: {campaign.describe()}")
    return 0


def cmd_fuzz_run(args):
    import dataclasses
    from repro.fuzz import (load_campaign, load_corpus, run_campaign,
                            save_corpus)
    from repro.sweep import default_workers
    campaign = load_campaign(args.campaign)
    if args.seeds is not None:
        campaign = dataclasses.replace(campaign, seeds=args.seeds)
    workers = args.workers if args.workers > 0 else default_workers()
    corpus = load_corpus(args.corpus) if args.corpus else None
    with _metrics(args) as inst:
        report = run_campaign(campaign, workers=workers,
                              use_cache=args.cache_dir is not None,
                              cache_dir=args.cache_dir or ".repro-cache",
                              corpus=corpus)
    print(report.summary())
    for cell in report.divergent_cells:
        for cls in cell["classes"]:
            if not cls["canonical"] and cls["reproducer"]:
                print(f"  reproduce [{cell['label']} {cls['kind']}]: "
                      f"{cls['reproducer']['command']}")
    if args.output:
        _write_atomic(args.output,
                      json.dumps(report.to_dict(), indent=2,
                                 sort_keys=True) + "\n")
        print(f"wrote {args.output}")
    if args.corpus:
        save_corpus(args.corpus, corpus)
        print(f"corpus: {args.corpus} ({report.new_classes} new "
              f"class(es))")
    if args.report:
        print(inst.report())
    # a divergence (even a deadlock) is a *finding*, not a failure:
    # the exit status only reflects whether the campaign was driven
    return 0


def cmd_scenarios_list(args):
    from repro.scenarios import SCENARIOS
    if args.json:
        listing = {name: {"description": s.description,
                          "digest": s.digest(),
                          "topology": s.topology,
                          "queue_discipline": s.queue_discipline}
                   for name, s in SCENARIOS.items()}
        print(json.dumps(listing, indent=2, sort_keys=True))
        return 0
    for name, s in SCENARIOS.items():
        print(f"{name:22s} {s.description}")
    return 0


def cmd_scenarios_show(args):
    from repro.errors import ScenarioError
    from repro.scenarios import dumps_scenario
    try:
        scn = _scenario_ref(args.scenario)
        if isinstance(scn, str):
            from repro.scenarios import get_scenario
            scn = get_scenario(scn)
    except ScenarioError as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    print(dumps_scenario(scn), end="")
    print(f"# {scn.describe()}")
    return 0


def cmd_scenarios_template(args):
    from repro.scenarios import TEMPLATE as SCENARIO_TEMPLATE
    if args.output:
        _write_atomic(args.output, SCENARIO_TEMPLATE)
        print(f"wrote {args.output}")
    else:
        print(SCENARIO_TEMPLATE, end="")
    return 0


def cmd_scenarios_run(args):
    """Run one scenario × app cell through the sweep engine.

    The job compiles to a one-point sweep plan — the identical plan the
    service's ``scenario`` job kind executes — so ``-o`` writes the same
    canonical bytes ``repro jobs result`` would return for the same
    submission.
    """
    from repro.errors import ScenarioError
    from repro.scenarios import ScenarioJob
    from repro.sweep import default_workers, run_sweep
    try:
        job = ScenarioJob(scenario=_scenario_ref(args.scenario),
                          app=args.app, nranks=args.np, cls=args.cls,
                          platform=args.platform, mode=args.mode)
    except ScenarioError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    workers = args.workers if args.workers > 0 else default_workers()
    with _metrics(args) as inst:
        result = run_sweep(job.to_sweep_plan(), workers=workers,
                           use_cache=not args.no_cache,
                           cache_dir=args.cache_dir)
    print(job.describe())
    print(result.report())
    for point in result.points:
        extras = {k: point.metrics[k] for k in
                  ("links_used", "link_wait_s", "link_drops")
                  if k in point.metrics}
        if extras:
            print("  " + "  ".join(f"{k}={v}" for k, v
                                   in sorted(extras.items())))
    if args.output:
        _write_atomic(args.output, result.canonical_json())
        print(f"wrote {args.output}")
    if args.jsonl:
        _write_atomic(args.jsonl, result.canonical_jsonl())
        print(f"wrote {args.jsonl}")
    if args.report:
        print(inst.report())
    return 1 if result.failed else 0


def cmd_serve(args):
    """Run the sweep service until interrupted (see docs/SERVICE.md)."""
    import asyncio
    from repro.service import SweepService
    from repro.sweep import default_workers
    workers = args.workers if args.workers > 0 else default_workers()
    service = SweepService(args.state_dir, cache_dir=args.cache_dir,
                           workers=workers, host=args.host,
                           port=args.port)

    async def serve() -> None:
        await service.start()
        replay = service.store.replay
        print(f"repro service {__version__} on "
              f"http://{service.host}:{service.port} "
              f"(state {args.state_dir}, cache {args.cache_dir}, "
              f"{workers} engine worker(s))", flush=True)
        if replay.get("jobs"):
            print(f"journal replay: {replay['jobs']} job(s), "
                  f"{replay['requeued']} requeued", flush=True)
        await service.serve_forever()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        print("service stopped")
    return 0


def cmd_jobs_submit(args):
    from repro.service import client
    with open(args.plan) as fh:
        spec_text = fh.read()
    job = client.submit(args.url, spec_text, kind=args.kind)
    shared = " (deduplicated: shares an existing execution)" \
        if job.get("deduplicated") else ""
    print(f"submitted {job['id']} [{job['kind']}] "
          f"digest {job['digest']} state {job['state']}{shared}")
    if args.wait:
        job = client.wait(args.url, job["id"], timeout=args.timeout)
        print(f"{job['id']} -> {job['state']}"
              + (f" ({job['error']})" if job.get("error") else ""))
        return 0 if job["state"] == "done" else 1
    return 0


def cmd_jobs_status(args):
    from repro.service import client
    job = client.status(args.url, args.id)
    print(json.dumps(job, indent=2, sort_keys=True))
    return 1 if job.get("state") == "failed" else 0


def cmd_jobs_result(args):
    from repro.service import client
    fmt = "jsonl" if args.jsonl else "json"
    text = client.result(args.url, args.id, fmt=fmt)
    if args.output:
        _write_atomic(args.output, text)
        print(f"wrote {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def cmd_jobs_health(args):
    import time as _time
    from repro.errors import ServiceError
    from repro.service import client
    deadline = _time.monotonic() + args.timeout
    while True:
        try:
            health = client.healthz(args.url)
            break
        except ServiceError:
            if _time.monotonic() >= deadline:
                raise
            _time.sleep(0.2)
    print(json.dumps(health, indent=2, sort_keys=True))
    return 0


def cmd_extrapolate(args):
    if len(args.traces) < 2:
        print("error: extrapolation needs traces at two or more distinct "
              "rank counts (three or more disambiguate scaling laws); "
              f"got {len(args.traces)} trace(s)", file=sys.stderr)
        return 2
    traces = [load_trace(path) for path in args.traces]
    big = extrapolate_trace(traces, args.np)
    dump_trace(big, args.output)
    sizes = ", ".join(str(t.world_size) for t in traces)
    print(f"extrapolated {{{sizes}}}-rank traces to {args.np} ranks: "
          f"{big.event_count()} events in {big.node_count()} nodes "
          f"-> {args.output}")
    return 0


def cmd_matrix(args):
    trace = load_trace(args.trace)
    m = communication_matrix(trace, counts=args.counts)
    print(render_matrix(m))
    unit = "messages" if args.counts else "bytes"
    for src_r, dst, v in hotspots(m):
        print(f"  {src_r} -> {dst}: {v} {unit}")
    return 0


def cmd_compare(args):
    a = load_trace(args.trace_a)
    b = load_trace(args.trace_b)
    ok, detail = traces_equivalent(a, b,
                                   check_wildcards=not args.ignore_sources)
    print(("EQUIVALENT: " if ok else "DIFFERENT: ") + detail)
    return 0 if ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="automatic communication-benchmark generation "
                    "(ScalaTrace -> coNCePTuaL) on a simulated MPI")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("apps", help="list available applications")
    p.add_argument("--json", action="store_true",
                   help="machine-readable listing")
    p.set_defaults(func=cmd_apps)

    p = sub.add_parser("trace", help="trace an application")
    p.add_argument("--app", required=True, choices=sorted(APPS))
    p.add_argument("--np", type=int, required=True)
    p.add_argument("--class", dest="cls", default="S",
                   help="problem class (S/W/A/B/C)")
    p.add_argument("-o", "--output", required=True)
    _add_platform(p)
    _add_schedule(p)
    _add_metrics(p)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("generate",
                       help="generate a coNCePTuaL benchmark from a trace")
    p.add_argument("trace")
    p.add_argument("-o", "--output", required=True)
    p.add_argument("--python", help="also emit the Python backend here")
    p.add_argument("--no-align", action="store_true",
                   help="skip Algorithm 1 (collective alignment)")
    p.add_argument("--no-resolve", action="store_true",
                   help="skip Algorithm 2 (wildcard resolution)")
    p.add_argument("--no-timing", action="store_true",
                   help="omit COMPUTE statements")
    _add_metrics(p)
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("run", help="run a coNCePTuaL benchmark")
    p.add_argument("program")
    p.add_argument("--np", type=int, required=True)
    p.add_argument("--profile", action="store_true",
                   help="print the mpiP-style profile")
    _add_platform(p)
    _add_topology(p)
    _add_queueing(p)
    _add_schedule(p)
    _add_metrics(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("replay", help="replay a trace (ScalaReplay)")
    p.add_argument("trace")
    _add_platform(p)
    _add_topology(p)
    _add_queueing(p)
    _add_schedule(p)
    _add_metrics(p)
    p.set_defaults(func=cmd_replay)

    p = sub.add_parser("pipeline",
                       help="run the full Fig. 1 flow (trace -> align -> "
                            "resolve -> emit -> compile -> run) with "
                            "per-stage timing, caching, and metrics")
    p.add_argument("--app", required=True, choices=sorted(APPS))
    p.add_argument("--np", type=int, required=True)
    p.add_argument("--class", dest="cls", default="S",
                   help="problem class (S/W/A/B/C)")
    p.add_argument("-o", "--output",
                   help="also write the generated benchmark here")
    p.add_argument("--no-run", action="store_true",
                   help="stop after compiling (skip benchmark execution)")
    p.add_argument("--cache-dir", default=".repro-cache",
                   help="artifact cache directory "
                        "(default: .repro-cache)")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the artifact cache entirely")
    p.add_argument("--report", action="store_true",
                   help="also print the per-layer instrumentation report")
    p.add_argument("--fault-plan", metavar="FILE",
                   help="subject simulation stages to the fault plan "
                        "(YAML/JSON; see 'repro faults template')")
    p.add_argument("--stage-retries", type=int, default=0,
                   help="re-run a failed stage up to N times")
    p.add_argument("--profile", action="store_true",
                   help="attribute engine wall time to phases "
                        "(schedule/match/execute/fabric) and print a "
                        "summary at exit")
    p.add_argument("--scenario", metavar="NAME|FILE",
                   help="execute under a scenario: a curated name from "
                        "'repro scenarios list' or a YAML/JSON spec "
                        "file (the trace stays canonical; see "
                        "docs/SCENARIOS.md)")
    _add_platform(p)
    _add_topology(p)
    _add_queueing(p)
    _add_schedule(p)
    _add_metrics(p)
    p.set_defaults(func=cmd_pipeline)

    p = sub.add_parser("faults",
                       help="work with fault-injection plans "
                            "(template/validate/run)")
    fsub = p.add_subparsers(dest="faults_command", required=True)

    fp = fsub.add_parser("template",
                         help="print a commented fault-plan template")
    fp.add_argument("-o", "--output",
                    help="write the template here instead of stdout")
    fp.set_defaults(func=cmd_faults_template)

    fp = fsub.add_parser("validate", help="check a fault-plan file")
    fp.add_argument("plan")
    fp.set_defaults(func=cmd_faults_validate)

    fp = fsub.add_parser("run",
                         help="run an application under a fault plan and "
                              "print the fault report")
    fp.add_argument("--app", required=True, choices=sorted(APPS))
    fp.add_argument("--np", type=int, required=True)
    fp.add_argument("--class", dest="cls", default="S",
                    help="problem class (S/W/A/B/C)")
    fp.add_argument("--plan", required=True, help="fault-plan file")
    _add_platform(fp)
    _add_metrics(fp)
    fp.set_defaults(func=cmd_faults_run)

    p = sub.add_parser("sweep",
                       help="batched what-if studies: run a plan's whole "
                            "configuration grid, in parallel "
                            "(template/validate/run)")
    ssub = p.add_subparsers(dest="sweep_command", required=True)

    sp = ssub.add_parser("template",
                         help="print a commented sweep-plan template "
                              "(the Fig. 7 grid)")
    sp.add_argument("-o", "--output",
                    help="write the template here instead of stdout")
    sp.set_defaults(func=cmd_sweep_template)

    sp = ssub.add_parser("validate",
                         help="check a sweep-plan file and every point "
                              "config it expands to")
    sp.add_argument("plan")
    sp.set_defaults(func=cmd_sweep_validate)

    sp = ssub.add_parser("run",
                         help="execute every point of a sweep plan; "
                              "failed points are isolated, results merge "
                              "deterministically")
    sp.add_argument("plan", help="sweep-plan file (YAML/JSON; see "
                                 "'repro sweep template')")
    sp.add_argument("--workers", type=int, default=1,
                    help="worker processes (0 = one per CPU; default 1)")
    sp.add_argument("-o", "--output",
                    help="write the full sweep result (JSON) here")
    sp.add_argument("--jsonl", metavar="FILE",
                    help="write canonical per-point JSON lines here "
                         "(byte-identical for any --workers value)")
    sp.add_argument("--cache-dir", default=".repro-cache",
                    help="shared artifact cache directory "
                         "(default: .repro-cache)")
    sp.add_argument("--no-cache", action="store_true",
                    help="bypass the artifact cache entirely")
    sp.add_argument("--report", action="store_true",
                    help="also print the per-layer instrumentation report")
    _add_metrics(sp)
    sp.set_defaults(func=cmd_sweep_run)

    p = sub.add_parser("fuzz",
                       help="schedule-space fuzzing: explore legal MPI "
                            "schedules under seeded policies and "
                            "classify the outcomes "
                            "(template/validate/run)")
    zsub = p.add_subparsers(dest="fuzz_command", required=True)

    zp = zsub.add_parser("template",
                         help="print a commented fuzz-campaign template")
    zp.add_argument("-o", "--output",
                    help="write the template here instead of stdout")
    zp.set_defaults(func=cmd_fuzz_template)

    zp = zsub.add_parser("validate",
                         help="check a fuzz-campaign file and every "
                              "point config it expands to")
    zp.add_argument("campaign")
    zp.set_defaults(func=cmd_fuzz_validate)

    zp = zsub.add_parser("run",
                         help="execute a fuzz campaign and classify the "
                              "schedule outcomes (a deadlock find is a "
                              "finding, not a failure)")
    zp.add_argument("campaign", help="fuzz-campaign file (YAML/JSON; "
                                     "see 'repro fuzz template')")
    zp.add_argument("--workers", type=int, default=1,
                    help="worker processes (0 = one per CPU; default 1)")
    zp.add_argument("--seeds", type=int, default=None, metavar="N",
                    help="override the campaign's seeds-per-policy "
                         "count")
    zp.add_argument("-o", "--output",
                    help="write the full fuzz report (JSON) here")
    zp.add_argument("--corpus", metavar="FILE",
                    help="dedup corpus JSON: mark classes unseen by "
                         "earlier campaigns and update the file")
    zp.add_argument("--cache-dir", default=None, metavar="DIR",
                    help="enable the shared artifact cache at DIR "
                         "(off by default: each point runs a distinct "
                         "schedule)")
    zp.add_argument("--report", action="store_true",
                    help="also print the per-layer instrumentation "
                         "report")
    _add_metrics(zp)
    zp.set_defaults(func=cmd_fuzz_run)

    p = sub.add_parser("scenarios",
                       help="adversarial traffic/congestion scenarios: "
                            "curated named specs composing topology, "
                            "faults, queueing, placement, and schedule "
                            "(list/show/run/template)")
    csub = p.add_subparsers(dest="scenarios_command", required=True)

    cp = csub.add_parser("list", help="list the curated scenarios")
    cp.add_argument("--json", action="store_true",
                    help="machine-readable listing")
    cp.set_defaults(func=cmd_scenarios_list)

    cp = csub.add_parser("show",
                         help="print one scenario's full spec (a curated "
                              "name or a YAML/JSON file)")
    cp.add_argument("scenario", help="curated name or spec file")
    cp.set_defaults(func=cmd_scenarios_show)

    cp = csub.add_parser("run",
                         help="run one scenario x app cell through the "
                              "sweep engine (canonical result bytes "
                              "match the service's scenario job kind)")
    cp.add_argument("scenario", help="curated name or spec file")
    cp.add_argument("--app", required=True, choices=sorted(APPS))
    cp.add_argument("--np", type=int, required=True)
    cp.add_argument("--class", dest="cls", default="S",
                    help="problem class (S/W/A/B/C)")
    cp.add_argument("--mode", default="run", choices=["run", "trace"],
                    help="pipeline suffix per point (default: run)")
    cp.add_argument("--workers", type=int, default=1,
                    help="worker processes (0 = one per CPU; default 1)")
    cp.add_argument("-o", "--output",
                    help="write the canonical result (JSON) here")
    cp.add_argument("--jsonl", metavar="FILE",
                    help="write canonical per-point JSON lines here")
    cp.add_argument("--cache-dir", default=".repro-cache",
                    help="shared artifact cache directory "
                         "(default: .repro-cache)")
    cp.add_argument("--no-cache", action="store_true",
                    help="bypass the artifact cache entirely")
    cp.add_argument("--report", action="store_true",
                    help="also print the per-layer instrumentation "
                         "report")
    _add_platform(cp)
    _add_metrics(cp)
    cp.set_defaults(func=cmd_scenarios_run)

    cp = csub.add_parser("template",
                         help="print a commented scenario-spec template")
    cp.add_argument("-o", "--output",
                    help="write the template here instead of stdout")
    cp.set_defaults(func=cmd_scenarios_template)

    p = sub.add_parser("serve",
                       help="run the sweep service: an HTTP/JSON job "
                            "API over a journaled queue and the shared "
                            "artifact cache (see docs/SERVICE.md)")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default: 127.0.0.1)")
    p.add_argument("--port", type=int, default=8642,
                   help="bind port (0 = ephemeral; default 8642)")
    p.add_argument("--workers", type=int, default=1,
                   help="sweep-engine worker processes per execution "
                        "(0 = one per CPU; default 1)")
    p.add_argument("--cache-dir", default=".repro-cache",
                   help="shared artifact cache directory "
                        "(default: .repro-cache)")
    p.add_argument("--state-dir", default=".repro-service",
                   help="journal + result payload directory "
                        "(default: .repro-service)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("jobs",
                       help="client commands against a running service "
                            "(submit/status/result/health)")
    jsub = p.add_subparsers(dest="jobs_command", required=True)
    url_kw = {"default": "http://127.0.0.1:8642",
              "help": "service base URL "
                      "(default: http://127.0.0.1:8642)"}

    jp = jsub.add_parser("submit",
                         help="submit a sweep plan, fuzz campaign, or "
                              "scenario job")
    jp.add_argument("plan", help="plan/campaign/job file (YAML/JSON)")
    jp.add_argument("--kind", choices=["sweep", "fuzz", "scenario"],
                    default="sweep",
                    help="what the file describes (default: sweep)")
    jp.add_argument("--url", **url_kw)
    jp.add_argument("--wait", action="store_true",
                    help="block until the job reaches a terminal state")
    jp.add_argument("--timeout", type=float, default=600.0,
                    help="--wait timeout in seconds (default 600)")
    jp.set_defaults(func=cmd_jobs_submit)

    jp = jsub.add_parser("status", help="print one job's status JSON")
    jp.add_argument("id", help="job id from 'repro jobs submit'")
    jp.add_argument("--url", **url_kw)
    jp.set_defaults(func=cmd_jobs_status)

    jp = jsub.add_parser("result",
                         help="fetch a terminal job's canonical result "
                              "bytes")
    jp.add_argument("id", help="job id from 'repro jobs submit'")
    jp.add_argument("--url", **url_kw)
    jp.add_argument("--jsonl", action="store_true",
                    help="canonical per-point JSON lines (sweep jobs)")
    jp.add_argument("-o", "--output",
                    help="write the result here instead of stdout")
    jp.set_defaults(func=cmd_jobs_result)

    jp = jsub.add_parser("health",
                         help="print /healthz (retries until the "
                              "service answers or --timeout elapses)")
    jp.add_argument("--url", **url_kw)
    jp.add_argument("--timeout", type=float, default=30.0,
                    help="retry window in seconds (default 30)")
    jp.set_defaults(func=cmd_jobs_health)

    p = sub.add_parser("extrapolate",
                       help="extrapolate small-rank traces to a larger "
                            "rank count (§6 / ScalaExtrap)")
    p.add_argument("traces", nargs="+",
                   help="two or more traces of the same app at distinct "
                        "rank counts (three or more disambiguate "
                        "scaling laws)")
    p.add_argument("--np", type=int, required=True,
                   help="target rank count")
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(func=cmd_extrapolate)

    p = sub.add_parser("matrix",
                       help="print a trace's communication matrix")
    p.add_argument("trace")
    p.add_argument("--counts", action="store_true",
                   help="message counts instead of bytes")
    p.set_defaults(func=cmd_matrix)

    p = sub.add_parser("compare",
                       help="check two traces for semantic equivalence")
    p.add_argument("trace_a")
    p.add_argument("trace_b")
    p.add_argument("--ignore-sources", action="store_true",
                   help="treat wildcard and resolved receives as equal")
    p.set_defaults(func=cmd_compare)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
