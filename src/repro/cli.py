"""Command-line interface for the benchmark-generation pipeline.

Mirrors Fig. 1 of the paper as shell steps::

    repro apps                                    # list workloads
    repro trace --app lu --np 16 -o lu.scalatrace # run + trace
    repro generate lu.scalatrace -o lu.ncptl      # trace -> coNCePTuaL
    repro run lu.ncptl --np 16                    # execute the benchmark
    repro replay lu.scalatrace                    # ScalaReplay
    repro compare a.scalatrace b.scalatrace       # semantic equivalence
"""

from __future__ import annotations

import argparse
import sys

from repro.apps import APPS, make_app
from repro.conceptual.compiler import ConceptualProgram
from repro.generator import (extrapolate_trace, generate_benchmark,
                             trace_application)
from repro.scalatrace.serialize import dump_trace, load_trace
from repro.sim.network import PLATFORMS, make_model
from repro.tools.compare import compression_ratio, traces_equivalent
from repro.tools.mpip import MpiPHook
from repro.tools.matrix import (communication_matrix, hotspots,
                                render_matrix)
from repro.tools.replay import replay_trace


def _add_platform(parser):
    parser.add_argument("--platform", default="bluegene",
                        choices=sorted(PLATFORMS),
                        help="network model preset")


def cmd_apps(args):
    for name in sorted(APPS):
        print(f"{name:10s} {APPS[name].description}")
    return 0


def cmd_trace(args):
    program = make_app(args.app, args.np, args.cls)
    model = make_model(args.platform)
    trace = trace_application(program, args.np, model=model)
    dump_trace(trace, args.output)
    print(f"traced {args.app} (class {args.cls}, {args.np} ranks) on "
          f"{args.platform}: {trace.event_count()} events in "
          f"{trace.node_count()} trace nodes "
          f"({compression_ratio(trace):.1f}x compression) -> {args.output}")
    return 0


def cmd_generate(args):
    trace = load_trace(args.trace)
    bench = generate_benchmark(trace, align=not args.no_align,
                               resolve=not args.no_resolve,
                               include_timing=not args.no_timing)
    with open(args.output, "w") as fh:
        fh.write(bench.source)
    notes = []
    if bench.was_aligned:
        notes.append("collectives aligned (Algorithm 1)")
    if bench.was_resolved:
        notes.append("wildcards resolved (Algorithm 2)")
    print(f"generated {args.output} "
          f"({len(bench.source.splitlines())} lines"
          + (", " + ", ".join(notes) if notes else "") + ")")
    if args.python:
        with open(args.python, "w") as fh:
            fh.write(bench.python_source())
        print(f"generated {args.python} (Python backend)")
    return 0


def cmd_run(args):
    with open(args.program) as fh:
        source = fh.read()
    program = ConceptualProgram.from_source(source)
    model = make_model(args.platform)
    hook = MpiPHook()
    result, logs = program.run(args.np, model=model, hooks=[hook])
    print(f"ran {args.program} on {args.np} simulated ranks "
          f"({args.platform}): {result.total_time * 1e6:.1f} us total")
    print(logs.report())
    if args.profile:
        print(hook.report())
    return 0


def cmd_replay(args):
    trace = load_trace(args.trace)
    model = make_model(args.platform)
    result = replay_trace(trace, model=model)
    print(f"replayed {args.trace} on {trace.world_size} ranks "
          f"({args.platform}): {result.total_time * 1e6:.1f} us total, "
          f"{result.messages_sent} messages")
    return 0


def cmd_extrapolate(args):
    traces = [load_trace(path) for path in args.traces]
    big = extrapolate_trace(traces, args.np)
    dump_trace(big, args.output)
    sizes = ", ".join(str(t.world_size) for t in traces)
    print(f"extrapolated {{{sizes}}}-rank traces to {args.np} ranks: "
          f"{big.event_count()} events in {big.node_count()} nodes "
          f"-> {args.output}")
    return 0


def cmd_matrix(args):
    trace = load_trace(args.trace)
    m = communication_matrix(trace, counts=args.counts)
    print(render_matrix(m))
    unit = "messages" if args.counts else "bytes"
    for src_r, dst, v in hotspots(m):
        print(f"  {src_r} -> {dst}: {v} {unit}")
    return 0


def cmd_compare(args):
    a = load_trace(args.trace_a)
    b = load_trace(args.trace_b)
    ok, detail = traces_equivalent(a, b,
                                   check_wildcards=not args.ignore_sources)
    print(("EQUIVALENT: " if ok else "DIFFERENT: ") + detail)
    return 0 if ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="automatic communication-benchmark generation "
                    "(ScalaTrace -> coNCePTuaL) on a simulated MPI")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("apps", help="list available applications") \
        .set_defaults(func=cmd_apps)

    p = sub.add_parser("trace", help="trace an application")
    p.add_argument("--app", required=True, choices=sorted(APPS))
    p.add_argument("--np", type=int, required=True)
    p.add_argument("--class", dest="cls", default="S",
                   help="problem class (S/W/A/B/C)")
    p.add_argument("-o", "--output", required=True)
    _add_platform(p)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("generate",
                       help="generate a coNCePTuaL benchmark from a trace")
    p.add_argument("trace")
    p.add_argument("-o", "--output", required=True)
    p.add_argument("--python", help="also emit the Python backend here")
    p.add_argument("--no-align", action="store_true",
                   help="skip Algorithm 1 (collective alignment)")
    p.add_argument("--no-resolve", action="store_true",
                   help="skip Algorithm 2 (wildcard resolution)")
    p.add_argument("--no-timing", action="store_true",
                   help="omit COMPUTE statements")
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("run", help="run a coNCePTuaL benchmark")
    p.add_argument("program")
    p.add_argument("--np", type=int, required=True)
    p.add_argument("--profile", action="store_true",
                   help="print the mpiP-style profile")
    _add_platform(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("replay", help="replay a trace (ScalaReplay)")
    p.add_argument("trace")
    _add_platform(p)
    p.set_defaults(func=cmd_replay)

    p = sub.add_parser("extrapolate",
                       help="extrapolate small-rank traces to a larger "
                            "rank count (§6 / ScalaExtrap)")
    p.add_argument("traces", nargs="+",
                   help="two or more traces of the same app at distinct "
                        "rank counts (three or more disambiguate "
                        "scaling laws)")
    p.add_argument("--np", type=int, required=True,
                   help="target rank count")
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(func=cmd_extrapolate)

    p = sub.add_parser("matrix",
                       help="print a trace's communication matrix")
    p.add_argument("trace")
    p.add_argument("--counts", action="store_true",
                   help="message counts instead of bytes")
    p.set_defaults(func=cmd_matrix)

    p = sub.add_parser("compare",
                       help="check two traces for semantic equivalence")
    p.add_argument("trace_a")
    p.add_argument("trace_b")
    p.add_argument("--ignore-sources", action="store_true",
                   help="treat wildcard and resolved receives as equal")
    p.set_defaults(func=cmd_compare)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
