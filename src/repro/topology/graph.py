"""Topology graphs with deterministic routing.

A :class:`Topology` is a pure, immutable description of a machine's
interconnect: a set of nodes and, for every ordered node pair, the
sequence of *directed, named links* a message traverses between them.
Routing is deterministic and oblivious (a function of the endpoints
only), so two identical simulations see identical link schedules —
the property every byte-identity guarantee in this codebase rests on.

Three shapes are provided:

* :class:`FlatTopology` — a full crossbar: every pair of nodes has a
  dedicated path, so the only shared resource is each node's ejection
  link (exactly the pre-topology per-destination model).
* :class:`Torus3D` — a 3D torus à la Blue Gene/L with dimension-order
  (x, then y, then z) routing and shortest-direction wraparound.
* :class:`FatTree` — a k-ary switch tree with up/down (least common
  ancestor) routing; upper links are shared and contend.

Link names are stable strings (``"x+:1,0,0"``, ``"up:0:3"``) so fault
plans and per-link metrics can target them by name.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple


class Topology:
    """Base class: a node set plus deterministic inter-node routing."""

    #: registry key / display name (set by subclasses)
    name = "topology"

    def __init__(self, num_nodes: int):
        if num_nodes <= 0:
            raise ValueError(f"num_nodes must be positive, got {num_nodes}")
        self.num_nodes = num_nodes

    def node_route(self, a: int, b: int) -> Tuple[str, ...]:
        """Directed link names traversed from node ``a`` to node ``b``,
        excluding the final ejection link (the fabric appends that)."""
        raise NotImplementedError

    def link_names(self) -> Tuple[str, ...]:
        """Every inter-node link name, sorted (for docs and validation)."""
        names = set()
        for a in range(self.num_nodes):
            for b in range(self.num_nodes):
                if a != b:
                    names.update(self.node_route(a, b))
        return tuple(sorted(names))

    def describe(self) -> str:
        """One-line human summary."""
        return f"{self.name}({self.num_nodes} nodes)"


class FlatTopology(Topology):
    """Full crossbar: no shared inter-node links at all.

    Every message goes straight to its destination's ejection link, so
    composing this topology with a routed fabric reproduces the flat
    fabric's contention structure (per-destination serialization).
    """

    name = "flat"

    def node_route(self, a: int, b: int) -> Tuple[str, ...]:
        """No shared hops: the ejection link is the whole path."""
        return ()


def _near_cubic_dims(n: int) -> Tuple[int, int, int]:
    """Factor ``n`` into three near-equal dimensions (largest first is
    not required; the split minimizes the largest dimension)."""
    best: Optional[Tuple[int, int, int]] = None
    for x in range(1, int(round(n ** (1 / 3))) + 2):
        if n % x:
            continue
        rest = n // x
        for y in range(x, int(math.isqrt(rest)) + 1):
            if rest % y:
                continue
            cand = (x, y, rest // y)
            if best is None or max(cand) < max(best):
                best = cand
    if best is None:  # prime n: degenerate ring
        best = (1, 1, n)
    return best


class Torus3D(Topology):
    """3D torus with deterministic dimension-order routing.

    Nodes live at integer coordinates of a ``dims = (X, Y, Z)`` grid
    with wraparound in every dimension.  A message corrects x first,
    then y, then z, always travelling the shorter way around the ring
    (ties break toward the positive direction).  Each traversed hop is
    a directed link named ``"<axis><sign>:<x>,<y>,<z>"`` — the link
    *leaving* that coordinate in that direction — so opposing
    directions and different axes never contend with each other,
    exactly like a real torus's unidirectional channels.
    """

    name = "torus3d"

    def __init__(self, num_nodes: int,
                 dims: Optional[Tuple[int, int, int]] = None):
        if dims is not None:
            dims = tuple(int(d) for d in dims)  # type: ignore[assignment]
            if len(dims) != 3 or any(d <= 0 for d in dims):
                raise ValueError(
                    f"dims must be three positive integers, got {dims!r}")
            if num_nodes != dims[0] * dims[1] * dims[2]:
                raise ValueError(
                    f"dims {dims} hold {dims[0] * dims[1] * dims[2]} "
                    f"nodes, but {num_nodes} were requested")
        else:
            dims = _near_cubic_dims(num_nodes)
        super().__init__(num_nodes)
        self.dims = dims

    # -- coordinates ---------------------------------------------------------
    def coords(self, node: int) -> Tuple[int, int, int]:
        """The (x, y, z) coordinate of a node id (x fastest)."""
        x_dim, y_dim, _ = self.dims
        return (node % x_dim, (node // x_dim) % y_dim,
                node // (x_dim * y_dim))

    def node_at(self, x: int, y: int, z: int) -> int:
        """The node id at coordinate (x, y, z)."""
        x_dim, y_dim, _ = self.dims
        return x + x_dim * (y + y_dim * z)

    # -- routing -------------------------------------------------------------
    def node_route(self, a: int, b: int) -> Tuple[str, ...]:
        """Dimension-order route: correct x, then y, then z."""
        pos = list(self.coords(a))
        dst = self.coords(b)
        links: List[str] = []
        for axis, axis_name in enumerate("xyz"):
            size = self.dims[axis]
            delta = (dst[axis] - pos[axis]) % size
            if delta == 0:
                continue
            # shorter way around the ring; ties go positive
            if delta <= size - delta:
                step, sign, count = 1, "+", delta
            else:
                step, sign, count = -1, "-", size - delta
            for _ in range(count):
                links.append(f"{axis_name}{sign}:"
                             f"{pos[0]},{pos[1]},{pos[2]}")
                pos[axis] = (pos[axis] + step) % size
        return tuple(links)

    def describe(self) -> str:
        """One-line human summary including the grid dimensions."""
        return (f"{self.name}({self.dims[0]}x{self.dims[1]}x"
                f"{self.dims[2]})")


class FatTree(Topology):
    """k-ary switch tree with deterministic up/down routing.

    Compute nodes are the leaves of a complete ``arity``-way tree of
    switches.  A message climbs from its source leaf to the least
    common ancestor and descends to the destination leaf.  Each tree
    edge is two directed links, ``"up:<level>:<index>"`` (toward the
    root, leaving the level-``level`` vertex ``index``) and
    ``"down:<level>:<index>"`` (toward the leaves, arriving at that
    vertex) — so all leaves under one subtree share, and contend for,
    that subtree's uplink, the classic fat-tree bottleneck.
    """

    name = "fattree"

    def __init__(self, num_nodes: int, arity: int = 4):
        super().__init__(num_nodes)
        if arity < 2:
            raise ValueError(f"arity must be >= 2, got {arity}")
        self.arity = arity
        levels = 0
        span = 1
        while span < num_nodes:
            span *= arity
            levels += 1
        #: tree height: number of up hops from a leaf to the root
        self.levels = max(levels, 1)

    def node_route(self, a: int, b: int) -> Tuple[str, ...]:
        """Up to the least common ancestor, then down to the leaf."""
        if a == b:
            return ()
        k = self.arity
        up: List[str] = []
        ai, bi = a, b
        level = 0
        down_rev: List[str] = []
        while ai != bi:
            up.append(f"up:{level}:{ai}")
            down_rev.append(f"down:{level}:{bi}")
            ai //= k
            bi //= k
            level += 1
        return tuple(up + list(reversed(down_rev)))

    def describe(self) -> str:
        """One-line human summary including arity and height."""
        return (f"{self.name}({self.num_nodes} leaves, arity "
                f"{self.arity}, {self.levels} level(s))")


#: Named topology registry used by the pipeline config, CLI, and sweeps.
TOPOLOGIES: Dict[str, Callable[..., Topology]] = {
    "flat": FlatTopology,
    "torus3d": Torus3D,
    "fattree": FatTree,
}

#: fabric-level parameters accepted alongside any topology's own
#: constructor parameters (consumed by the routed-fabric factory)
FABRIC_PARAMS = ("hop_latency", "link_bandwidth", "nodes")


def topology_params(name: str) -> Tuple[str, ...]:
    """Parameters accepted in ``topology_params`` for the named topology
    (constructor keywords plus the shared fabric-level knobs)."""
    import inspect
    try:
        ctor = TOPOLOGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown topology {name!r}; choose from {sorted(TOPOLOGIES)}"
        ) from None
    sig = inspect.signature(ctor)
    own = tuple(
        p.name for p in sig.parameters.values()
        if p.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD,
                      inspect.Parameter.KEYWORD_ONLY)
        and p.name not in ("self", "num_nodes"))
    return own + FABRIC_PARAMS


def validate_topology_params(name: str, keys) -> None:
    """Raise :class:`ValueError` naming the topology and its accepted
    parameters when any of ``keys`` is unknown."""
    accepted = topology_params(name)
    bad = sorted(k for k in keys if k not in accepted)
    if bad:
        raise ValueError(
            f"topology {name!r} does not accept parameter(s) {bad}; "
            f"accepted parameters: {sorted(accepted)}")


def make_topology(name: str, num_nodes: int, **kwargs) -> Topology:
    """Instantiate a named topology over ``num_nodes`` nodes.

    Mirrors :func:`repro.sim.network.make_model`: unknown names and
    unknown/invalid parameters raise a :class:`ValueError` naming what
    is accepted.
    """
    try:
        ctor = TOPOLOGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown topology {name!r}; choose from {sorted(TOPOLOGIES)}"
        ) from None
    bad = sorted(k for k in kwargs if k in FABRIC_PARAMS)
    if bad:
        raise ValueError(
            f"parameter(s) {bad} belong to the fabric, not the "
            f"{name!r} topology; pass them through make_routed_fabric")
    validate_topology_params(name, kwargs)
    try:
        return ctor(num_nodes, **kwargs)
    except TypeError as exc:
        raise ValueError(
            f"bad parameters for topology {name!r}: {exc}; accepted "
            f"parameters: {sorted(topology_params(name))}") from None
