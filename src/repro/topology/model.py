"""Composing a base platform preset with a routed fabric.

:func:`make_topology_model` is the one entry point the pipeline, CLI,
and sweeps use: it takes an already-built flat preset (which supplies
the *protocol* half — overheads, eager threshold, flow control) and
re-homes it on a :class:`~repro.topology.fabric.RoutedFabric` built
from a topology name, fabric parameters, and a placement spec.  The
fabric's hop latency and link bandwidth default to the flat preset's
own latency/bandwidth, so ``--topology torus3d`` on ``bluegene`` means
"the same NIC and software stack, but messages actually route over a
torus".
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.sim.network import NetworkModel
from repro.topology.fabric import RoutedFabric
from repro.topology.graph import FABRIC_PARAMS, make_topology
from repro.topology.placement import make_placement


class TopologyModel(NetworkModel):
    """A platform preset's protocol stack over a routed fabric.

    ``wire_queueing`` is forced on: a routed fabric without link
    contention would be indistinguishable from a flat one with a
    longer latency, and the per-link FIFO fold is the whole point.
    """

    routed = True

    def __init__(self, base: NetworkModel, fabric: RoutedFabric):
        super().__init__(base.protocol, fabric)
        self.base = base
        self.wire_queueing = True

    def describe(self) -> str:
        """One-line human summary of protocol source + fabric."""
        assert isinstance(self.fabric, RoutedFabric)
        return (f"{type(self.base).__name__} protocol over "
                f"{self.fabric.describe()}")


def make_topology_model(base: NetworkModel, topology_name: str,
                        nranks: int,
                        topology_params: Optional[Mapping[str, object]]
                        = None,
                        placement: str = "block") -> TopologyModel:
    """Build a :class:`TopologyModel` from a flat preset and a topology.

    ``topology_params`` may mix topology-constructor keywords (e.g.
    ``dims``, ``arity``) with the fabric-level knobs in
    :data:`~repro.topology.graph.FABRIC_PARAMS`:

    * ``nodes`` — node count (default: one node per rank);
    * ``hop_latency`` — per-hop wire latency (default: the base
      preset's flat latency, or 1 µs when the base has none);
    * ``link_bandwidth`` — per-link bandwidth (default: the base
      preset's flat bandwidth, or 1 GB/s).

    ``placement`` is a spec string for
    :func:`~repro.topology.placement.make_placement`.
    """
    params = dict(topology_params or {})
    nodes = int(params.pop("nodes", nranks))
    base_fabric = getattr(base, "fabric", None)
    hop_latency = params.pop(
        "hop_latency", getattr(base_fabric, "latency", 1e-6))
    link_bandwidth = params.pop(
        "link_bandwidth", getattr(base_fabric, "bandwidth", 1e9))
    assert not any(k in params for k in FABRIC_PARAMS)
    topo = make_topology(topology_name, nodes, **params)
    assignment = make_placement(placement, nranks, nodes)
    fabric = RoutedFabric(topo, assignment,
                          hop_latency=float(hop_latency),
                          link_bandwidth=float(link_bandwidth))
    return TopologyModel(base, fabric)
