"""Topology-aware fabrics: graphs, routing, placement, link contention.

This package supplies the wire-side half of a topology-aware network
model (see :mod:`repro.sim.network` for the protocol/fabric split):

* :mod:`repro.topology.graph` — topology shapes (flat crossbar, 3D
  torus, fat-tree) with deterministic routing over named links;
* :mod:`repro.topology.placement` — rank→node placement policies
  (block, round-robin, seeded-random, explicit map file);
* :mod:`repro.topology.fabric` — :class:`RoutedFabric`, which prices
  messages by their route and names every link for the engine's
  per-link FIFO contention fold;
* :mod:`repro.topology.model` — :func:`make_topology_model`, composing
  a flat platform preset's protocol stack with a routed fabric.
"""

from repro.topology.fabric import RoutedFabric
from repro.topology.graph import (
    FABRIC_PARAMS,
    FatTree,
    FlatTopology,
    TOPOLOGIES,
    Topology,
    Torus3D,
    make_topology,
    topology_params,
    validate_topology_params,
)
from repro.topology.model import TopologyModel, make_topology_model
from repro.topology.placement import (
    PLACEMENTS,
    block_placement,
    make_placement,
    parse_placement_spec,
    random_placement,
    roundrobin_placement,
)

__all__ = [
    "FABRIC_PARAMS",
    "FatTree",
    "FlatTopology",
    "PLACEMENTS",
    "RoutedFabric",
    "TOPOLOGIES",
    "Topology",
    "TopologyModel",
    "Torus3D",
    "block_placement",
    "make_placement",
    "make_topology",
    "make_topology_model",
    "parse_placement_spec",
    "random_placement",
    "roundrobin_placement",
    "topology_params",
    "validate_topology_params",
]
