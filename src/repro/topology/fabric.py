"""The routed fabric: topology + placement + link timing.

A :class:`RoutedFabric` is the wire-side half of a topology-aware
network model.  It prices messages by the route between their
endpoints' *nodes* (placement maps ranks to nodes) and names every
link on the way, so the engine can fold each eager message through the
per-link FIFO queues — the generalization of the flat fabric's
per-destination ejection queue to a whole path of serial resources.

Timing model (deterministic, cut-through):

* uncontended transit of a ``h``-hop route is
  ``h * hop_latency + nbytes / link_bandwidth`` — each hop pays the
  switch/wire latency, serialization is paid once at the (uniform)
  link bandwidth;
* under contention the engine charges each link in route order:
  a message reaches link *i* one ``hop_latency`` after clearing link
  *i-1*, waits for the link to free, then occupies it for the
  serialization time (see ``Engine._routed_arrival``);
* every route ends with the destination node's ejection link
  (``"eject:<node>"``), so endpoint delivery serializes exactly like
  the flat fabric's per-destination wire queue.

``transit_time`` without endpoints (how collectives and the matching
horizon ask) uses the placement-weighted mean hop count, so collective
costs rise on topologies with longer average routes; ``min_latency``
is a single ``hop_latency`` — a true lower bound, keeping the engine's
conservative wildcard horizon safe.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.sim.network import Fabric
from repro.topology.graph import Topology


class RoutedFabric(Fabric):
    """Wire timing over a topology graph with named, contended links."""

    routed = True

    def __init__(self, topology: Topology, placement: Sequence[int],
                 hop_latency: float = 1e-6,
                 link_bandwidth: float = 1e9):
        if hop_latency < 0 or link_bandwidth <= 0:
            raise ValueError(
                "hop_latency must be >= 0 and link_bandwidth > 0")
        self.topology = topology
        self.placement = tuple(int(n) for n in placement)
        bad = sorted({n for n in self.placement
                      if not 0 <= n < topology.num_nodes})
        if bad:
            raise ValueError(
                f"placement names node(s) {bad} outside "
                f"[0, {topology.num_nodes})")
        self.hop_latency = hop_latency
        self.link_bandwidth = link_bandwidth
        self._routes: Dict[Tuple[int, int], Tuple[str, ...]] = {}
        self._mean_hops: Optional[float] = None

    # -- routing -------------------------------------------------------------
    def route(self, src: int, dst: int) -> Tuple[str, ...]:
        """Directed link names from rank ``src`` to rank ``dst``,
        ending with the destination node's ejection link (cached)."""
        key = (src, dst)
        links = self._routes.get(key)
        if links is None:
            a = self.placement[src]
            b = self.placement[dst]
            links = self.topology.node_route(a, b) + (f"eject:{b}",)
            self._routes[key] = links
        return links

    def serialize_time(self, nbytes: int) -> float:
        """Time one message occupies one link."""
        return nbytes / self.link_bandwidth

    @property
    def mean_hops(self) -> float:
        """Placement-weighted mean route length over ordered rank pairs."""
        if self._mean_hops is None:
            nranks = len(self.placement)
            if nranks <= 1:
                self._mean_hops = 1.0
            else:
                total = 0
                pairs = 0
                for s in range(nranks):
                    for d in range(nranks):
                        if s == d:
                            continue
                        total += len(self.route(s, d))
                        pairs += 1
                self._mean_hops = total / pairs
        return self._mean_hops

    # -- Fabric interface ----------------------------------------------------
    def transit_time(self, nbytes: int, src: Optional[int] = None,
                     dst: Optional[int] = None) -> float:
        """Uncontended transit: per-hop latency plus one serialization.

        With endpoints, the route's exact hop count is used; without
        (collective costing, generic queries), the placement-weighted
        mean hop count stands in.
        """
        if src is None or dst is None:
            hops: float = self.mean_hops
        else:
            hops = len(self.route(src, dst))
        return hops * self.hop_latency + nbytes / self.link_bandwidth

    def min_latency(self) -> float:
        """One hop — a lower bound over every route (safety horizon)."""
        return self.hop_latency

    def eject_time(self, nbytes: int) -> float:
        """Serialization time on the final (ejection) link."""
        return self.serialize_time(nbytes)

    def describe(self) -> str:
        """One-line human summary of topology, placement, and timing."""
        nodes = self.topology.num_nodes
        return (f"{self.topology.describe()}, {len(self.placement)} "
                f"rank(s) on {nodes} node(s), hop {self.hop_latency:g}s, "
                f"link {self.link_bandwidth:g} B/s")
