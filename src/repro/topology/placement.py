"""Rank→node placement policies.

A placement assigns each MPI rank to a topology node.  It is the third
ingredient of a routed fabric (topology + placement + link parameters)
and the knob the paper's what-if methodology most obviously lacks: the
same communication specification can behave very differently when
neighbouring ranks land on distant nodes.

Policies (all deterministic):

* ``block`` — ranks fill nodes in contiguous blocks
  (``rank // ceil(nranks / nodes)``), the common scheduler default;
* ``roundrobin`` — ranks deal across nodes like cards
  (``rank % nodes``), the cyclic layout;
* ``random`` / ``random:<seed>`` — a seeded deterministic shuffle of
  the block layout (same seed, same placement, bit-identical runs);
* ``map:<file>`` — an explicit rank→node list loaded from a JSON (or
  YAML) file, for replaying a real machine's allocation.
"""

from __future__ import annotations

import json
import random
from typing import Optional, Sequence, Tuple

#: policy names accepted by :func:`make_placement`
PLACEMENTS = ("block", "roundrobin", "random", "map")


def block_placement(nranks: int, num_nodes: int) -> Tuple[int, ...]:
    """Contiguous blocks of ranks per node."""
    per = -(-nranks // num_nodes)  # ceil
    return tuple(min(r // per, num_nodes - 1) for r in range(nranks))


def roundrobin_placement(nranks: int, num_nodes: int) -> Tuple[int, ...]:
    """Cyclic rank-to-node dealing."""
    return tuple(r % num_nodes for r in range(nranks))


def random_placement(nranks: int, num_nodes: int,
                     seed: int = 0) -> Tuple[int, ...]:
    """Seeded deterministic shuffle of the block layout."""
    assignment = list(block_placement(nranks, num_nodes))
    random.Random(seed).shuffle(assignment)
    return tuple(assignment)


def load_placement_map(path: str, nranks: int,
                       num_nodes: int) -> Tuple[int, ...]:
    """An explicit rank→node assignment from a JSON/YAML file.

    The file holds either a bare list (``[0, 0, 1, 1]``, index = rank)
    or a mapping with a ``placement`` key holding that list.
    """
    try:
        with open(path) as fh:
            text = fh.read()
    except OSError as exc:
        raise ValueError(f"cannot read placement map {path!r}: {exc}") \
            from None
    data = None
    try:
        data = json.loads(text)
    except json.JSONDecodeError:
        try:
            import yaml
        except ImportError:  # pragma: no cover - PyYAML normally present
            yaml = None
        if yaml is not None:
            try:
                data = yaml.safe_load(text)
            except yaml.YAMLError as exc:
                raise ValueError(
                    f"unparsable placement map {path!r}: {exc}") from None
    if isinstance(data, dict):
        data = data.get("placement")
    if not isinstance(data, list):
        raise ValueError(
            f"placement map {path!r} must be a list of node ids (or a "
            f"mapping with a 'placement' list)")
    return _check_assignment(tuple(int(n) for n in data), nranks, num_nodes,
                             where=path)


def _check_assignment(assignment: Tuple[int, ...], nranks: int,
                      num_nodes: int, where: str) -> Tuple[int, ...]:
    if len(assignment) != nranks:
        raise ValueError(
            f"placement {where!r} assigns {len(assignment)} rank(s), "
            f"but the run has {nranks}")
    bad = sorted({n for n in assignment if not 0 <= n < num_nodes})
    if bad:
        raise ValueError(
            f"placement {where!r} names node(s) {bad} outside "
            f"[0, {num_nodes})")
    return assignment


def parse_placement_spec(spec: str) -> Tuple[str, Optional[str]]:
    """Split a placement spec string into (policy, argument).

    ``"block"`` → ``("block", None)``; ``"random:7"`` → ``("random",
    "7")``; ``"map:nodes.json"`` → ``("map", "nodes.json")``.  Raises
    :class:`ValueError` for unknown policies or malformed arguments —
    without touching the filesystem, so sweep plans validate cheaply.
    """
    policy, _, arg = spec.partition(":")
    if policy not in PLACEMENTS:
        raise ValueError(
            f"unknown placement policy {policy!r}; choose from "
            f"{PLACEMENTS} (optionally 'random:<seed>' or 'map:<file>')")
    if policy in ("block", "roundrobin") and arg:
        raise ValueError(f"placement {policy!r} takes no argument, "
                         f"got {arg!r}")
    if policy == "random" and arg:
        try:
            int(arg)
        except ValueError:
            raise ValueError(
                f"random placement seed must be an integer, got {arg!r}"
            ) from None
    if policy == "map" and not arg:
        raise ValueError("map placement needs a file: 'map:<path>'")
    return policy, (arg or None)


def make_placement(spec: str, nranks: int,
                   num_nodes: int) -> Tuple[int, ...]:
    """The rank→node assignment described by a placement spec string."""
    if nranks <= 0 or num_nodes <= 0:
        raise ValueError("nranks and num_nodes must be positive")
    policy, arg = parse_placement_spec(spec)
    if policy == "block":
        return block_placement(nranks, num_nodes)
    if policy == "roundrobin":
        return roundrobin_placement(nranks, num_nodes)
    if policy == "random":
        return random_placement(nranks, num_nodes,
                                seed=int(arg) if arg else 0)
    return load_placement_map(arg or "", nranks, num_nodes)


def explicit_placement(assignment: Sequence[int], nranks: int,
                       num_nodes: int) -> Tuple[int, ...]:
    """Validate a caller-supplied rank→node assignment."""
    return _check_assignment(tuple(int(n) for n in assignment), nranks,
                             num_nodes, where="explicit assignment")
