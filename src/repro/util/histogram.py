"""Scalable timing summaries.

ScalaTrace does not store one computation-time sample per event instance;
it compresses all instances of a particular delta (identified by call path
and loop position) into a histogram (Ratn et al., ICS'08).  We mirror that:
:class:`TimeHistogram` keeps logarithmically spaced bins plus exact first
and running moments, supports lossless *merging* (needed when traces are
merged across loop iterations and across ranks), and can reproduce a
deterministic stream of representative values whose total preserves the
recorded total time — the property the paper's timing-accuracy experiment
(Fig. 6) depends on.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Tuple

#: Bin boundaries grow by this factor; 2**(1/4) keeps relative bin error
#: below ~9% while needing only ~160 bins to span 1 ns .. 1000 s.
_BIN_BASE = 2.0 ** 0.25
_LOG_BASE = math.log(_BIN_BASE)
#: Durations below this (seconds) all land in bin 0.
_MIN_T = 1e-9


def _bin_index(t: float) -> int:
    if t <= _MIN_T:
        return 0
    return 1 + int(math.log(t / _MIN_T) / _LOG_BASE)


class TimeHistogram:
    """Histogram of non-negative durations (seconds).

    Bins store ``(count, sum)`` so that every bin reproduces its exact mean;
    total time is therefore preserved exactly under merging and replay.
    """

    __slots__ = ("bins", "count", "total", "min", "max")

    def __init__(self):
        self.bins: Dict[int, Tuple[int, float]] = {}
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0

    def add(self, t: float) -> None:
        if t < 0:
            raise ValueError(f"negative duration: {t}")
        idx = _bin_index(t)
        c, s = self.bins.get(idx, (0, 0.0))
        self.bins[idx] = (c + 1, s + t)
        self.count += 1
        self.total += t
        if t < self.min:
            self.min = t
        if t > self.max:
            self.max = t

    def merge(self, other: "TimeHistogram") -> None:
        if not other.count:
            return
        for idx, (c, s) in other.bins.items():
            c0, s0 = self.bins.get(idx, (0, 0.0))
            self.bins[idx] = (c0 + c, s0 + s)
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def copy(self) -> "TimeHistogram":
        h = TimeHistogram()
        h.bins = dict(self.bins)
        h.count = self.count
        h.total = self.total
        h.min = self.min
        h.max = self.max
        return h

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def scaled(self, factor: float) -> "TimeHistogram":
        """A new histogram with every duration multiplied by ``factor`` —
        this is how the what-if study (Fig. 7) dials computation from 100%
        down to 0%."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        h = TimeHistogram()
        for idx, (c, s) in self.bins.items():
            t_rep = (s / c) * factor
            nidx = _bin_index(t_rep)
            c0, s0 = h.bins.get(nidx, (0, 0.0))
            h.bins[nidx] = (c0 + c, s0 + s * factor)
        h.count = self.count
        h.total = self.total * factor
        h.min = self.min * factor if self.count else math.inf
        h.max = self.max * factor
        return h

    def replay_values(self) -> Iterator[float]:
        """Deterministic stream of representative durations.

        Emits bin means with *prefix-proportional* frequency (largest-
        remainder scheduling): any prefix of the stream reflects the
        recorded distribution, so a rank drawing 1/p of a cross-rank
        histogram still sees each bin in proportion; and any ``count``
        consecutive draws sum to ``total`` up to rounding, because each
        full cycle emits every bin exactly its recorded number of times.
        """
        bins: List[Tuple[float, float]] = [  # (weight, mean)
            (c / self.count, s / c)
            for _, (c, s) in sorted(self.bins.items())
        ] if self.count else []
        if not bins:
            while True:
                yield 0.0
        credits = [0.0] * len(bins)
        while True:
            best = 0
            for i, (w, _) in enumerate(bins):
                credits[i] += w
                if credits[i] > credits[best]:
                    best = i
            credits[best] -= 1.0
            yield bins[best][1]

    def serialize(self) -> str:
        parts = [f"{idx}:{c}:{s!r}" for idx, (c, s) in sorted(self.bins.items())]
        return ";".join(parts) if parts else "-"

    @classmethod
    def parse(cls, text: str) -> "TimeHistogram":
        h = cls()
        text = text.strip()
        if not text or text == "-":
            return h
        for part in text.split(";"):
            idx_s, c_s, s_s = part.split(":")
            idx, c, s = int(idx_s), int(c_s), float(s_s)
            c0, s0 = h.bins.get(idx, (0, 0.0))
            h.bins[idx] = (c0 + c, s0 + s)
            h.count += c
            h.total += s
            mean = s / c
            h.min = min(h.min, mean)
            h.max = max(h.max, mean)
        return h

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimeHistogram):
            return NotImplemented
        return self.bins == other.bins

    def __repr__(self) -> str:
        return (
            f"TimeHistogram(count={self.count}, total={self.total:.6g}, "
            f"mean={self.mean:.6g})"
        )
