"""Compact rank descriptors.

ScalaTrace attaches to every RSD the set of MPI ranks that participate in
the event.  For the trace (and the generated benchmark) to stay small, that
set must be stored and rendered compactly: ``0:1023`` rather than 1024
integers, ``0:30:2`` for the even ranks below 32, and so on.

:class:`RankSet` is an immutable, canonical union of strided ranges.  It is
hashable, supports the usual set algebra, and knows how to render itself as
a coNCePTuaL task predicate (see :meth:`RankSet.to_predicate`).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple


def _normalize_runs(ranks: Sequence[int]) -> Tuple[Tuple[int, int, int], ...]:
    """Greedily factor a sorted, deduplicated rank list into (start, stop,
    stride) runs, each covering at least one element, stop inclusive."""
    runs: List[Tuple[int, int, int]] = []
    i = 0
    n = len(ranks)
    while i < n:
        if i + 1 >= n:
            runs.append((ranks[i], ranks[i], 1))
            break
        stride = ranks[i + 1] - ranks[i]
        j = i + 1
        while j + 1 < n and ranks[j + 1] - ranks[j] == stride:
            j += 1
        if j - i >= 2:  # at least 3 elements: worth a strided run
            runs.append((ranks[i], ranks[j], stride))
            i = j + 1
        else:
            runs.append((ranks[i], ranks[i], 1))
            i += 1
    return tuple(runs)


class RankSet:
    """An immutable set of non-negative integers with a compact canonical
    form.  Construction accepts any iterable of ints; duplicates are ignored.
    """

    __slots__ = ("_ranks", "_runs", "_hash")

    def __init__(self, ranks: Iterable[int] = ()):
        rs = sorted(set(int(r) for r in ranks))
        for r in rs[:1]:
            if r < 0:
                raise ValueError("ranks must be non-negative")
        self._ranks: Tuple[int, ...] = tuple(rs)
        self._runs = _normalize_runs(self._ranks)
        self._hash = hash(self._ranks)

    # -- constructors ----------------------------------------------------
    @classmethod
    def single(cls, rank: int) -> "RankSet":
        return cls((rank,))

    @classmethod
    def interval(cls, start: int, stop: int, stride: int = 1) -> "RankSet":
        """Inclusive interval with stride, mirroring the textual ``a:b:s``."""
        if stride <= 0:
            raise ValueError("stride must be positive")
        return cls(range(start, stop + 1, stride))

    @classmethod
    def world(cls, size: int) -> "RankSet":
        return cls(range(size))

    @classmethod
    def parse(cls, text: str) -> "RankSet":
        """Parse the serialized form produced by :meth:`serialize`:
        comma-separated runs ``start[:stop[:stride]]``."""
        text = text.strip()
        if not text or text == "{}":
            return cls()
        ranks: List[int] = []
        for part in text.split(","):
            bits = part.strip().split(":")
            if len(bits) == 1:
                ranks.append(int(bits[0]))
            elif len(bits) == 2:
                ranks.extend(range(int(bits[0]), int(bits[1]) + 1))
            elif len(bits) == 3:
                ranks.extend(range(int(bits[0]), int(bits[1]) + 1, int(bits[2])))
            else:
                raise ValueError(f"bad rank run: {part!r}")
        return cls(ranks)

    # -- set protocol -----------------------------------------------------
    def __contains__(self, rank: object) -> bool:
        if not isinstance(rank, int):
            return False
        # binary search
        lo, hi = 0, len(self._ranks)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._ranks[mid] < rank:
                lo = mid + 1
            else:
                hi = mid
        return lo < len(self._ranks) and self._ranks[lo] == rank

    def __iter__(self) -> Iterator[int]:
        return iter(self._ranks)

    def __len__(self) -> int:
        return len(self._ranks)

    def __bool__(self) -> bool:
        return bool(self._ranks)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RankSet):
            return NotImplemented
        return self._ranks == other._ranks

    def __hash__(self) -> int:
        return self._hash

    def union(self, other: "RankSet") -> "RankSet":
        return RankSet(self._ranks + other._ranks)

    __or__ = union

    def intersection(self, other: "RankSet") -> "RankSet":
        mine = set(self._ranks)
        return RankSet(r for r in other._ranks if r in mine)

    __and__ = intersection

    def difference(self, other: "RankSet") -> "RankSet":
        theirs = set(other._ranks)
        return RankSet(r for r in self._ranks if r not in theirs)

    __sub__ = difference

    def issubset(self, other: "RankSet") -> bool:
        theirs = set(other._ranks)
        return all(r in theirs for r in self._ranks)

    def isdisjoint(self, other: "RankSet") -> bool:
        theirs = set(other._ranks)
        return not any(r in theirs for r in self._ranks)

    @property
    def runs(self) -> Tuple[Tuple[int, int, int], ...]:
        """Canonical (start, stop_inclusive, stride) runs."""
        return self._runs

    def min(self) -> int:
        if not self._ranks:
            raise ValueError("empty RankSet")
        return self._ranks[0]

    def max(self) -> int:
        if not self._ranks:
            raise ValueError("empty RankSet")
        return self._ranks[-1]

    # -- rendering ---------------------------------------------------------
    def serialize(self) -> str:
        parts = []
        for start, stop, stride in self._runs:
            if start == stop:
                parts.append(str(start))
            elif stride == 1:
                parts.append(f"{start}:{stop}")
            else:
                parts.append(f"{start}:{stop}:{stride}")
        return ",".join(parts) if parts else "{}"

    def __repr__(self) -> str:
        return f"RankSet({self.serialize()})"

    def to_predicate(self, var: str, world_size: int) -> str:
        """Render as a coNCePTuaL task predicate over variable ``var``.

        Chooses the most readable of several forms:
        ``ALL TASKS`` handled by the caller (full world); otherwise e.g.
        ``t = 3``, ``t >= 2 /\\ t <= 9``, ``t MOD 4 = 0``, or an explicit
        membership list ``t IS IN {1, 5, 11}``.
        """
        if len(self._ranks) == world_size:
            return ""  # caller should say ALL TASKS
        if len(self._ranks) == 1:
            return f"{var} = {self._ranks[0]}"
        if len(self._runs) == 1:
            start, stop, stride = self._runs[0]
            if stride == 1:
                if start == 0 and stop == world_size - 1:
                    return ""
                if start == 0:
                    return f"{var} <= {stop}"
                if stop == world_size - 1:
                    return f"{var} >= {start}"
                return f"{var} >= {start} /\\ {var} <= {stop}"
            # strided run
            clauses = [f"{var} MOD {stride} = {start % stride}"]
            if start > 0 or stop < world_size - 1:
                if start > 0:
                    clauses.append(f"{var} >= {start}")
                if stop < world_size - 1:
                    clauses.append(f"{var} <= {stop}")
            return " /\\ ".join(clauses)
        members = ", ".join(str(r) for r in self._ranks)
        return f"{var} IS IN {{{members}}}"
