"""Call-site (stack) signatures.

ScalaTrace distinguishes MPI calls issued from different source locations
by hashing the call stack at interposition time; loop compression then only
folds events that share a signature.  We capture the analogous signature
from the Python stack of the simulated application, skipping frames that
belong to the repro framework itself so that signatures reflect *application*
structure only.
"""

from __future__ import annotations

import os
import sys
from typing import Tuple

#: Stack frames whose file lives under any of these package directories are
#: framework frames, not application frames.
_FRAMEWORK_DIRS = ("repro/sim", "repro/mpi", "repro/scalatrace",
                   "repro/conceptual", "repro/tools")


class Callsite:
    """Immutable stack signature: a tuple of ``file:line:function`` frames,
    innermost first."""

    __slots__ = ("frames", "_hash")

    def __init__(self, frames: Tuple[Tuple[str, int, str], ...]):
        self.frames = tuple(frames)
        self._hash = hash(self.frames)

    @classmethod
    def synthetic(cls, label: str, index: int = 0) -> "Callsite":
        """Signature for code with no meaningful Python stack (e.g. compiled
        coNCePTuaL programs use the AST node path as the signature)."""
        return cls(((label, index, "<synthetic>"),))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Callsite):
            return NotImplemented
        return self.frames == other.frames

    def __hash__(self) -> int:
        return self._hash

    def serialize(self) -> str:
        return "|".join(f"{f}:{ln}:{fn}" for f, ln, fn in self.frames)

    @classmethod
    def parse(cls, text: str) -> "Callsite":
        frames = []
        for part in text.split("|"):
            f, ln, fn = part.rsplit(":", 2)
            frames.append((f, int(ln), fn))
        return cls(tuple(frames))

    def __repr__(self) -> str:
        if not self.frames:
            return "Callsite(<empty>)"
        f, ln, fn = self.frames[0]
        more = f" (+{len(self.frames) - 1})" if len(self.frames) > 1 else ""
        return f"Callsite({f}:{ln} in {fn}{more})"


def _is_framework_frame(filename: str) -> bool:
    norm = filename.replace(os.sep, "/")
    return any(d in norm for d in _FRAMEWORK_DIRS)


def capture_callsite(max_depth: int = 8, skip: int = 1) -> Callsite:
    """Capture the application portion of the current call stack.

    ``skip`` framework-internal callers at the top are always dropped;
    remaining framework frames are filtered by path.  Filenames are reduced
    to basenames so signatures are stable across checkouts.
    """
    frame = sys._getframe(skip)
    frames = []
    while frame is not None and len(frames) < max_depth:
        code = frame.f_code
        norm = code.co_filename.replace(os.sep, "/")
        if "repro/sim" in norm:
            # the engine's scheduler frame: everything below it is harness,
            # not application structure
            break
        if not _is_framework_frame(code.co_filename):
            frames.append((os.path.basename(code.co_filename),
                           frame.f_lineno, code.co_name))
        frame = frame.f_back
    return Callsite(tuple(frames))
