"""Rank-parameterized value expressions.

When ScalaTrace merges per-rank RSDs it must describe how an event
parameter (peer rank, message size, root, tag) varies across the
participating ranks *without* losing information.  A ring send, for
example, merges into "each rank r sends to (r+1) mod N" — a closed form —
while genuinely irregular peers fall back to an explicit table.

:class:`ParamExpr` is that description.  Three shapes:

``const``  — the same value on every rank;
``rel``    — value = rank + delta, optionally modulo the communicator size
             (covers ring and stencil neighbours, the dominant HPC case);
``table``  — explicit rank -> value mapping (lossless fallback).

:meth:`ParamExpr.infer` picks the most compact shape that exactly explains
a set of (rank, value) samples; merging two expressions re-infers over the
union of their samples, so compression is opportunistic but never lossy.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

#: Sentinel used in traces for MPI_ANY_SOURCE before Algorithm 2 resolves it.
ANY_SOURCE = -1


class ParamExpr:
    __slots__ = ("kind", "delta", "mod", "table")

    def __init__(self, kind: str, delta: int = 0, mod: Optional[int] = None,
                 table: Optional[Dict[int, int]] = None):
        if kind not in ("const", "rel", "table"):
            raise ValueError(f"bad ParamExpr kind: {kind}")
        self.kind = kind
        self.delta = delta          # const: the value; rel: the offset
        self.mod = mod              # rel only: communicator size for wraparound
        self.table = table or {}   # table only

    # -- constructors ----------------------------------------------------
    @classmethod
    def const(cls, value: int) -> "ParamExpr":
        return cls("const", delta=int(value))

    @classmethod
    def rel(cls, delta: int, mod: Optional[int] = None) -> "ParamExpr":
        return cls("rel", delta=int(delta), mod=mod)

    @classmethod
    def from_table(cls, table: Dict[int, int]) -> "ParamExpr":
        return cls("table", table=dict(table))

    @classmethod
    def infer(cls, samples: Iterable[Tuple[int, int]],
              comm_size: Optional[int] = None) -> "ParamExpr":
        """Most compact expression exactly matching ``samples``.

        Preference order: const, rel (plain), rel (mod comm_size), table.
        """
        pairs = [(int(r), int(v)) for r, v in samples]
        if not pairs:
            raise ValueError("no samples")
        values = {v for _, v in pairs}
        if len(values) == 1:
            return cls.const(next(iter(values)))
        deltas = {v - r for r, v in pairs}
        if len(deltas) == 1:
            return cls.rel(next(iter(deltas)))
        # the modular form (rank+d) mod N only reproduces values that are
        # themselves valid ranks in [0, N)
        if comm_size and all(0 <= v < comm_size for _, v in pairs):
            mod_deltas = {(v - r) % comm_size for r, v in pairs}
            if len(mod_deltas) == 1:
                return cls.rel(next(iter(mod_deltas)), mod=comm_size)
        return cls.from_table(dict(pairs))

    # -- evaluation -------------------------------------------------------
    def evaluate(self, rank: int) -> int:
        if self.kind == "const":
            return self.delta
        if self.kind == "rel":
            v = rank + self.delta
            if self.mod is not None:
                v %= self.mod
            return v
        try:
            return self.table[rank]
        except KeyError:
            raise KeyError(f"rank {rank} not in table expression") from None

    def samples(self, ranks: Iterable[int]) -> Iterable[Tuple[int, int]]:
        return [(r, self.evaluate(r)) for r in ranks]

    def merge(self, my_ranks: Iterable[int], other: "ParamExpr",
              other_ranks: Iterable[int],
              comm_size: Optional[int] = None) -> "ParamExpr":
        """Expression covering both domains; re-inferred for compactness."""
        pairs = list(self.samples(my_ranks)) + list(other.samples(other_ranks))
        return ParamExpr.infer(pairs, comm_size)

    def is_constant(self) -> bool:
        return self.kind == "const"

    def constant_value(self) -> int:
        if self.kind != "const":
            raise ValueError("expression is not constant")
        return self.delta

    # -- comparison / rendering -------------------------------------------
    def _key(self):
        if self.kind == "table":
            return ("table", tuple(sorted(self.table.items())))
        return (self.kind, self.delta, self.mod)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ParamExpr):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def equivalent_on(self, other: "ParamExpr", ranks: Iterable[int]) -> bool:
        """True if both expressions agree on every rank in ``ranks``."""
        return all(self.evaluate(r) == other.evaluate(r) for r in ranks)

    def render(self, var: str) -> str:
        """Render as a coNCePTuaL arithmetic expression in ``var``."""
        if self.kind == "const":
            return str(self.delta)
        if self.kind == "rel":
            if self.delta == 0:
                body = var
            elif self.delta > 0:
                body = f"{var} + {self.delta}"
            else:
                body = f"{var} - {-self.delta}"
            if self.mod is not None:
                return f"({body}) MOD {self.mod}"
            return body
        raise ValueError("table expressions have no single rendering; "
                         "the code generator must emit per-rank cases")

    def serialize(self) -> str:
        if self.kind == "const":
            return f"C{self.delta}"
        if self.kind == "rel":
            return f"R{self.delta}" + (f"%{self.mod}" if self.mod is not None else "")
        items = ",".join(f"{r}={v}" for r, v in sorted(self.table.items()))
        return f"T{items}"

    @classmethod
    def parse(cls, text: str) -> "ParamExpr":
        text = text.strip()
        if text.startswith("C"):
            return cls.const(int(text[1:]))
        if text.startswith("R"):
            body = text[1:]
            if "%" in body:
                d, m = body.split("%")
                return cls.rel(int(d), mod=int(m))
            return cls.rel(int(body))
        if text.startswith("T"):
            table = {}
            for item in text[1:].split(","):
                r, v = item.split("=")
                table[int(r)] = int(v)
            return cls.from_table(table)
        raise ValueError(f"bad ParamExpr: {text!r}")

    def __repr__(self) -> str:
        return f"ParamExpr({self.serialize()})"
