"""Run-length encoded parameter sequences.

An RSD can cover many loop iterations whose message size (or tag, or root)
varies from iteration to iteration.  ScalaTrace keeps such parameters
losslessly but compressed.  :class:`ValueSeq` is that container: an
append-only sequence of integers stored as (value, repeat) runs, supporting
equality, concatenation, indexed access, and "tiling" — the operation loop
compression needs when two adjacent copies of a loop body fold into one
body with doubled iteration count.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple


class ValueSeq:
    """Immutable-by-convention RLE sequence of hashable values.

    Values are usually ints (peers, sizes, tags) but may be tuples for
    vector-collective size lists.  Use :meth:`append` only while building;
    treat as frozen once shared.
    """

    __slots__ = ("runs", "length")

    def __init__(self, values: Iterable = ()):
        self.runs: List[Tuple[object, int]] = []
        self.length = 0
        for v in values:
            self.append(v)

    @classmethod
    def constant(cls, value, count: int) -> "ValueSeq":
        s = cls()
        if count > 0:
            s.runs.append((value, int(count)))
            s.length = int(count)
        return s

    @classmethod
    def from_runs(cls, runs: Iterable[Tuple[int, int]]) -> "ValueSeq":
        s = cls()
        for v, c in runs:
            if c <= 0:
                raise ValueError("run count must be positive")
            if s.runs and s.runs[-1][0] == v:
                pv, pc = s.runs[-1]
                s.runs[-1] = (pv, pc + c)
            else:
                s.runs.append((v, int(c)))
            s.length += c
        return s

    def append(self, value, count: int = 1) -> None:
        if count <= 0:
            raise ValueError("count must be positive")
        if self.runs and self.runs[-1][0] == value:
            v, c = self.runs[-1]
            self.runs[-1] = (v, c + count)
        else:
            self.runs.append((value, count))
        self.length += count

    def extend(self, other: "ValueSeq") -> None:
        for v, c in other.runs:
            self.append(v, c)

    def is_constant(self) -> bool:
        return len(self.runs) <= 1

    @property
    def value(self):
        """The single value of a constant sequence."""
        if not self.is_constant():
            raise ValueError("sequence is not constant")
        if not self.runs:
            raise ValueError("sequence is empty")
        return self.runs[0][0]

    def first(self) -> int:
        if not self.runs:
            raise ValueError("sequence is empty")
        return self.runs[0][0]

    def __len__(self) -> int:
        return self.length

    def __iter__(self) -> Iterator[int]:
        for v, c in self.runs:
            for _ in range(c):
                yield v

    def __getitem__(self, i: int) -> int:
        if i < 0:
            i += self.length
        if not 0 <= i < self.length:
            raise IndexError(i)
        for v, c in self.runs:
            if i < c:
                return v
            i -= c
        raise AssertionError("unreachable")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ValueSeq):
            return NotImplemented
        return self.runs == other.runs

    def __hash__(self) -> int:
        return hash(tuple(self.runs))

    def total(self) -> int:
        """Sum of all (integer) values; vector values sum element totals."""
        out = 0
        for v, c in self.runs:
            if isinstance(v, tuple):
                out += sum(v) * c
            else:
                out += v * c
        return out

    def concat(self, other: "ValueSeq") -> "ValueSeq":
        s = ValueSeq()
        s.runs = list(self.runs)
        s.length = self.length
        s.extend(other)
        return s

    def tile(self, times: int) -> "ValueSeq":
        """The sequence repeated ``times`` times (RLE-aware)."""
        if times < 0:
            raise ValueError("times must be non-negative")
        s = ValueSeq()
        for _ in range(times):
            s.extend(self)
        return s

    def is_tiling_of(self, body: "ValueSeq") -> bool:
        """True if self equals ``body`` repeated an integral number of times."""
        if body.length == 0:
            return self.length == 0
        if self.length % body.length:
            return False
        return self == body.tile(self.length // body.length)

    @staticmethod
    def _render_value(v) -> str:
        if isinstance(v, tuple):
            return "(" + " ".join(str(x) for x in v) + ")"
        return str(v)

    @staticmethod
    def _parse_value(text: str):
        if text.startswith("("):
            inner = text[1:-1].strip()
            return tuple(int(x) for x in inner.split()) if inner else ()
        return int(text)

    def serialize(self) -> str:
        if not self.runs:
            return "-"
        return ",".join(
            self._render_value(v) if c == 1
            else f"{self._render_value(v)}x{c}"
            for v, c in self.runs
        )

    @classmethod
    def parse(cls, text: str) -> "ValueSeq":
        text = text.strip()
        s = cls()
        if not text or text == "-":
            return s
        # split on commas outside parentheses
        parts, depth, cur = [], 0, []
        for ch in text:
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
            if ch == "," and depth == 0:
                parts.append("".join(cur))
                cur = []
            else:
                cur.append(ch)
        parts.append("".join(cur))
        for part in parts:
            part = part.strip()
            if part.startswith("("):
                close = part.rindex(")")
                value = cls._parse_value(part[:close + 1])
                rest = part[close + 1:]
                count = int(rest[1:]) if rest.startswith("x") else 1
            elif "x" in part:
                v_s, c_s = part.rsplit("x", 1)
                value, count = cls._parse_value(v_s), int(c_s)
            else:
                value, count = cls._parse_value(part), 1
            s.append(value, count)
        return s

    def __repr__(self) -> str:
        return f"ValueSeq({self.serialize()})"
