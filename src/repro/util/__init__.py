"""Shared utility substrate: compact rank sets, timing histograms,
RLE value sequences, rank-parameterized expressions, call-site signatures."""

from repro.util.callsite import Callsite, capture_callsite
from repro.util.expr import ANY_SOURCE, ParamExpr
from repro.util.histogram import TimeHistogram
from repro.util.rankset import RankSet
from repro.util.valueseq import ValueSeq

__all__ = [
    "ANY_SOURCE",
    "Callsite",
    "ParamExpr",
    "RankSet",
    "TimeHistogram",
    "ValueSeq",
    "capture_callsite",
]
