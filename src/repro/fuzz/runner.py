"""The fuzz campaign runner: fan out schedules, dedupe the outcomes.

:func:`run_campaign` expands a :class:`~repro.fuzz.campaign.FuzzCampaign`
into an explicit-points sweep plan and fans it across the PR 4 sweep
engine's process pool — one pipeline per (cell, policy, seed).  The
interesting work happens after the sweep: outcomes are deduped into
**equivalence classes** per cell:

* completing schedules are keyed by their process-stable outcome
  fingerprint (makespan + per-rank clocks + serialized trace — see
  :func:`repro.sweep.engine._outcome_fingerprint`);
* deadlocking schedules are keyed by the structured
  :class:`~repro.sim.diagnostics.DeadlockDiagnostic` evidence the sweep
  captured: the wait-for cycle plus the kinds of operations blocked;
* other failures are keyed by their error text.

A cell is **divergent** when its schedules populate more than one
class, and exhibits a **schedule-dependent deadlock** when the
canonical baseline completes but some seeded schedule deadlocks — the
fuzzer's headline find.  Every divergent class carries its minimal
reproducer seed and the exact ``repro pipeline`` command that replays
it (``docs/FUZZING.md``).

The report's canonical rendering is byte-identical across worker
counts, like every other result object in the system; wall-clock and
seeds/sec throughput live in the execution metadata.  An optional
**corpus** (a JSON dict persisted across nightly runs) marks classes
never seen before, so recurring divergences do not drown new ones.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.errors import FuzzError
from repro.fuzz.campaign import FuzzCampaign, FuzzPoint
from repro.sweep.engine import PointResult, SweepResult, run_sweep

#: schema version of serialized fuzz reports and corpora
REPORT_VERSION = 1


def _signature(pr: PointResult) -> Tuple[str, str]:
    """The equivalence-class key ``(kind, key)`` of one point outcome.

    ``kind`` is ``outcome`` (completed; keyed by the process-stable
    outcome fingerprint), ``deadlock`` (keyed by wait-for cycle plus
    blocked-operation kinds), or ``error`` (keyed by error text).
    """
    if pr.status != "failed":
        return "outcome", str(pr.metrics.get("outcome_fp", ""))
    diag = pr.diagnostic
    if diag and diag.get("cycle"):
        cycle = "-".join(str(r) for r in diag["cycle"])
        blocked = diag.get("blocked") or {}
        # "Recv(src=ANY, tag=0)" -> "Recv": the operation kind, not its
        # arguments, so symmetric deadlocks of one shape share a class
        kinds = sorted({str(d).split("(", 1)[0]
                        for d in blocked.values()})
        return "deadlock", f"cycle={cycle};ops={','.join(kinds)}"
    return "error", str(pr.error or "unknown failure")


def _repro_command(point: FuzzPoint) -> str:
    """The CLI invocation that replays this point's schedule."""
    o = point.cell.overrides
    bits = ["repro", "pipeline", "--app", str(o.get("app")),
            "--np", str(o.get("nranks")),
            "--class", str(o.get("cls", "S"))]
    if o.get("platform"):
        bits += ["--platform", str(o["platform"])]
    if point.cell.topology:
        bits += ["--topology", point.cell.topology]
    if point.policy is not None:
        bits += ["--schedule-policy", point.policy,
                 "--schedule-seed", str(point.seed)]
    return " ".join(bits)


@dataclass
class FuzzReport:
    """Everything one executed campaign produced, classified.

    ``cells`` is the per-cell classification (plain data, already
    deterministic); ``sweep`` keeps the underlying
    :class:`~repro.sweep.engine.SweepResult` for drill-down.  The
    canonical renderings exclude all timing, so they are byte-identical
    across worker counts.
    """

    campaign: FuzzCampaign          #: the executed campaign
    cells: List[Dict[str, Any]]     #: per-cell classes, expansion order
    sweep: SweepResult              #: the raw per-point outcomes
    workers: int = 1                #: worker processes used
    seconds: float = 0.0            #: campaign wall-clock time
    new_classes: int = 0            #: classes unseen by the corpus
    corpus_known: int = 0           #: classes the corpus already held

    @property
    def divergent_cells(self) -> List[Dict[str, Any]]:
        """Cells whose schedules populated more than one class."""
        return [c for c in self.cells if c["divergent"]]

    @property
    def deadlock_cells(self) -> List[Dict[str, Any]]:
        """Cells with a schedule-dependent deadlock (canonical
        completes, some seeded schedule deadlocks)."""
        return [c for c in self.cells
                if c["schedule_dependent_deadlock"]]

    def seeded_points(self) -> int:
        """How many non-canonical schedules the campaign executed."""
        return sum(c["points"] - 1 for c in self.cells)

    def seeds_per_second(self) -> float:
        """Campaign throughput: seeded schedules per wall second."""
        if self.seconds <= 0:
            return 0.0
        return self.seeded_points() / self.seconds

    def canonical_dict(self) -> Dict[str, Any]:
        """Deterministic campaign outcome: identity + classification."""
        return {"version": REPORT_VERSION,
                "name": self.campaign.name,
                "mode": self.campaign.mode,
                "campaign_digest": self.campaign.digest(),
                "cells": self.cells}

    def canonical_json(self) -> str:
        """Canonical JSON: byte-identical for any worker count."""
        return json.dumps(self.canonical_dict(), sort_keys=True,
                          separators=(",", ":")) + "\n"

    def to_dict(self) -> Dict[str, Any]:
        """Full rendering: canonical outcome + execution metadata."""
        out = self.canonical_dict()
        out["execution"] = {
            "workers": self.workers,
            "seconds": round(self.seconds, 6),
            "seeded_points": self.seeded_points(),
            "seeds_per_second": round(self.seeds_per_second(), 3),
            "new_classes": self.new_classes,
            "corpus_known": self.corpus_known,
        }
        return out

    def summary(self) -> str:
        """The per-cell table printed by ``repro fuzz run``."""
        lines = [f"fuzz report: {self.campaign.name} "
                 f"({len(self.cells)} cell(s), "
                 f"{self.seeded_points()} seeded schedule(s), "
                 f"{self.workers} worker(s), "
                 f"digest {self.campaign.digest()})"]
        for cell in self.cells:
            flags = []
            if cell["schedule_dependent_deadlock"]:
                flags.append("SCHEDULE-DEPENDENT DEADLOCK")
            elif cell["divergent"]:
                flags.append("divergent")
            tag = f"  [{', '.join(flags)}]" if flags else ""
            lines.append(f"  {cell['label']}: "
                         f"{len(cell['classes'])} class(es){tag}")
            for cls in cell["classes"]:
                mark = "*" if cls["canonical"] else " "
                bits = [f"   {mark} {cls['kind']}: {cls['count']} "
                        f"schedule(s)"]
                if cls["reproducer"] is not None:
                    rep = cls["reproducer"]
                    bits.append(f"min seed {rep['seed']} "
                                f"({rep['policy']})")
                lines.append("  ".join(bits))
        lines.append(f"  total  {self.seconds:.2f}s wall; "
                     f"{self.seeds_per_second():.1f} seeds/s; "
                     f"{len(self.divergent_cells)} divergent cell(s), "
                     f"{len(self.deadlock_cells)} with "
                     f"schedule-dependent deadlock")
        if self.new_classes or self.corpus_known:
            lines.append(f"  corpus: {self.new_classes} new class(es), "
                         f"{self.corpus_known} already known")
        return "\n".join(lines)


def _classify_cell(points: List[FuzzPoint],
                   results: Dict[int, PointResult],
                   policy_order: Tuple[str, ...]) -> Dict[str, Any]:
    """The classification record of one cell from its point outcomes."""
    cell = points[0].cell
    classes: Dict[Tuple[str, str], Dict[str, Any]] = {}
    canonical_key: Optional[Tuple[str, str]] = None
    for point in points:
        pr = results.get(point.index)
        if pr is None:  # pragma: no cover - sweep always yields a record
            continue
        sig = _signature(pr)
        entry = classes.get(sig)
        if entry is None:
            entry = classes[sig] = {
                "kind": sig[0], "key": sig[1], "count": 0,
                "canonical": False, "seeds": {p: [] for p in policy_order},
                "reproducer": None,
                "makespan_s": pr.metrics.get("makespan_s"),
                "error": pr.error,
                "diagnostic": pr.diagnostic,
            }
        entry["count"] += 1
        if point.policy is None:
            entry["canonical"] = True
            canonical_key = sig
        else:
            entry["seeds"][point.policy].append(point.seed)
            rep = entry["reproducer"]
            better = (point.seed, policy_order.index(point.policy))
            if rep is None or better < (rep["seed"],
                                        policy_order.index(rep["policy"])):
                entry["reproducer"] = {
                    "policy": point.policy, "seed": point.seed,
                    "command": _repro_command(point)}
    ordered = sorted(
        classes.values(),
        key=lambda c: (not c["canonical"], c["kind"], c["key"]))
    for entry in ordered:
        entry["seeds"] = {p: sorted(s) for p, s in entry["seeds"].items()
                          if s}
    canonical_entry = ordered[0] if ordered and ordered[0]["canonical"] \
        else None
    return {
        "cell": cell.index,
        "label": cell.label(),
        "topology": cell.topology,
        "points": len(points),
        "canonical_kind": (canonical_entry["kind"]
                           if canonical_entry else None),
        "classes": ordered,
        "divergent": len(ordered) > 1,
        "schedule_dependent_deadlock": bool(
            canonical_entry and canonical_entry["kind"] == "outcome"
            and any(c["kind"] == "deadlock" for c in ordered
                    if not c["canonical"])),
    }


def run_campaign(campaign: FuzzCampaign, workers: int = 1, *,
                 use_cache: bool = False,
                 cache_dir: str = ".repro-cache",
                 corpus: Optional[Dict[str, Any]] = None,
                 progress=None) -> FuzzReport:
    """Execute ``campaign`` and classify the schedule outcomes.

    ``workers`` fans the points across the sweep engine's process pool.
    The artifact cache is *off* by default: every point of a cell shares
    the same app/platform but runs a different schedule, so canonical
    content addresses would rarely be reused and a policy-keyed trace
    cache mostly pays write traffic (``use_cache=True`` restores the
    PR 2 behavior for campaigns that re-run).  ``corpus``, when given,
    is a mutable dict (see :func:`load_corpus`) consulted and updated in
    place so nightly campaigns can flag never-before-seen classes.
    ``progress`` is forwarded to :func:`~repro.sweep.engine.run_sweep`.
    """
    points = campaign.points()
    plan = campaign.to_sweep_plan()
    t0 = time.perf_counter()
    with obs.span("fuzz.campaign", campaign=campaign.name,
                  points=len(points), workers=workers):
        sweep = run_sweep(plan, workers, use_cache=use_cache,
                          cache_dir=cache_dir, progress=progress,
                          fingerprint_outcomes=True)
        results = {pr.index: pr for pr in sweep.points}
        by_cell: Dict[int, List[FuzzPoint]] = {}
        for point in points:
            by_cell.setdefault(point.cell.index, []).append(point)
        cells = [_classify_cell(pts, results, campaign.policies)
                 for _, pts in sorted(by_cell.items())]
    report = FuzzReport(campaign=campaign, cells=cells, sweep=sweep,
                        workers=sweep.workers,
                        seconds=time.perf_counter() - t0)
    if corpus is not None:
        _consult_corpus(corpus, report)
    obs.count("fuzz.points", len(points))
    obs.count("fuzz.cells", len(cells))
    obs.count("fuzz.classes", sum(len(c["classes"]) for c in cells))
    obs.count("fuzz.divergent_cells", len(report.divergent_cells))
    obs.count("fuzz.deadlock_cells", len(report.deadlock_cells))
    obs.count("fuzz.new_classes", report.new_classes)
    obs.event("campaign_done", "fuzz.campaign",
              campaign=campaign.name, cells=len(cells),
              divergent=len(report.divergent_cells),
              dur_s=report.seconds)
    return report


# -- dedup corpus -----------------------------------------------------------

def _corpus_key(cell: Dict[str, Any], cls: Dict[str, Any]) -> str:
    """The cross-run identity of one class: cell label + class key."""
    return f"{cell['label']}|{cls['kind']}|{cls['key']}"


def _consult_corpus(corpus: Dict[str, Any], report: FuzzReport) -> None:
    """Mark each class new/known against ``corpus`` and record it."""
    if not isinstance(corpus, dict):
        raise FuzzError(
            f"corpus must be a dict (see load_corpus), got "
            f"{type(corpus).__name__}")
    classes = corpus.setdefault("classes", {})
    new = known = 0
    for cell in report.cells:
        for cls in cell["classes"]:
            key = _corpus_key(cell, cls)
            if key in classes:
                cls["new"] = False
                classes[key]["seen"] += 1
                known += 1
            else:
                cls["new"] = True
                classes[key] = {
                    "kind": cls["kind"],
                    "cell": cell["label"],
                    "first_campaign": report.campaign.digest(),
                    "reproducer": cls["reproducer"],
                    "seen": 1,
                }
                new += 1
    corpus["version"] = REPORT_VERSION
    report.new_classes = new
    report.corpus_known = known


def load_corpus(path: str) -> Dict[str, Any]:
    """The dedup corpus at ``path``; a fresh one if the file is absent.

    The corpus is plain JSON so ``actions/cache`` can persist it across
    nightly runs; a corrupt file raises :class:`FuzzError` rather than
    silently discarding history.
    """
    import os
    if not os.path.exists(path):
        return {"version": REPORT_VERSION, "classes": {}}
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise FuzzError(f"cannot read fuzz corpus {path!r}: {exc}") \
            from None
    if not isinstance(data, dict) or \
            not isinstance(data.get("classes", {}), dict):
        raise FuzzError(f"fuzz corpus {path!r} is not a corpus mapping")
    data.setdefault("classes", {})
    return data


def save_corpus(path: str, corpus: Dict[str, Any]) -> None:
    """Write ``corpus`` back to ``path`` (stable key order)."""
    text = json.dumps(corpus, sort_keys=True, indent=2) + "\n"
    try:
        with open(path, "w") as fh:
            fh.write(text)
    except OSError as exc:
        raise FuzzError(f"cannot write fuzz corpus {path!r}: {exc}") \
            from None
