"""Declarative fuzz campaigns: one file describes a schedule-space hunt.

A :class:`FuzzCampaign` is the fuzzer's analogue of a
:class:`~repro.sweep.plan.SweepPlan`: a frozen, digest-keyed value
object describing *which* schedule spaces to explore and *how hard*.
It has four parts:

* ``base`` — :class:`~repro.pipeline.PipelineConfig` fields shared by
  every point (platform, max_steps, ...);
* ``apps`` — the application cells, each a mapping of config fields
  (``app``, ``nranks``, ``cls``, and any per-cell override);
* ``topologies`` — routed-fabric names the cells are crossed with
  (``null`` = the flat network);
* ``scenarios`` — scenario references the cells are crossed with
  (``null`` = none; curated names or inline specs, see
  ``docs/SCENARIOS.md``).  Scenarios that pin the schedule are
  rejected — the campaign owns the schedule dimension;
* ``policies`` x ``seeds`` — the seeded scheduler policies
  (:data:`repro.sim.policy.SEEDED_POLICIES`) and how many consecutive
  seeds (starting at ``seed0``) each one explores.

Expansion is deterministic: for every cell x topology, the campaign
emits one **canonical baseline** point first, then one point per
(policy, seed) in listed-policy, ascending-seed order.  The campaign's
:meth:`~FuzzCampaign.digest` is a stable content address used to key
reports and the nightly dedup corpus, exactly as a sweep plan's digest
keys sweep results.

Campaigns serialize to/from YAML (or JSON when PyYAML is unavailable);
see ``docs/FUZZING.md`` for the schema and ``repro fuzz template`` for
a commented example.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import FuzzCampaignError
from repro.sim.policy import SEEDED_POLICIES

#: pipeline suffixes a campaign may drive: the full Fig. 1 flow or
#: tracing alone (cheapest: the traced run already carries the
#: schedule-dependent outcome the fuzzer compares)
CAMPAIGN_MODES = ("run", "trace")

#: config fields the campaign owns; cells and base may not set them
_RESERVED_FIELDS = ("schedule_policy", "schedule_seed", "topology",
                    "scenario")


def _check_cell(where: str, mapping: Mapping[str, Any]) -> None:
    """Reject reserved or unknown config fields with a helpful message."""
    from repro.sweep.plan import _config_fields
    known = _config_fields()
    for key in mapping:
        if key in _RESERVED_FIELDS:
            raise FuzzCampaignError(
                f"{where}: field {key!r} is owned by the campaign "
                f"(set it via the policies/seeds/topologies/scenarios "
                f"keys)")
        if key not in known:
            raise FuzzCampaignError(
                f"{where}: unknown config field {key!r}; choose from "
                f"{sorted(k for k in known if k not in _RESERVED_FIELDS)}")


@dataclass(frozen=True)
class FuzzCell:
    """One expanded (application cell x topology x scenario) space."""

    index: int                     #: position in expansion order
    overrides: Dict[str, Any]      #: base + cell fields (+ topology...)
    topology: Optional[str]        #: routed fabric, None = flat
    scenario: Optional[str] = None  #: scenario label, None = unscoped

    def label(self) -> str:
        """Short human label: app/nranks/cls plus the topology."""
        o = self.overrides
        bits = [str(o.get("app", "?")),
                f"np={o.get('nranks', '?')}",
                f"cls={o.get('cls', 'S')}"]
        if o.get("platform"):
            bits.append(str(o["platform"]))
        if self.topology:
            bits.append(self.topology)
        if self.scenario:
            bits.append(f"scenario={self.scenario}")
        return "/".join(bits)


@dataclass(frozen=True)
class FuzzPoint:
    """One schedule to execute: a cell under one (policy, seed).

    ``policy`` is None for the cell's canonical baseline point.  The
    ``index`` matches the expanded sweep plan's point index, which is
    how the runner joins sweep outcomes back to campaign coordinates.
    """

    index: int                  #: sweep-plan point index
    cell: FuzzCell              #: the schedule space being explored
    policy: Optional[str]       #: seeded policy name, None = canonical
    seed: Optional[int]         #: schedule seed, None = canonical

    def overrides(self) -> Dict[str, Any]:
        """The full config-field mapping for this point."""
        out = dict(self.cell.overrides)
        if self.policy is not None:
            out["schedule_policy"] = self.policy
            out["schedule_seed"] = self.seed
        return out

    def label(self) -> str:
        """Human label: cell plus the schedule coordinates."""
        if self.policy is None:
            return f"{self.cell.label()} canonical"
        return f"{self.cell.label()} {self.policy}(seed={self.seed})"


@dataclass(frozen=True)
class FuzzCampaign:
    """A digest-keyed description of one schedule-space fuzz campaign."""

    name: str = "fuzz"              #: campaign name (reports, corpus)
    mode: str = "run"               #: pipeline suffix (CAMPAIGN_MODES)
    base: Dict[str, Any] = field(default_factory=dict)
    apps: Tuple[Dict[str, Any], ...] = ()
    topologies: Tuple[Optional[str], ...] = (None,)
    scenarios: Tuple[Any, ...] = (None,)
    policies: Tuple[str, ...] = SEEDED_POLICIES
    seeds: int = 16                 #: seeds explored per policy
    seed0: int = 0                  #: first seed of the range

    def __post_init__(self):
        """Validate every part; normalize sequences to tuples."""
        if not self.name:
            raise FuzzCampaignError("campaign name must be non-empty")
        if self.mode not in CAMPAIGN_MODES:
            raise FuzzCampaignError(
                f"unknown mode {self.mode!r}; choose from "
                f"{CAMPAIGN_MODES}")
        _check_cell("base", self.base)
        if not isinstance(self.apps, (list, tuple)) or not self.apps:
            raise FuzzCampaignError(
                "campaign fuzzes nothing: give at least one app cell")
        cells = []
        for i, cell in enumerate(self.apps):
            if not isinstance(cell, Mapping):
                raise FuzzCampaignError(
                    f"app cell {i} must be a mapping of config fields, "
                    f"got {cell!r}")
            _check_cell(f"app cell {i}", cell)
            if not (cell.get("app") or self.base.get("app")):
                raise FuzzCampaignError(
                    f"app cell {i} names no application (set 'app' in "
                    f"the cell or in base)")
            cells.append(dict(cell))
        object.__setattr__(self, "apps", tuple(cells))
        topos = self.topologies
        if not isinstance(topos, (list, tuple)) or not topos:
            raise FuzzCampaignError(
                "topologies must be a non-empty list (use [null] for "
                "the flat network)")
        from repro.topology import TOPOLOGIES
        for t in topos:
            if t is not None and t not in TOPOLOGIES:
                raise FuzzCampaignError(
                    f"unknown topology {t!r}; choose from "
                    f"{sorted(TOPOLOGIES)} or null")
        object.__setattr__(self, "topologies", tuple(topos))
        scns = self.scenarios
        if not isinstance(scns, (list, tuple)) or not scns:
            raise FuzzCampaignError(
                "scenarios must be a non-empty list (use [null] for "
                "no scenario)")
        from repro.errors import ScenarioError
        from repro.scenarios import get_scenario
        normalized = []
        seen_digests = set()
        for i, entry in enumerate(scns):
            if entry is None:
                if None in normalized:
                    raise FuzzCampaignError(
                        f"scenarios[{i}]: null listed more than once")
                normalized.append(None)
                continue
            try:
                scn = get_scenario(entry)
            except ScenarioError as exc:
                raise FuzzCampaignError(
                    f"scenarios[{i}]: {exc}") from None
            if scn.pins_schedule():
                raise FuzzCampaignError(
                    f"scenarios[{i}]: scenario {scn.name!r} pins the "
                    f"schedule ({scn.schedule_policy}), but the "
                    f"campaign owns the schedule dimension; drop the "
                    f"pin or use a scenario without one")
            if scn.digest() in seen_digests:
                raise FuzzCampaignError(
                    f"scenarios[{i}]: scenario {scn.name!r} listed "
                    f"more than once")
            seen_digests.add(scn.digest())
            normalized.append(entry if isinstance(entry, str)
                              else scn.to_dict())
        object.__setattr__(self, "scenarios", tuple(normalized))
        pols = self.policies
        if not isinstance(pols, (list, tuple)) or not pols:
            raise FuzzCampaignError(
                "policies must be a non-empty list of seeded policy "
                f"names from {SEEDED_POLICIES}")
        seen = set()
        for p in pols:
            if p not in SEEDED_POLICIES:
                extra = (" (the canonical baseline runs automatically; "
                         "listing it is redundant)"
                         if p == "canonical" else "")
                raise FuzzCampaignError(
                    f"unknown fuzz policy {p!r}; choose from "
                    f"{SEEDED_POLICIES}{extra}")
            if p in seen:
                raise FuzzCampaignError(
                    f"policy {p!r} listed more than once")
            seen.add(p)
        object.__setattr__(self, "policies", tuple(pols))
        if not isinstance(self.seeds, int) or isinstance(self.seeds, bool) \
                or self.seeds < 1:
            raise FuzzCampaignError(
                f"seeds must be a positive int, got {self.seeds!r}")
        if not isinstance(self.seed0, int) or isinstance(self.seed0, bool):
            raise FuzzCampaignError(
                f"seed0 must be an int, got {self.seed0!r}")

    # -- expansion ----------------------------------------------------------
    def cells(self) -> List[FuzzCell]:
        """The (app cell x topology x scenario) schedule spaces, in
        expansion order."""
        out: List[FuzzCell] = []
        for cell in self.apps:
            for topo in self.topologies:
                for scn in self.scenarios:
                    overrides = {**self.base, **cell}
                    if topo is not None:
                        overrides["topology"] = topo
                    label = None
                    if scn is not None:
                        overrides["scenario"] = scn
                        label = (scn if isinstance(scn, str)
                                 else scn.get("name", "inline"))
                    out.append(FuzzCell(len(out), overrides, topo, label))
        return out

    def points(self) -> List[FuzzPoint]:
        """The deterministic point list: per cell, the canonical
        baseline first, then every (policy, seed) in listed-policy,
        ascending-seed order."""
        out: List[FuzzPoint] = []
        for cell in self.cells():
            out.append(FuzzPoint(len(out), cell, None, None))
            for policy in self.policies:
                for seed in range(self.seed0, self.seed0 + self.seeds):
                    out.append(FuzzPoint(len(out), cell, policy, seed))
        return out

    def to_sweep_plan(self):
        """The campaign as an explicit-points sweep plan, ready for the
        :func:`~repro.sweep.engine.run_sweep` worker pool."""
        from repro.errors import SweepPlanError
        from repro.sweep.plan import SweepPlan
        try:
            return SweepPlan(
                name=f"fuzz-{self.name}", mode=self.mode,
                extra_points=tuple(p.overrides() for p in self.points()))
        except SweepPlanError as exc:
            raise FuzzCampaignError(str(exc)) from None

    def check(self) -> int:
        """Build every point's config, surfacing any invalid value as a
        :class:`FuzzCampaignError`; returns the point count
        (``repro fuzz validate``)."""
        from repro.errors import SweepPlanError
        try:
            return self.to_sweep_plan().check()
        except SweepPlanError as exc:
            raise FuzzCampaignError(str(exc)) from None

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data rendering (the YAML/JSON file content).

        ``scenarios`` is omitted at its default so campaigns written
        before the scenario axis existed keep their digests.
        """
        out = {
            "name": self.name,
            "mode": self.mode,
            "base": dict(self.base),
            "apps": [dict(c) for c in self.apps],
            "topologies": list(self.topologies),
            "policies": list(self.policies),
            "seeds": self.seeds,
            "seed0": self.seed0,
        }
        if self.scenarios != (None,):
            out["scenarios"] = [s if s is None or isinstance(s, str)
                                else dict(s) for s in self.scenarios]
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FuzzCampaign":
        """Build and validate a campaign from parsed YAML/JSON data."""
        if not isinstance(data, Mapping):
            raise FuzzCampaignError(
                f"fuzz campaign must be a mapping, got "
                f"{type(data).__name__}")
        known = {"name", "mode", "base", "apps", "topologies",
                 "scenarios", "policies", "seeds", "seed0"}
        unknown = set(data) - known
        if unknown:
            raise FuzzCampaignError(
                f"unknown fuzz-campaign keys: {sorted(unknown)}; "
                f"known keys: {sorted(known)}")
        apps = data.get("apps", [])
        if not isinstance(apps, Sequence) or isinstance(apps, (str, bytes)):
            raise FuzzCampaignError(
                "apps must be a list of config-field mappings")
        kwargs: Dict[str, Any] = {
            "name": data.get("name", "fuzz"),
            "mode": data.get("mode", "run"),
            "base": dict(data.get("base", {})),
            "apps": tuple(apps),
        }
        for key in ("topologies", "scenarios", "policies", "seeds",
                    "seed0"):
            if key in data:
                value = data[key]
                kwargs[key] = (tuple(value)
                               if isinstance(value, list) else value)
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise FuzzCampaignError(f"bad fuzz campaign: {exc}") from None

    def digest(self) -> str:
        """Stable content address of the campaign (keys reports and the
        nightly dedup corpus)."""
        payload = json.dumps(self.to_dict(), sort_keys=True, default=str)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def describe(self) -> str:
        """One-line human summary (``repro fuzz validate``)."""
        n_cells = len(self.cells())
        per_cell = 1 + len(self.policies) * self.seeds
        return (f"{self.name}: {n_cells} cell(s) x {per_cell} "
                f"schedule(s) = {n_cells * per_cell} point(s) "
                f"(mode={self.mode}; policies "
                f"{', '.join(self.policies)}; seeds "
                f"{self.seed0}..{self.seed0 + self.seeds - 1}; "
                f"digest {self.digest()})")


#: commented example written by ``repro fuzz template`` — a small hunt
#: over the seeded wildcard-race fixture plus a control app
TEMPLATE = """\
# repro fuzz campaign (see docs/FUZZING.md for the full schema)
name: race-hunt           # campaign name; lands in reports and corpus
mode: run                 # run | trace (pipeline suffix per point)
base:                     # PipelineConfig fields shared by every cell
  platform: ethernet      #   (anything except the campaign-owned
                          #   schedule_policy/schedule_seed/topology)
apps:                     # application cells: each its own schedule
  - {app: race, nranks: 5, cls: W}   # wildcard fan-in race fixture
  - {app: ring, nranks: 8, cls: S}   # deterministic control: one class
topologies: [null]        # cross cells with routed fabrics; null = flat
                          # e.g. [null, torus3d, fattree]
scenarios: [null]         # cross cells with adversity scenarios; null =
                          # none; e.g. [null, torus-hotlink] (curated
                          # names from `repro scenarios list` — pins of
                          # schedule_policy are rejected here)
policies:                 # seeded policies to explore (the canonical
  - random                # baseline point runs automatically per cell)
  - adversarial-delay
seeds: 16                 # seeds per policy per cell ...
seed0: 0                  # ... starting here
"""


def loads_campaign(text: str) -> FuzzCampaign:
    """Parse a campaign from YAML (preferred) or JSON text."""
    data: Optional[Any] = None
    try:
        import yaml
    except ImportError:  # pragma: no cover - PyYAML is normally present
        yaml = None
    if yaml is not None:
        try:
            data = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise FuzzCampaignError(
                f"unparsable fuzz campaign: {exc}") from None
    else:  # pragma: no cover - JSON fallback without PyYAML
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FuzzCampaignError(
                f"unparsable fuzz campaign: {exc}") from None
    if data is None:
        data = {}
    return FuzzCampaign.from_dict(data)


def load_campaign(path: str) -> FuzzCampaign:
    """Load a :class:`FuzzCampaign` from a YAML/JSON file."""
    try:
        with open(path) as fh:
            text = fh.read()
    except OSError as exc:
        raise FuzzCampaignError(
            f"cannot read fuzz campaign {path!r}: {exc}") from None
    return loads_campaign(text)


def dumps_campaign(campaign: FuzzCampaign) -> str:
    """Serialize a campaign back to YAML (JSON without PyYAML)."""
    data = campaign.to_dict()
    try:
        import yaml
    except ImportError:  # pragma: no cover - JSON fallback
        return json.dumps(data, indent=2, sort_keys=True) + "\n"
    return yaml.safe_dump(data, sort_keys=False)
