"""repro.fuzz — the schedule-space fuzzer.

The simulator's canonical schedule is *one* legal execution of an MPI
program; real runtimes promise only MPI's matching rules, not that
order.  This package explores the rest of the legal schedule space:

* :class:`FuzzCampaign` — a digest-keyed YAML/JSON description of a
  campaign: application cells x topologies x seeded scheduler policies
  (:mod:`repro.sim.policy`) x N seeds, plus one canonical baseline
  point per cell;
* :func:`run_campaign` — expands the campaign into a
  :class:`~repro.sweep.plan.SweepPlan`, fans it across the sweep
  engine's worker pool, and dedupes the outcomes into *equivalence
  classes* (same makespan + trace fingerprint, or same deadlock
  wait-for cycle);
* :class:`FuzzReport` — the classified result: per-cell classes, seed
  counts, a minimal reproducer seed per divergent class, and the exact
  ``repro pipeline --schedule-policy ... --schedule-seed ...`` command
  that replays it.

Quick start::

    from repro.fuzz import FuzzCampaign, run_campaign

    campaign = FuzzCampaign(
        name="race-hunt",
        apps=({"app": "race", "nranks": 5, "cls": "W",
               "platform": "ethernet"},),
        policies=("random", "adversarial-delay"),
        seeds=16)
    report = run_campaign(campaign, workers=4)
    print(report.summary())

See ``docs/FUZZING.md`` for policy semantics, the campaign schema, and
how to reproduce a divergence outside the fuzzer.
"""

from repro.fuzz.campaign import (CAMPAIGN_MODES, TEMPLATE, FuzzCampaign,
                                 FuzzCell, FuzzPoint, dumps_campaign,
                                 load_campaign, loads_campaign)
from repro.fuzz.runner import (FuzzReport, load_corpus, run_campaign,
                               save_corpus)

__all__ = [
    "CAMPAIGN_MODES",
    "FuzzCampaign",
    "FuzzCell",
    "FuzzPoint",
    "FuzzReport",
    "TEMPLATE",
    "dumps_campaign",
    "load_campaign",
    "load_corpus",
    "loads_campaign",
    "run_campaign",
    "save_corpus",
]
