"""Digest-keyed scenario specifications.

A :class:`Scenario` is the faults/sweeps analogue for *adversity*: one
frozen, digest-keyed value object composing every execution dimension
the what-if layers grew separately — the run platform
(``run_platform``/``run_platform_params``), the routed fabric
(``topology``/``topology_params``/``placement``), the engine's
tie-break policy (``schedule_policy``/``schedule_seed``), the per-link
queue discipline (``queue_discipline``/``queue_params``), and a fault
plan — plus a list of **adversaries**: topology-aware generators
(:mod:`repro.scenarios.adversaries`) that expand into concrete
:class:`~repro.faults.plan.LinkWindow` / straggler entries once the
application and rank count are known.

Scenarios are *execution-only* by construction: a
:class:`~repro.pipeline.config.PipelineConfig` carrying one still
produces byte-identical trace and emit artifacts, because

* the composed dimensions a scenario pins (platform overrides,
  topology, placement, queue discipline) were already execution-only;
* the scenario's fault content (its plan and its adversaries) is
  applied only by the execution stages (run/replay), never by the
  trace stage;
* a pinned schedule policy likewise steers only the execution stages
  — the trace stays canonical.

That is what lets a sweep or fuzz campaign add a ``scenario`` axis and
still share one cached trace and source across every point.

Scenarios serialize to/from YAML (or JSON when PyYAML is unavailable);
see ``docs/SCENARIOS.md`` for the schema and ``repro scenarios show``
for rendered examples.  Curated named scenarios live in
:mod:`repro.scenarios.registry`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import ScenarioError
from repro.faults.plan import FaultPlan


def _params_tuple(where: str, params) -> Optional[Tuple[Tuple[str, Any],
                                                        ...]]:
    """Normalize a params mapping (or pair sequence) to a sorted tuple
    of ``(name, value)`` pairs — the same canonical form
    :class:`~repro.pipeline.config.PipelineConfig` uses."""
    if params is None:
        return None
    if isinstance(params, Mapping):
        items = list(params.items())
    else:
        try:
            items = [(k, v) for k, v in params]
        except (TypeError, ValueError):
            raise ScenarioError(
                f"{where} must be a mapping or a sequence of "
                f"(name, value) pairs, got {params!r}") from None
    for k, _ in items:
        if not isinstance(k, str) or not k:
            raise ScenarioError(
                f"{where} keys must be non-empty strings, got {k!r}")
    return tuple(sorted(items, key=lambda kv: kv[0])) or None


def _params_data(params: Optional[Tuple[Tuple[str, Any], ...]]):
    """Tuple-of-pairs back to the plain dict used in serialized form."""
    return dict(params) if params else None


@dataclass(frozen=True)
class AdversarySpec:
    """One adversary invocation: a generator kind plus its parameters.

    ``kind`` names a generator in
    :data:`repro.scenarios.adversaries.ADVERSARIES`; ``params`` are its
    knobs, normalized to a sorted tuple of pairs.  Parameter names are
    validated at construction; values are validated (against the
    concrete topology, rank count, and app pattern) at expansion.
    """

    kind: str
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self):
        from repro.scenarios.adversaries import validate_adversary
        object.__setattr__(
            self, "params",
            _params_tuple(f"adversary {self.kind!r} params", self.params)
            or ())
        validate_adversary(self.kind, dict(self.params))

    def param_dict(self) -> Dict[str, Any]:
        """The parameters as a plain dict (expansion input)."""
        return dict(self.params)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind}
        if self.params:
            out["params"] = dict(self.params)
        return out

    @classmethod
    def from_dict(cls, data) -> "AdversarySpec":
        if not isinstance(data, Mapping):
            raise ScenarioError(
                f"an adversary must be a mapping, got "
                f"{type(data).__name__}")
        unknown = set(data) - {"kind", "params"}
        if unknown:
            raise ScenarioError(
                f"unknown adversary keys: {sorted(unknown)}; "
                f"known keys: ['kind', 'params']")
        if "kind" not in data:
            raise ScenarioError("an adversary needs a 'kind'")
        return cls(kind=data["kind"], params=tuple(
            sorted((data.get("params") or {}).items())))


@dataclass(frozen=True)
class Scenario:
    """One complete, digest-keyed description of an execution scenario."""

    name: str
    description: str = ""
    #: execution platform preset + keyword overrides (None = not pinned)
    run_platform: Optional[str] = None
    run_platform_params: Optional[Tuple[Tuple[str, Any], ...]] = None
    #: routed fabric: topology name, its parameters, rank→node placement
    topology: Optional[str] = None
    topology_params: Optional[Tuple[Tuple[str, Any], ...]] = None
    placement: Optional[str] = None
    #: engine tie-break policy for the execution stages (None = not
    #: pinned; the trace stage always stays canonical under a scenario)
    schedule_policy: Optional[str] = None
    schedule_seed: Optional[int] = None
    #: per-link queue discipline for the execution stages
    queue_discipline: Optional[str] = None
    queue_params: Optional[Tuple[Tuple[str, Any], ...]] = None
    #: base fault plan, merged with whatever the adversaries emit
    fault_plan: Optional[FaultPlan] = None
    #: topology-aware generators expanded at run time (app + nranks)
    adversaries: Tuple[AdversarySpec, ...] = ()

    def __post_init__(self):
        if not isinstance(self.name, str) or not self.name:
            raise ScenarioError("scenario name must be a non-empty string")
        if not isinstance(self.description, str):
            raise ScenarioError(
                f"scenario description must be a string, got "
                f"{self.description!r}")
        for f in ("run_platform_params", "topology_params", "queue_params"):
            object.__setattr__(self, f,
                               _params_tuple(f, getattr(self, f)))
        if self.run_platform is not None:
            from repro.sim.network import (PLATFORMS,
                                           validate_platform_params)
            if self.run_platform not in PLATFORMS:
                raise ScenarioError(
                    f"unknown run_platform {self.run_platform!r}; "
                    f"choose from {sorted(PLATFORMS)}")
            if self.run_platform_params is not None:
                try:
                    validate_platform_params(
                        self.run_platform,
                        [k for k, _ in self.run_platform_params])
                except ValueError as exc:
                    raise ScenarioError(
                        f"bad run_platform_params: {exc}") from None
        elif self.run_platform_params is not None:
            raise ScenarioError(
                "run_platform_params given without a run_platform")
        if self.topology is not None:
            from repro.topology import (TOPOLOGIES,
                                        validate_topology_params)
            if self.topology not in TOPOLOGIES:
                raise ScenarioError(
                    f"unknown topology {self.topology!r}; choose from "
                    f"{sorted(TOPOLOGIES)}")
            if self.topology_params is not None:
                try:
                    validate_topology_params(
                        self.topology,
                        [k for k, _ in self.topology_params])
                except ValueError as exc:
                    raise ScenarioError(
                        f"bad topology_params: {exc}") from None
        elif self.topology_params is not None:
            raise ScenarioError("topology_params given without a topology")
        if self.placement is not None:
            from repro.topology import parse_placement_spec
            try:
                parse_placement_spec(self.placement)
            except ValueError as exc:
                raise ScenarioError(f"bad placement: {exc}") from None
        if self.schedule_policy is not None or \
                self.schedule_seed is not None:
            if self.schedule_policy is None:
                raise ScenarioError(
                    "schedule_seed given without a schedule_policy")
            from repro.sim.policy import resolve_policy
            try:
                resolve_policy(self.schedule_policy, self.schedule_seed)
            except ValueError as exc:
                raise ScenarioError(str(exc)) from None
        if self.queue_discipline is not None or \
                self.queue_params is not None:
            if self.queue_discipline is None:
                raise ScenarioError(
                    "queue_params given without a queue_discipline")
            from repro.sim.queueing import resolve_queue_discipline
            try:
                resolve_queue_discipline(self.queue_discipline,
                                         dict(self.queue_params or ()))
            except ValueError as exc:
                raise ScenarioError(str(exc)) from None
            if self.queue_discipline != "fifo" and self.topology is None:
                raise ScenarioError(
                    f"queue discipline {self.queue_discipline!r} needs "
                    "the scenario to pin a routed topology")
        if self.fault_plan is not None and \
                not isinstance(self.fault_plan, FaultPlan):
            object.__setattr__(
                self, "fault_plan",
                FaultPlan.from_dict(dict(self.fault_plan)))
        advs = tuple(a if isinstance(a, AdversarySpec)
                     else AdversarySpec.from_dict(a)
                     for a in self.adversaries)
        object.__setattr__(self, "adversaries", advs)
        from repro.scenarios.adversaries import check_adversary_topology
        for adv in advs:
            check_adversary_topology(adv.kind, self.topology)

    # -- classification ------------------------------------------------------
    def has_fault_content(self) -> bool:
        """True when running under this scenario injects faults (a base
        plan or at least one adversary)."""
        return bool(self.adversaries) or (
            self.fault_plan is not None and not self.fault_plan.is_null())

    def pins_schedule(self) -> bool:
        """True when the scenario pins the execution schedule policy."""
        return self.schedule_policy is not None

    def dimensions(self) -> Dict[str, Any]:
        """The :class:`~repro.pipeline.config.PipelineConfig` fields this
        scenario pins, as a ``{field: value}`` mapping.

        Only the *expanded* dimensions appear here — the fields a config
        adopts directly.  Fault content and the schedule policy are
        deliberately absent: they are applied by the execution stages
        (never the trace stage), not folded into config fields.
        """
        out: Dict[str, Any] = {}
        for f in ("run_platform", "run_platform_params", "topology",
                  "topology_params", "placement", "queue_discipline",
                  "queue_params"):
            value = getattr(self, f)
            if value is not None:
                out[f] = value
        return out

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data rendering (the YAML/JSON file content).  Unset
        (None) fields are omitted so the digest is stable under schema
        growth."""
        out: Dict[str, Any] = {"name": self.name}
        if self.description:
            out["description"] = self.description
        for f in ("run_platform", "topology", "placement",
                  "schedule_policy", "schedule_seed", "queue_discipline"):
            value = getattr(self, f)
            if value is not None:
                out[f] = value
        for f in ("run_platform_params", "topology_params",
                  "queue_params"):
            value = _params_data(getattr(self, f))
            if value is not None:
                out[f] = value
        if self.fault_plan is not None:
            out["fault_plan"] = self.fault_plan.to_dict()
        if self.adversaries:
            out["adversaries"] = [a.to_dict() for a in self.adversaries]
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        """Build and validate a scenario from parsed YAML/JSON data."""
        if not isinstance(data, Mapping):
            raise ScenarioError(
                f"scenario must be a mapping, got {type(data).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ScenarioError(
                f"unknown scenario keys: {sorted(unknown)}; "
                f"known keys: {sorted(known)}")
        kw = dict(data)
        if "fault_plan" in kw and kw["fault_plan"] is not None and \
                not isinstance(kw["fault_plan"], FaultPlan):
            from repro.errors import FaultPlanError
            try:
                kw["fault_plan"] = FaultPlan.from_dict(
                    dict(kw["fault_plan"]))
            except FaultPlanError as exc:
                raise ScenarioError(f"bad fault_plan: {exc}") from None
        if "adversaries" in kw:
            advs = kw["adversaries"]
            if not isinstance(advs, (list, tuple)):
                raise ScenarioError(
                    "adversaries must be a list of {kind, params} "
                    "mappings")
            kw["adversaries"] = tuple(
                a if isinstance(a, AdversarySpec)
                else AdversarySpec.from_dict(a) for a in advs)
        try:
            return cls(**kw)
        except TypeError as exc:
            raise ScenarioError(f"bad scenario: {exc}") from None

    def digest(self) -> str:
        """Stable content address of the scenario (cache-key and
        fingerprint ingredient, exactly like a fault plan's digest)."""
        payload = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def describe(self) -> str:
        """One-paragraph human summary (``repro scenarios list|show``)."""
        bits = []
        if self.topology is not None:
            bits.append(f"topology={self.topology}")
        if self.placement is not None:
            bits.append(f"placement={self.placement}")
        if self.run_platform is not None:
            bits.append(f"run_platform={self.run_platform}")
        if self.schedule_policy is not None:
            seed = "" if self.schedule_seed is None \
                else f"(seed={self.schedule_seed})"
            bits.append(f"schedule={self.schedule_policy}{seed}")
        if self.queue_discipline is not None:
            bits.append(f"queue={self.queue_discipline}")
        if self.fault_plan is not None:
            bits.append(f"fault plan ({self.fault_plan.describe()})")
        for adv in self.adversaries:
            args = ", ".join(f"{k}={v!r}" for k, v in adv.params)
            bits.append(f"adversary {adv.kind}({args})")
        if not bits:
            bits.append("baseline (pins nothing, injects nothing)")
        return "; ".join(bits)


#: commented example written by ``repro scenarios template``
TEMPLATE = """\
# repro scenario (see docs/SCENARIOS.md for the full schema)
name: my-scenario         # digest-keyed identity; shown in reports
description: a torus under a degraded hot link
topology: torus3d         # routed fabric for the execution stage
topology_params:          # topology/fabric knobs (dims, arity, nodes,
  dims: [4, 2, 2]         #   hop_latency, link_bandwidth)
placement: block          # block | roundrobin | random[:seed] | map:<f>
# run_platform: arc       # execution platform preset + overrides
# run_platform_params: {latency: 3.0e-5}
# schedule_policy: adversarial-delay   # execution-stage tie-breaks
# schedule_seed: 7                     #   (the trace stays canonical)
# queue_discipline: codel # per-link queue (fifo is the default)
# queue_params: {target: 2.0e-6, interval: 5.0e-5, penalty: 5.0e-5}
# fault_plan:             # base fault plan (docs/FAULTS.md schema),
#   seed: 42              #   merged with what the adversaries emit
#   drop_rate: 0.02
adversaries:              # topology-aware generators, expanded once
  - kind: hot-link        #   the app and rank count are known
    params: {count: 2, latency_factor: 4.0, bandwidth_factor: 4.0}
# - kind: bisection-cut   # torus3d only: cut one axis in half
#   params: {axis: x, bandwidth_factor: 8.0}
# - kind: uplink-loss     # fattree only: degrade shared uplinks
#   params: {count: 1, bandwidth_factor: 8.0}
# - kind: incast          # all traffic into one victim's ejection link
#   params: {bandwidth_factor: 16.0}
# - kind: hotspot         # degrade delivery to the hottest rank set
#   params: {count: 2, bandwidth_factor: 4.0}
# - kind: straggler       # slow wavefront-critical ranks (app-aware)
#   params: {factor: 4.0, count: 1}
"""


def loads_scenario(text: str) -> Scenario:
    """Parse a scenario from YAML (preferred) or JSON text."""
    data = None
    try:
        import yaml
    except ImportError:  # pragma: no cover - PyYAML is normally present
        yaml = None
    if yaml is not None:
        try:
            data = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise ScenarioError(f"unparsable scenario: {exc}") from None
    else:  # pragma: no cover - JSON fallback without PyYAML
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"unparsable scenario: {exc}") from None
    if data is None:
        data = {}
    return Scenario.from_dict(data)


def load_scenario(path: str) -> Scenario:
    """Load a :class:`Scenario` from a YAML/JSON file."""
    try:
        with open(path) as fh:
            text = fh.read()
    except OSError as exc:
        raise ScenarioError(
            f"cannot read scenario {path!r}: {exc}") from None
    return loads_scenario(text)


def dumps_scenario(scenario: Scenario) -> str:
    """Serialize a scenario back to YAML (JSON without PyYAML)."""
    data = scenario.to_dict()
    try:
        import yaml
    except ImportError:  # pragma: no cover - JSON fallback
        return json.dumps(data, indent=2, sort_keys=True) + "\n"
    return yaml.safe_dump(data, sort_keys=True)
