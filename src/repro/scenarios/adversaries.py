"""Topology-aware adversary generators.

Each generator turns an :class:`~repro.scenarios.spec.AdversarySpec`
into concrete fault-plan content — :class:`~repro.faults.plan.LinkWindow`
entries targeting *named fabric links* and per-rank straggler factors —
once the concrete run is known (application, rank count, topology,
placement).  The expansion is pure arithmetic over the deterministic
routing of :mod:`repro.topology.graph`, so the same scenario expands to
the same plan on every machine, and the resulting plan digest is stable.

Generators:

* ``hot-link`` — degrade the highest-*betweenness* inter-node links:
  the links traversed by the most (ordered) rank-pair routes under the
  scenario's placement.  The topology-agnostic worst case.
* ``bisection-cut`` — torus only: degrade every link crossing the
  bisection plane of one axis (both directions, including the
  wraparound), the classic bisection-bandwidth stress.
* ``uplink-loss`` — fat-tree only: degrade the busiest ``up:<level>:``
  links at a tree level (default: just below the root, where sharing
  is maximal) — modeling a lossy/flapping core uplink.
* ``incast`` — serialize delivery into one victim: on a routed fabric
  the victim node's ``eject:<node>`` link is degraded (pure incast at
  the endpoint), on a flat fabric the victim rank is targeted via the
  window's ``ranks`` filter.
* ``hotspot`` — degrade delivery to the hottest *set* of ranks (by
  ejection-link betweenness under the placement; central ranks on a
  flat fabric), via a ``ranks``-filtered window.
* ``straggler`` — slow down wavefront-critical ranks: the diagonal of
  the process grid for sweep-pattern apps (where a late rank stalls
  every octant), the root for multigrid/collective-heavy patterns, the
  center rank for stencils.  Uses the app registry's ``pattern``
  metadata.

Every generator is seedless: adversaries are worst-*case* constructions
(computed, not sampled), so the only randomness in a scenario run comes
from an explicitly seeded base fault plan or schedule policy.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ScenarioError
from repro.faults.plan import FaultPlan, LinkWindow
from repro.topology.graph import (FABRIC_PARAMS, FatTree, Topology,
                                  Torus3D, make_topology)
from repro.topology.placement import make_placement


class AdversaryContext:
    """Everything an adversary expansion may consult, prebuilt once."""

    def __init__(self, app: Optional[str], nranks: int,
                 pattern: Optional[str],
                 topology: Optional[Topology],
                 assignment: Optional[Tuple[int, ...]]):
        self.app = app
        self.nranks = nranks
        self.pattern = pattern
        self.topology = topology
        self.assignment = assignment
        self._traversals: Optional[Dict[str, int]] = None
        self._eject: Optional[Dict[int, int]] = None

    @property
    def traversals(self) -> Dict[str, int]:
        """Inter-node link betweenness: how many ordered rank-pair
        routes traverse each named link under the placement."""
        if self._traversals is None:
            counts: Dict[str, int] = {}
            topo, assign = self.topology, self.assignment
            assert topo is not None and assign is not None
            for s in range(self.nranks):
                for d in range(self.nranks):
                    if s == d:
                        continue
                    for link in topo.node_route(assign[s], assign[d]):
                        counts[link] = counts.get(link, 0) + 1
            self._traversals = counts
        return self._traversals

    @property
    def eject_counts(self) -> Dict[int, int]:
        """Per-node ejection-link load: messages landing on each node
        if every ordered rank pair exchanged one message."""
        if self._eject is None:
            counts: Dict[int, int] = {}
            assign = self.assignment
            assert assign is not None
            for d in range(self.nranks):
                node = assign[d]
                counts[node] = counts.get(node, 0) + (self.nranks - 1)
            self._eject = counts
        return self._eject


def _hottest(counts: Dict[str, int], count: int,
             what: str) -> Tuple[str, ...]:
    """The ``count`` busiest links, by (traversals desc, name asc)."""
    if not counts:
        raise ScenarioError(f"no {what} to degrade (no routes use any)")
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    return tuple(sorted(name for name, _ in ranked[:count]))


def _window_params(params: Dict[str, Any], latency_default: float,
                   bandwidth_default: float) -> Dict[str, float]:
    """The shared degradation-window knobs with per-kind defaults."""
    return {
        "t_start": float(params.get("t_start", 0.0)),
        "t_end": float(params.get("t_end", 1.0)),
        "latency_factor": float(params.get("latency_factor",
                                           latency_default)),
        "bandwidth_factor": float(params.get("bandwidth_factor",
                                             bandwidth_default)),
    }


def _int_param(params: Dict[str, Any], key: str, default: int,
               minimum: int = 1) -> int:
    value = params.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ScenarioError(f"adversary parameter {key!r} must be an "
                            f"int, got {value!r}")
    if value < minimum:
        raise ScenarioError(f"adversary parameter {key!r} must be >= "
                            f"{minimum}, got {value}")
    return value


# -- generators --------------------------------------------------------------

def _hot_link(params: Dict[str, Any], ctx: AdversaryContext):
    """Degrade the top-betweenness inter-node links."""
    if ctx.topology is None:
        raise ScenarioError("hot-link needs a routed topology")
    count = _int_param(params, "count", 1)
    links = _hottest(ctx.traversals, count, "inter-node links")
    return [LinkWindow(links=links,
                       **_window_params(params, 4.0, 4.0))], []


def _bisection_cut(params: Dict[str, Any], ctx: AdversaryContext):
    """Degrade every link crossing one torus axis's bisection plane."""
    topo = ctx.topology
    if not isinstance(topo, Torus3D):
        raise ScenarioError(
            "bisection-cut needs a torus3d topology, got "
            f"{getattr(topo, 'name', None)!r}")
    axes = "xyz"
    axis = params.get("axis")
    if axis is None:
        # default: the largest dimension (the widest bisection), x first
        axis = axes[max(range(3), key=lambda i: topo.dims[i])]
    if axis not in axes:
        raise ScenarioError(
            f"bisection-cut axis must be one of {tuple(axes)}, "
            f"got {axis!r}")
    ai = axes.index(axis)
    size = topo.dims[ai]
    if size < 2:
        raise ScenarioError(
            f"bisection-cut axis {axis!r} has size {size}; need >= 2")
    half = size // 2
    links: List[str] = []
    other = [i for i in range(3) if i != ai]
    for u in range(topo.dims[other[0]]):
        for v in range(topo.dims[other[1]]):
            coord = [0, 0, 0]
            coord[other[0]] = u
            coord[other[1]] = v
            # the four directed boundary crossings of the halved ring:
            # +axis out of half-1 and out of the wrap end, -axis out of
            # half and out of 0 (each link leaves its named coordinate)
            for c, sign in ((half - 1, "+"), (size - 1, "+"),
                            (half, "-"), (0, "-")):
                coord[ai] = c
                name = f"{axis}{sign}:{coord[0]},{coord[1]},{coord[2]}"
                if name not in links:
                    links.append(name)
    return [LinkWindow(links=tuple(sorted(links)),
                       **_window_params(params, 4.0, 8.0))], []


def _uplink_loss(params: Dict[str, Any], ctx: AdversaryContext):
    """Degrade the busiest fat-tree uplinks at one tree level."""
    topo = ctx.topology
    if not isinstance(topo, FatTree):
        raise ScenarioError(
            "uplink-loss needs a fattree topology, got "
            f"{getattr(topo, 'name', None)!r}")
    level = _int_param(params, "level", topo.levels - 1, minimum=0)
    if level >= topo.levels:
        raise ScenarioError(
            f"uplink-loss level {level} out of range; this fattree has "
            f"levels 0..{topo.levels - 1}")
    count = _int_param(params, "count", 1)
    prefix = f"up:{level}:"
    uplinks = {name: n for name, n in ctx.traversals.items()
               if name.startswith(prefix)}
    links = _hottest(uplinks, count, f"level-{level} uplinks")
    return [LinkWindow(links=links,
                       **_window_params(params, 2.0, 8.0))], []


def _incast(params: Dict[str, Any], ctx: AdversaryContext):
    """Serialize delivery into one victim endpoint."""
    victim = params.get("victim")
    if victim is not None:
        victim = _int_param(params, "victim", 0, minimum=0)
        if victim >= ctx.nranks:
            raise ScenarioError(
                f"incast victim rank {victim} out of range "
                f"[0, {ctx.nranks})")
    if ctx.topology is not None and ctx.assignment is not None:
        if victim is not None:
            node = ctx.assignment[victim]
        else:
            # the most-loaded ejection link; ties to the lowest node
            counts = ctx.eject_counts
            node = min(counts, key=lambda n: (-counts[n], n))
        return [LinkWindow(links=(f"eject:{node}",),
                           **_window_params(params, 2.0, 16.0))], []
    if victim is None:
        victim = ctx.nranks // 2
    return [LinkWindow(ranks=(victim,),
                       **_window_params(params, 2.0, 16.0))], []


def _hotspot(params: Dict[str, Any], ctx: AdversaryContext):
    """Degrade delivery to the hottest set of destination ranks."""
    count = _int_param(params, "count", max(1, ctx.nranks // 8))
    count = min(count, ctx.nranks)
    if ctx.topology is not None and ctx.assignment is not None:
        counts = ctx.eject_counts
        ranked = sorted(range(ctx.nranks),
                        key=lambda r: (-counts[ctx.assignment[r]],
                                       ctx.assignment[r], r))
    else:
        center = ctx.nranks // 2
        ranked = sorted(range(ctx.nranks),
                        key=lambda r: (abs(r - center), r))
    victims = tuple(sorted(ranked[:count]))
    return [LinkWindow(ranks=victims,
                       **_window_params(params, 2.0, 4.0))], []


def _straggler(params: Dict[str, Any], ctx: AdversaryContext):
    """Slow the ranks the app's communication pattern is gated on."""
    factor = float(params.get("factor", 4.0))
    if factor <= 1.0:
        raise ScenarioError(
            f"straggler factor must be > 1.0, got {factor!r}")
    explicit = params.get("ranks")
    if explicit is not None:
        candidates = [int(r) for r in explicit]
        bad = sorted(r for r in candidates
                     if not 0 <= r < ctx.nranks)
        if bad:
            raise ScenarioError(
                f"straggler rank(s) {bad} out of range "
                f"[0, {ctx.nranks})")
    elif ctx.pattern == "sweep":
        # the wavefront's critical path runs along the process-grid
        # diagonal: a slow diagonal rank stalls every octant both ways
        from repro.apps.base import grid_2d
        px, py = grid_2d(ctx.nranks)
        diag = [i * px + i for i in range(min(px, py))]
        mid = len(diag) // 2
        candidates = sorted(diag, key=lambda r: (abs(diag.index(r) - mid),
                                                 r))
    elif ctx.pattern in ("multigrid", "collective-heavy"):
        # coarse levels and reductions funnel through rank 0
        candidates = [0]
    elif ctx.pattern == "stencil":
        candidates = [ctx.nranks // 2]
    else:
        candidates = [0]
    count = _int_param(params, "count", 1)
    chosen = candidates[:count]
    return [], [(r, factor) for r in sorted(chosen)]


#: kind -> (generator, accepted parameter names, required topology name)
_SHARED = ("t_start", "t_end", "latency_factor", "bandwidth_factor")
ADVERSARIES: Dict[str, Tuple[Callable, Tuple[str, ...],
                             Optional[str]]] = {
    "hot-link": (_hot_link, ("count",) + _SHARED, "routed"),
    "bisection-cut": (_bisection_cut, ("axis",) + _SHARED, "torus3d"),
    "uplink-loss": (_uplink_loss, ("level", "count") + _SHARED,
                    "fattree"),
    "incast": (_incast, ("victim",) + _SHARED, None),
    "hotspot": (_hotspot, ("count",) + _SHARED, None),
    "straggler": (_straggler, ("factor", "count", "ranks"), None),
}


def validate_adversary(kind: str, params: Dict[str, Any]) -> None:
    """Construction-time validation: known kind, known parameter names."""
    if kind not in ADVERSARIES:
        raise ScenarioError(
            f"unknown adversary kind {kind!r}; choose from "
            f"{sorted(ADVERSARIES)}")
    _, accepted, _ = ADVERSARIES[kind]
    bad = sorted(set(params) - set(accepted))
    if bad:
        raise ScenarioError(
            f"adversary {kind!r} does not accept parameter(s) {bad}; "
            f"accepted: {sorted(accepted)}")


def check_adversary_topology(kind: str,
                             topology: Optional[str]) -> None:
    """Scenario-level validation: the adversary's topology requirement
    against the scenario's pinned topology name."""
    _, _, need = ADVERSARIES[kind]
    if need is None:
        return
    if need == "routed":
        if topology is None or topology == "flat":
            raise ScenarioError(
                f"adversary {kind!r} needs the scenario to pin a "
                "non-flat routed topology (it degrades inter-node "
                "links)")
    elif topology != need:
        raise ScenarioError(
            f"adversary {kind!r} needs topology {need!r}, but the "
            f"scenario pins {topology!r}")


def _build_context(scenario, app: Optional[str], nranks: int,
                   pattern: Optional[str]) -> AdversaryContext:
    """The expansion context: the scenario's topology graph + placement
    built exactly as :func:`repro.topology.model.make_topology_model`
    would (same ``nodes`` default, same placement spec), so adversary
    link names match the links the run actually uses."""
    topo = None
    assignment = None
    if scenario.topology is not None:
        params = dict(scenario.topology_params or ())
        nodes = int(params.pop("nodes", nranks))
        for knob in FABRIC_PARAMS:
            params.pop(knob, None)
        topo = make_topology(scenario.topology, nodes, **params)
        assignment = make_placement(scenario.placement or "block",
                                    nranks, nodes)
    return AdversaryContext(app, nranks, pattern, topo, assignment)


def _merge_stragglers(base: Tuple[Tuple[int, float], ...],
                      extra: List[Tuple[int, float]]):
    """Combine straggler factors; a rank slowed twice compounds."""
    merged: Dict[int, float] = dict(base)
    for rank, factor in extra:
        merged[rank] = merged.get(rank, 1.0) * factor
    return tuple(sorted(merged.items()))


def scenario_fault_plan(scenario, app: Optional[str],
                        nranks: int) -> Optional[FaultPlan]:
    """Expand a scenario's fault content for a concrete run.

    Returns the scenario's base plan with every adversary's windows and
    stragglers merged in, or None when the scenario injects nothing.
    Deterministic: the same (scenario, app, nranks) always expands to
    the same plan, so the expansion can happen independently in sweep
    workers, service executors, and the CLI and still agree.
    """
    if not scenario.has_fault_content():
        return None
    if nranks is None or nranks <= 0:
        raise ScenarioError(
            f"scenario {scenario.name!r} expansion needs a positive "
            f"rank count, got {nranks!r}")
    pattern = None
    if app is not None:
        from repro.apps import APPS
        entry = APPS.get(app.lower())
        if entry is not None:
            pattern = entry.pattern
    ctx = _build_context(scenario, app, nranks, pattern)
    windows: List[LinkWindow] = []
    stragglers: List[Tuple[int, float]] = []
    for adv in scenario.adversaries:
        gen, _, _ = ADVERSARIES[adv.kind]
        w, s = gen(adv.param_dict(), ctx)
        windows.extend(w)
        stragglers.extend(s)
    base = scenario.fault_plan or FaultPlan()
    return FaultPlan(
        seed=base.seed,
        drop_rate=base.drop_rate,
        duplicate_rate=base.duplicate_rate,
        reorder_rate=base.reorder_rate,
        reorder_max_delay=base.reorder_max_delay,
        windows=base.windows + tuple(windows),
        stragglers=_merge_stragglers(base.stragglers, stragglers),
        crashes=base.crashes,
        max_retries=base.max_retries,
        retry_timeout=base.retry_timeout,
        retry_backoff=base.retry_backoff,
    )
