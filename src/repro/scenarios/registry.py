"""The curated built-in scenario registry.

Each entry is a named, digest-keyed :class:`~repro.scenarios.spec.
Scenario` exercising one distinct adversity mechanism, so ``repro
scenarios run`` / the sweep's ``scenario`` axis / the service's
``scenario`` job kind all draw from the same library.  The registry is
ordered from benign to hostile; ``calm`` is the deliberate no-op
control every benchmark row is compared against.

Sizing note: the curated scenarios avoid pinning ``nodes``/``dims`` so
they compose with any rank count — topology dimensioning falls back to
the same defaults ``--topology`` uses (one node per rank, near-cubic
torus factorization).
"""

from __future__ import annotations

from typing import Dict, Union

from repro.errors import ScenarioError
from repro.scenarios.spec import AdversarySpec, Scenario


def _s(**kw) -> Scenario:
    return Scenario(**kw)


#: the curated named scenarios, in documentation order
SCENARIOS: Dict[str, Scenario] = {s.name: s for s in (
    _s(name="calm",
       description="control: no pins, no adversity — the baseline row "
                   "every other scenario is compared against"),
    _s(name="torus-hotlink",
       description="3D torus with the two highest-betweenness links "
                   "degraded 4x for the whole run",
       topology="torus3d",
       adversaries=(AdversarySpec("hot-link",
                                  (("count", 2),)),)),
    _s(name="torus-bisection",
       description="3D torus with every link crossing the widest "
                   "axis's bisection plane at 1/8 bandwidth",
       topology="torus3d",
       adversaries=(AdversarySpec("bisection-cut", ()),)),
    _s(name="fattree-uplink-loss",
       description="fat-tree with the busiest top-level uplink lossy "
                   "(8x serialization, 2x latency)",
       topology="fattree",
       adversaries=(AdversarySpec("uplink-loss", ()),)),
    _s(name="incast-burst",
       description="torus incast: the hottest node's ejection link at "
                   "1/16 bandwidth, collapsing fan-in delivery",
       topology="torus3d",
       adversaries=(AdversarySpec("incast", ()),)),
    _s(name="hotspot-ranks",
       description="delivery to the hottest quarter of ranks degraded "
                   "4x (works on flat and routed fabrics alike)",
       adversaries=(AdversarySpec("hotspot", ()),)),
    _s(name="straggler-wavefront",
       description="one wavefront-critical rank computes 4x slower "
                   "(the process-grid diagonal for sweep apps)",
       adversaries=(AdversarySpec("straggler", ()),)),
    _s(name="codel-pressure",
       description="torus under a CoDel per-link queue with a tight "
                   "sojourn target: persistent queuers are dropped and "
                   "retransmitted, surfacing drop counters",
       topology="torus3d",
       placement="roundrobin",
       queue_discipline="codel",
       queue_params=(("interval", 1e-5), ("penalty", 5e-5),
                     ("target", 1e-6))),
    _s(name="adversarial-schedule",
       description="execution under the adversarial-delay tie-break "
                   "policy (latest-arriving wildcard match), seed 0; "
                   "the trace stays canonical",
       schedule_policy="adversarial-delay",
       schedule_seed=0),
)}


def scenario_names():
    """The curated scenario names, in registry (documentation) order."""
    return tuple(SCENARIOS)


def get_scenario(spec: Union[str, dict, Scenario]) -> Scenario:
    """Resolve a scenario reference: a curated registry name, a parsed
    mapping (inline spec), or an already-built :class:`Scenario`."""
    if isinstance(spec, Scenario):
        return spec
    if isinstance(spec, str):
        try:
            return SCENARIOS[spec]
        except KeyError:
            raise ScenarioError(
                f"unknown scenario {spec!r}; curated scenarios: "
                f"{sorted(SCENARIOS)} (or pass an inline spec — "
                f"see docs/SCENARIOS.md)") from None
    if isinstance(spec, dict):
        return Scenario.from_dict(spec)
    raise ScenarioError(
        f"a scenario must be a curated name, a mapping, or a Scenario, "
        f"got {type(spec).__name__}")
