"""Scenario jobs: one scenario × app cell as an executable sweep.

A :class:`ScenarioJob` binds a scenario (curated name or inline spec)
to a concrete workload and compiles to a one-point
:class:`~repro.sweep.plan.SweepPlan`.  That compilation is the whole
byte-parity story: ``repro scenarios run`` and the service's
``scenario`` job kind both execute the *same* plan through the same
:func:`~repro.sweep.engine.run_sweep` entry point, so their canonical
JSON results are identical byte for byte — the same contract the sweep
and fuzz kinds already honor.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Tuple, Union

from repro.errors import ScenarioError
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import Scenario

#: job fields that are not free-form config overrides
_OWN_KEYS = ("scenario", "app", "nranks", "cls", "platform", "mode",
             "overrides")


@dataclass(frozen=True)
class ScenarioJob:
    """One scenario × app execution, digest-keyed like every other job."""

    scenario: Union[str, Scenario]  #: curated name or inline spec
    app: str                        #: workload from repro.apps.APPS
    nranks: int                     #: simulated world size
    cls: str = "S"                  #: problem class
    platform: str = "bluegene"      #: trace/generate platform preset
    mode: str = "run"               #: pipeline suffix (sweep MODES)
    #: extra PipelineConfig overrides (e.g. max_steps), normalized to
    #: a sorted tuple of pairs
    overrides: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self):
        if isinstance(self.scenario, Mapping):
            object.__setattr__(self, "scenario",
                               Scenario.from_dict(dict(self.scenario)))
        # resolves curated names and validates inline specs
        self.resolved_scenario()
        from repro.apps import APPS
        if not isinstance(self.app, str) or self.app.lower() not in APPS:
            raise ScenarioError(
                f"unknown application {self.app!r}; choose from "
                f"{sorted(APPS)}")
        if not isinstance(self.nranks, int) or isinstance(
                self.nranks, bool) or self.nranks <= 0:
            raise ScenarioError(
                f"nranks must be a positive int, got {self.nranks!r}")
        from repro.sweep.plan import MODES
        if self.mode not in MODES:
            raise ScenarioError(
                f"unknown mode {self.mode!r}; choose from {MODES}")
        if isinstance(self.overrides, Mapping):
            object.__setattr__(
                self, "overrides",
                tuple(sorted(self.overrides.items())))
        clash = sorted(set(k for k, _ in self.overrides)
                       & set(_OWN_KEYS))
        if clash:
            raise ScenarioError(
                f"override(s) {clash} collide with the job's own "
                f"fields; set them directly")
        # the sweep plan's point validation (build_config) will catch
        # bad cls/platform/override values; fail here, at construction
        self.to_sweep_plan()

    def resolved_scenario(self) -> Scenario:
        """The concrete :class:`Scenario` this job runs under."""
        return get_scenario(self.scenario)

    def job_name(self) -> str:
        """Stable display name: ``scenario-<scenario>-<app>``."""
        return f"scenario-{self.resolved_scenario().name}-{self.app}"

    @property
    def name(self) -> str:
        """Display name, matching the sweep/fuzz plan attribute the
        job service stores."""
        return self.job_name()

    # -- compilation ---------------------------------------------------------
    def to_sweep_plan(self):
        """The equivalent one-point :class:`~repro.sweep.plan.SweepPlan`.

        The scenario rides in the point as its serialized reference (a
        curated name stays a name; an inline spec becomes its mapping),
        so the plan is plain data: picklable to sweep workers,
        digestable, and identical no matter which surface built it.
        """
        from repro.errors import SweepPlanError
        from repro.sweep.plan import SweepPlan
        scenario = self.scenario
        if isinstance(scenario, Scenario):
            scenario = scenario.to_dict()
        point = {"app": self.app, "nranks": self.nranks,
                 "cls": self.cls, "platform": self.platform,
                 "scenario": scenario}
        point.update(dict(self.overrides))
        try:
            plan = SweepPlan(name=self.job_name(), mode=self.mode,
                             extra_points=(point,))
            plan.check()
        except SweepPlanError as exc:
            raise ScenarioError(f"bad scenario job: {exc}") from None
        return plan

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        scenario = self.scenario
        if isinstance(scenario, Scenario):
            scenario = scenario.to_dict()
        out: Dict[str, Any] = {
            "scenario": scenario, "app": self.app,
            "nranks": self.nranks, "cls": self.cls,
            "platform": self.platform, "mode": self.mode,
        }
        if self.overrides:
            out["overrides"] = dict(self.overrides)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioJob":
        if not isinstance(data, Mapping):
            raise ScenarioError(
                f"scenario job must be a mapping, got "
                f"{type(data).__name__}")
        unknown = set(data) - set(_OWN_KEYS)
        if unknown:
            raise ScenarioError(
                f"unknown scenario-job keys: {sorted(unknown)}; "
                f"known keys: {sorted(_OWN_KEYS)}")
        for need in ("scenario", "app", "nranks"):
            if need not in data:
                raise ScenarioError(f"scenario job needs {need!r}")
        kw = dict(data)
        overrides = kw.pop("overrides", None) or {}
        if not isinstance(overrides, Mapping):
            raise ScenarioError(
                f"overrides must be a mapping, got "
                f"{type(overrides).__name__}")
        try:
            return cls(overrides=tuple(sorted(overrides.items())), **kw)
        except TypeError as exc:
            raise ScenarioError(f"bad scenario job: {exc}") from None

    def digest(self) -> str:
        """Stable content address (dedup key on the job service)."""
        payload = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def describe(self) -> str:
        """One-line human summary."""
        return (f"{self.job_name()}: app={self.app} nranks={self.nranks} "
                f"cls={self.cls} platform={self.platform} "
                f"mode={self.mode} (digest {self.digest()})")


def loads_scenario_job(text: str) -> ScenarioJob:
    """Parse a scenario job from YAML (preferred) or JSON text."""
    data = None
    try:
        import yaml
    except ImportError:  # pragma: no cover - PyYAML is normally present
        yaml = None
    if yaml is not None:
        try:
            data = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise ScenarioError(
                f"unparsable scenario job: {exc}") from None
    else:  # pragma: no cover - JSON fallback without PyYAML
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(
                f"unparsable scenario job: {exc}") from None
    if data is None:
        data = {}
    return ScenarioJob.from_dict(data)
