"""First-class execution scenarios: adversarial traffic, congestion,
and degradation compositions over the what-if dimensions.

The package layers (see ``docs/SCENARIOS.md``):

* :mod:`repro.scenarios.spec` — the digest-keyed :class:`Scenario`
  value object (YAML + programmatic) composing the execution-only
  pipeline dimensions plus a list of adversaries;
* :mod:`repro.scenarios.adversaries` — topology-aware generators that
  expand adversary specs into concrete link-targeted fault-plan
  content for a concrete (app, nranks) run;
* :mod:`repro.scenarios.registry` — the curated named scenarios;
* :mod:`repro.scenarios.job` — :class:`ScenarioJob`, one scenario ×
  app cell compiled to a one-point sweep plan (the byte-parity bridge
  between ``repro scenarios run`` and the service's ``scenario`` job
  kind).
"""

from repro.scenarios.adversaries import (ADVERSARIES,
                                         scenario_fault_plan)
from repro.scenarios.job import ScenarioJob, loads_scenario_job
from repro.scenarios.registry import SCENARIOS, get_scenario, \
    scenario_names
from repro.scenarios.spec import (TEMPLATE, AdversarySpec, Scenario,
                                  dumps_scenario, load_scenario,
                                  loads_scenario)

__all__ = [
    "ADVERSARIES",
    "AdversarySpec",
    "SCENARIOS",
    "Scenario",
    "ScenarioJob",
    "TEMPLATE",
    "dumps_scenario",
    "get_scenario",
    "load_scenario",
    "loads_scenario",
    "loads_scenario_job",
    "scenario_fault_plan",
    "scenario_names",
]
