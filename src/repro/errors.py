"""Exception hierarchy for the repro package.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can catch pipeline failures uniformly while still being able to
distinguish, e.g., a simulated-application deadlock from a DSL syntax error.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """Base class for errors raised by the discrete-event simulator."""


class SimDeadlockError(SimulationError):
    """All live ranks are blocked and no operation can ever complete.

    Carries ``blocked``: a mapping of rank -> human-readable description of
    the operation the rank is blocked on, and (when the engine built one)
    ``diagnostic``: a structured
    :class:`~repro.sim.diagnostics.DeadlockDiagnostic` with per-rank
    blocked ops, waits-on edges, and the extracted wait-for cycle.
    """

    def __init__(self, blocked, diagnostic=None):
        self.blocked = dict(blocked)
        self.diagnostic = diagnostic
        detail = "; ".join(f"rank {r}: {d}" for r, d in sorted(self.blocked.items()))
        message = f"simulated deadlock, all ranks blocked ({detail})"
        if diagnostic is not None and diagnostic.cycle:
            cycle = diagnostic.cycle + diagnostic.cycle[:1]
            message += ("; wait-for cycle: "
                        + " -> ".join(str(r) for r in cycle))
        super().__init__(message)


class MPIUsageError(SimulationError):
    """An application used the MPI layer incorrectly (bad peer, bad comm...)."""


class FaultPlanError(ReproError):
    """A fault plan is malformed: bad field, bad rate, unparsable file."""


class TraceError(ReproError):
    """Malformed trace data or an operation unsupported by the trace model."""


class ConceptualError(ReproError):
    """Base class for coNCePTuaL toolchain errors."""


class ConceptualSyntaxError(ConceptualError):
    """Lexing or parsing failure; carries line/column info in the message."""

    def __init__(self, message, line=None, column=None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"line {line}, column {column}: {message}"
        super().__init__(message)


class ConceptualSemanticError(ConceptualError):
    """The program parsed but violates static semantic rules."""


class GenerationError(ReproError):
    """The benchmark generator could not convert a trace."""


class PipelineError(ReproError):
    """A pipeline was composed or driven incorrectly."""


class PipelineConfigError(PipelineError):
    """A :class:`~repro.pipeline.PipelineConfig` field is invalid."""


class SweepError(ReproError):
    """A sweep could not be driven (bad worker setup, empty plan...)."""


class SweepPlanError(SweepError):
    """A sweep plan is malformed: bad axis, bad field, unparsable file."""


class FuzzError(ReproError):
    """A schedule-space fuzz campaign could not be driven."""


class FuzzCampaignError(FuzzError):
    """A fuzz campaign spec is malformed: bad policy, bad app cell,
    unparsable file."""


class ScenarioError(ReproError):
    """A scenario spec is malformed, names an unknown adversary or
    dimension value, or could not be expanded for a concrete run."""


class ServiceError(ReproError):
    """The sweep service could not satisfy a request: unknown job,
    malformed submission, missing result payload, bad server reply."""


class TraceDeadlockError(GenerationError):
    """Algorithm 2's deadlock detector found a potential deadlock in the
    traced application (paper, Fig. 5): the trace admits an execution in
    which some rank blocks forever.
    """

    def __init__(self, message, cycle=None):
        self.cycle = list(cycle or [])
        super().__init__(message)
