"""Deterministic fault injection: every decision is a pure hash.

The injector answers the engine's questions — "is this transmission
attempt dropped?", "is this message duplicated?", "how slow is this link
right now?" — as pure functions of ``(plan seed, decision kind, message
identity)``.  There is no mutable RNG stream: decision *k* about message
*n* hashes the same regardless of what was asked before it, so the fault
pattern is independent of engine internals, identical across runs, and
**monotone in the rates** (raising ``drop_rate`` drops a superset of the
messages dropped at any lower rate — the property behind the benchmark's
monotone-degradation curve).

The injector also owns the fault counters (drops, retries, lost
messages, duplicates, reorder delays, window hits) so the engine can
flush one consistent :meth:`snapshot` to the obs bus and into fault
reports.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Dict, NamedTuple, Tuple

from repro.faults.plan import FaultPlan

_INF = float("inf")
_SCALE = float(1 << 64)


class SendFate(NamedTuple):
    """What the messaging layer did to one logical message."""

    delay: float      # extra seconds added to the message's arrival
    retries: int      # retransmission attempts that were needed
    lost: bool        # every attempt (1 + max_retries) was dropped
    duplicate: bool   # a spurious second copy also hit the wire


class FaultInjector:
    """Stateless decisions + stateful counters for one simulation run.

    One injector drives one :class:`~repro.sim.engine.Engine` run (the
    counters are per-run); the underlying plan is immutable and can be
    shared freely.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        #: False for null plans — the engine skips fault hooks entirely,
        #: which is what makes the null-plan byte-identity guarantee
        #: trivially robust instead of resting on floating-point no-ops.
        self.active = not plan.is_null()
        self._seed = struct.pack("<q", plan.seed)
        self._straggler: Dict[int, float] = dict(plan.stragglers)
        self._crash: Dict[int, float] = {}
        for rank, t in plan.crashes:
            self._crash[rank] = min(t, self._crash.get(rank, _INF))
        self.counters: Dict[str, int] = {
            "messages": 0, "drops": 0, "retries": 0, "lost": 0,
            "duplicates": 0, "reordered": 0, "window_hits": 0,
        }
        self.delay_injected = 0.0

    # -- the deterministic coin ---------------------------------------------
    def _unit(self, kind: str, *ids: int) -> float:
        """Uniform [0, 1) as a pure hash of (seed, kind, ids)."""
        h = hashlib.blake2b(digest_size=8)
        h.update(self._seed)
        h.update(kind.encode("ascii"))
        for i in ids:
            h.update(struct.pack("<q", i))
        return int.from_bytes(h.digest(), "little") / _SCALE

    # -- message-level decisions --------------------------------------------
    def send_fate(self, seq: int) -> SendFate:
        """Drop/retry/duplicate/reorder outcome for message ``seq``.

        Attempt ``k`` of message ``seq`` is dropped iff
        ``unit("drop", seq, k) < drop_rate``; the first surviving attempt
        delivers the message after the failed attempts' timeouts
        (exponential backoff).  If all ``1 + max_retries`` attempts drop,
        the message is lost for good.
        """
        plan = self.plan
        self.counters["messages"] += 1
        delay = 0.0
        retries = 0
        lost = False
        if plan.drop_rate > 0.0:
            timeout = plan.retry_timeout
            attempts = plan.max_retries + 1
            while retries < attempts and \
                    self._unit("drop", seq, retries) < plan.drop_rate:
                self.counters["drops"] += 1
                delay += timeout
                timeout *= plan.retry_backoff
                retries += 1
            if retries == attempts:
                lost = True
                self.counters["lost"] += 1
                delay = 0.0
            self.counters["retries"] += min(retries, plan.max_retries)
        duplicate = False
        if not lost:
            if plan.duplicate_rate > 0.0 and \
                    self._unit("dup", seq) < plan.duplicate_rate:
                duplicate = True
                self.counters["duplicates"] += 1
            if plan.reorder_rate > 0.0 and plan.reorder_max_delay > 0.0 \
                    and self._unit("reorder", seq) < plan.reorder_rate:
                delay += self._unit("rdelay", seq) * plan.reorder_max_delay
                self.counters["reordered"] += 1
            self.delay_injected += delay
        return SendFate(delay, retries, lost, duplicate)

    # -- per-link / per-rank modifiers --------------------------------------
    def window_factors(self, dst: int, t: float,
                       links: Tuple[str, ...] = ()) -> Tuple[float, float]:
        """Compounded (latency_factor, bandwidth_factor) for a message
        injected at virtual time ``t`` toward rank ``dst``; ``links`` is
        the message's route on a routed fabric (empty when flat), used
        by windows that target named fabric links."""
        lat = bw = 1.0
        for w in self.plan.windows:
            if w.applies(dst, t, links):
                lat *= w.latency_factor
                bw *= w.bandwidth_factor
        if lat != 1.0 or bw != 1.0:
            self.counters["window_hits"] += 1
        return lat, bw

    def compute_factor(self, rank: int) -> float:
        """Multiplier applied to this rank's Compute durations."""
        return self._straggler.get(rank, 1.0)

    def crash_time(self, rank: int) -> float:
        """Virtual time at which ``rank`` stops executing (inf = never)."""
        return self._crash.get(rank, _INF)

    # -- reporting ----------------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        out: Dict[str, float] = dict(self.counters)
        out["delay_injected_s"] = self.delay_injected
        return out
