"""repro.faults — seeded, deterministic fault injection for the simulator.

The paper's what-if methodology (§5.4) re-runs one communication
specification under a changed platform; this package extends it to
*misbehaving* platforms: message drop/duplication/reorder, transient
link degradation, compute stragglers, and rank crashes, all described by
a declarative :class:`FaultPlan` and decided by pure hashes of the plan
seed so that every run is bit-deterministic.

Quick start::

    from repro.faults import FaultPlan, FaultInjector
    from repro.mpi import run_spmd

    plan = FaultPlan(seed=7, drop_rate=0.05)
    result = run_spmd(app, nranks=8, faults=FaultInjector(plan))
    print(result.fault_report)

or, from the CLI::

    repro faults template -o plan.yaml
    repro pipeline --app jacobi --np 8 --fault-plan plan.yaml
"""

from repro.faults.injector import FaultInjector, SendFate
from repro.faults.plan import (FaultPlan, LinkWindow, TEMPLATE,
                               dumps_fault_plan, load_fault_plan,
                               loads_fault_plan)
from repro.faults.report import FaultReport, build_fault_report

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultReport",
    "LinkWindow",
    "SendFate",
    "TEMPLATE",
    "build_fault_report",
    "dumps_fault_plan",
    "load_fault_plan",
    "loads_fault_plan",
]
