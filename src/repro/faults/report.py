"""Fault reports: what a faulted run actually suffered.

A :class:`FaultReport` aggregates the injector's counters with the
engine's crash/starvation record and (when the run hung) the structured
:class:`~repro.sim.diagnostics.DeadlockDiagnostic`.  It is the artifact
the pipeline salvages from a crashed-rank run alongside the trace
prefix, and what ``repro faults run`` prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple


@dataclass
class FaultReport:
    """Outcome summary of one simulation run under a fault plan."""

    plan_digest: str
    counters: Dict[str, float] = field(default_factory=dict)
    crashed_ranks: Tuple[int, ...] = ()
    starved_ranks: Tuple[int, ...] = ()
    makespan: float = 0.0
    #: structured deadlock/starvation diagnostic, when the run hung
    diagnostic: Optional[Any] = None

    @property
    def degraded(self) -> bool:
        """True when the run did not complete cleanly on every rank."""
        return bool(self.crashed_ranks or self.starved_ranks
                    or self.diagnostic is not None)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "plan_digest": self.plan_digest,
            "counters": dict(self.counters),
            "crashed_ranks": list(self.crashed_ranks),
            "starved_ranks": list(self.starved_ranks),
            "makespan": self.makespan,
            "degraded": self.degraded,
        }
        if self.diagnostic is not None:
            out["diagnostic"] = self.diagnostic.to_dict()
        return out

    def render(self) -> str:
        lines = [f"fault report (plan {self.plan_digest}):"]
        for name in sorted(self.counters):
            lines.append(f"  {name:<18s} {self.counters[name]:g}")
        lines.append(f"  {'makespan':<18s} {self.makespan * 1e6:.1f} us")
        if self.crashed_ranks:
            lines.append(f"  crashed ranks      "
                         f"{list(self.crashed_ranks)}")
        if self.starved_ranks:
            lines.append(f"  starved ranks      "
                         f"{list(self.starved_ranks)} "
                         f"(blocked on crashed/lost peers)")
        if self.diagnostic is not None:
            lines.append(self.diagnostic.render(indent="  "))
        if not self.degraded:
            lines.append("  run completed on every rank")
        return "\n".join(lines)


def build_fault_report(engine, injector,
                       diagnostic=None) -> FaultReport:
    """Assemble the report for a finished (or salvaged) engine run."""
    return FaultReport(
        plan_digest=injector.plan.digest(),
        counters=injector.snapshot(),
        crashed_ranks=tuple(engine.crashed_ranks),
        starved_ranks=tuple(engine.starved_ranks),
        makespan=engine.total_time,
        diagnostic=diagnostic if diagnostic is not None
        else engine.diagnostic,
    )
