"""Declarative, seeded fault plans for degraded-network what-if studies.

A :class:`FaultPlan` is a frozen value object describing *everything* a
simulation's messaging layer will do wrong: per-message drop and
duplication probabilities, bounded reorder delay, transient link
degradation over virtual-time windows, per-rank compute stragglers, and
rank crash-at-time events, plus the retry policy (timeout + exponential
backoff) the simulated messaging layer uses to recover from drops.

Everything downstream of the plan is a pure function of ``(plan, message
identity)`` — see :mod:`repro.faults.injector` — so two runs with the
same plan are bit-identical, and a plan that injects nothing
(:meth:`FaultPlan.is_null`) leaves the simulation byte-identical to a
run without any plan at all.  The paper's §5.4 what-if methodology
(re-run the same communication specification under a changed platform)
extends naturally to "the same specification under a misbehaving
platform"; the plan is the executable description of the misbehaviour.

Plans serialize to/from YAML (or JSON when PyYAML is unavailable); see
``docs/FAULTS.md`` for the schema and ``repro faults template`` for a
commented example.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, Optional, Tuple

from repro.errors import FaultPlanError


@dataclass(frozen=True)
class LinkWindow:
    """Transient link degradation over a virtual-time window.

    Messages *injected* during ``[t_start, t_end)`` and destined to a
    rank in ``ranks`` (``None`` = every rank) pay ``latency_factor`` on
    the latency portion of their transit and ``bandwidth_factor`` on the
    serialization portion.  Factors are multiplicative; overlapping
    windows compound.

    On a routed fabric (``--topology``) a window can instead target
    named fabric links (e.g. ``"x+:0,0,0"`` on a torus, ``"up:1:2"`` on
    a fat-tree — see ``docs/TOPOLOGY.md``): the window then applies
    only to messages whose route traverses one of those links.  The
    ``ranks`` and ``links`` filters compound (both must pass); on a
    flat fabric a ``links`` filter never matches (no named links).
    """

    t_start: float
    t_end: float
    latency_factor: float = 1.0
    bandwidth_factor: float = 1.0
    ranks: Optional[Tuple[int, ...]] = None
    links: Optional[Tuple[str, ...]] = None

    def __post_init__(self):
        if self.t_end < self.t_start:
            raise FaultPlanError(
                f"window ends before it starts: [{self.t_start}, "
                f"{self.t_end})")
        if self.latency_factor < 1.0 or self.bandwidth_factor < 1.0:
            raise FaultPlanError(
                "degradation factors must be >= 1.0 (a window only ever "
                "slows a link down)")
        if self.ranks is not None:
            object.__setattr__(self, "ranks",
                               tuple(sorted(int(r) for r in self.ranks)))
        if self.links is not None:
            object.__setattr__(self, "links",
                               tuple(sorted(str(n) for n in self.links)))

    def is_null(self) -> bool:
        return (self.latency_factor == 1.0
                and self.bandwidth_factor == 1.0) or \
            self.t_end == self.t_start

    def applies(self, dst: int, t: float,
                route: Tuple[str, ...] = ()) -> bool:
        if not (self.t_start <= t < self.t_end):
            return False
        if self.ranks is not None and dst not in self.ranks:
            return False
        if self.links is not None:
            return any(link in self.links for link in route)
        return True


def _rate(name: str, value: float) -> float:
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise FaultPlanError(f"{name} must be in [0, 1], got {value}")
    return value


@dataclass(frozen=True)
class FaultPlan:
    """One complete, seeded description of injected network faults."""

    seed: int = 0
    #: probability that any single transmission attempt is dropped
    drop_rate: float = 0.0
    #: probability that a delivered message is also duplicated on the wire
    duplicate_rate: float = 0.0
    #: probability that a delivered message is delayed out of pace
    reorder_rate: float = 0.0
    #: upper bound (seconds) on the injected reorder delay
    reorder_max_delay: float = 0.0
    #: transient link-degradation windows
    windows: Tuple[LinkWindow, ...] = ()
    #: (rank, compute_factor) pairs; factor multiplies Compute durations
    stragglers: Tuple[Tuple[int, float], ...] = ()
    #: (rank, virtual_time) pairs; the rank stops executing at that time
    crashes: Tuple[Tuple[int, float], ...] = ()
    #: retransmission policy for dropped messages
    max_retries: int = 3
    retry_timeout: float = 1e-4
    retry_backoff: float = 2.0

    def __post_init__(self):
        object.__setattr__(self, "drop_rate",
                           _rate("drop_rate", self.drop_rate))
        object.__setattr__(self, "duplicate_rate",
                           _rate("duplicate_rate", self.duplicate_rate))
        object.__setattr__(self, "reorder_rate",
                           _rate("reorder_rate", self.reorder_rate))
        if self.reorder_max_delay < 0:
            raise FaultPlanError(
                f"reorder_max_delay must be >= 0, "
                f"got {self.reorder_max_delay}")
        if self.max_retries < 0:
            raise FaultPlanError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.retry_timeout < 0:
            raise FaultPlanError(
                f"retry_timeout must be >= 0, got {self.retry_timeout}")
        if self.retry_backoff < 1.0:
            raise FaultPlanError(
                f"retry_backoff must be >= 1.0, got {self.retry_backoff}")
        object.__setattr__(
            self, "windows",
            tuple(w if isinstance(w, LinkWindow) else LinkWindow(**w)
                  for w in self.windows))
        stragglers = []
        for rank, factor in self.stragglers:
            if factor <= 0:
                raise FaultPlanError(
                    f"straggler factor must be > 0, got {factor} "
                    f"for rank {rank}")
            stragglers.append((int(rank), float(factor)))
        object.__setattr__(self, "stragglers", tuple(sorted(stragglers)))
        crashes = []
        for rank, t in self.crashes:
            if t < 0:
                raise FaultPlanError(
                    f"crash time must be >= 0, got {t} for rank {rank}")
            crashes.append((int(rank), float(t)))
        object.__setattr__(self, "crashes", tuple(sorted(crashes)))

    # -- classification -----------------------------------------------------
    def is_null(self) -> bool:
        """True when this plan injects nothing at all: a simulation run
        under a null plan is byte-identical to a run without a plan."""
        return (self.drop_rate == 0.0
                and self.duplicate_rate == 0.0
                and (self.reorder_rate == 0.0
                     or self.reorder_max_delay == 0.0)
                and all(w.is_null() for w in self.windows)
                and all(f == 1.0 for _, f in self.stragglers)
                and not self.crashes)

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        out = asdict(self)
        out["windows"] = [
            {k: (list(v) if isinstance(v, tuple) else v)
             for k, v in asdict(w).items() if v is not None}
            for w in self.windows]
        out["stragglers"] = [{"rank": r, "factor": f}
                             for r, f in self.stragglers]
        out["crashes"] = [{"rank": r, "time": t} for r, t in self.crashes]
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(data, dict):
            raise FaultPlanError(
                f"fault plan must be a mapping, got {type(data).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise FaultPlanError(
                f"unknown fault-plan fields: {sorted(unknown)}; "
                f"known fields: {sorted(known)}")
        kw = dict(data)
        if "windows" in kw:
            kw["windows"] = tuple(
                w if isinstance(w, LinkWindow) else LinkWindow(**{
                    k: (tuple(v) if k in ("ranks", "links")
                        and v is not None else v)
                    for k, v in w.items()})
                for w in kw["windows"])
        if "stragglers" in kw:
            kw["stragglers"] = tuple(
                (s["rank"], s["factor"]) if isinstance(s, dict)
                else (s[0], s[1]) for s in kw["stragglers"])
        if "crashes" in kw:
            kw["crashes"] = tuple(
                (c["rank"], c["time"]) if isinstance(c, dict)
                else (c[0], c[1]) for c in kw["crashes"])
        try:
            return cls(**kw)
        except TypeError as exc:
            raise FaultPlanError(f"bad fault plan: {exc}") from None

    def digest(self) -> str:
        """Stable content address of the plan (cache-key ingredient)."""
        payload = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def describe(self) -> str:
        """One-paragraph human summary (``repro faults validate``)."""
        bits = [f"seed={self.seed}"]
        if self.drop_rate:
            bits.append(f"drop={self.drop_rate:g} "
                        f"(retries<={self.max_retries}, "
                        f"timeout={self.retry_timeout:g}s, "
                        f"backoff=x{self.retry_backoff:g})")
        if self.duplicate_rate:
            bits.append(f"duplicate={self.duplicate_rate:g}")
        if self.reorder_rate and self.reorder_max_delay:
            bits.append(f"reorder={self.reorder_rate:g} "
                        f"(<= {self.reorder_max_delay:g}s)")
        live_windows = [w for w in self.windows if not w.is_null()]
        if live_windows:
            bits.append(f"{len(live_windows)} degradation window(s)")
        stragglers = [(r, f) for r, f in self.stragglers if f != 1.0]
        if stragglers:
            bits.append("stragglers " + ", ".join(
                f"rank {r} x{f:g}" for r, f in stragglers))
        if self.crashes:
            bits.append("crashes " + ", ".join(
                f"rank {r}@{t:g}s" for r, t in self.crashes))
        if self.is_null():
            bits.append("null plan (injects nothing)")
        return "; ".join(bits)


#: commented example written by ``repro faults template``
TEMPLATE = """\
# repro fault plan (see docs/FAULTS.md for the full schema)
seed: 42                  # drives every injection decision; same seed,
                          # same faults, bit-identical runs
drop_rate: 0.05           # per-transmission-attempt drop probability
duplicate_rate: 0.0       # delivered message also duplicated on the wire
reorder_rate: 0.0         # delivered message delayed out of pace ...
reorder_max_delay: 0.0    # ... by at most this many seconds
max_retries: 3            # retransmission attempts after the first send
retry_timeout: 1.0e-4     # seconds before the first retransmission
retry_backoff: 2.0        # timeout multiplier per further attempt
windows: []               # transient link degradation, e.g.
#  - t_start: 0.0         # rank-filtered: slow every message landing
#    t_end: 0.005         # on ranks 0 and 1 during the window
#    latency_factor: 4.0
#    bandwidth_factor: 2.0
#    ranks: [0, 1]        # destination ranks affected (omit for all)
#  - t_start: 0.0         # link-filtered (routed fabrics only): slow
#    t_end: 0.005         # messages whose route traverses a named
#    latency_factor: 8.0  # fabric link -- "x+:0,0,0" on a torus,
#    bandwidth_factor: 4.0  # "up:1:2" on a fat-tree (docs/TOPOLOGY.md)
#    ranks: [0, 1]        # filters compound: BOTH the destination rank
#    links: ["x+:0,0,0"]  # AND the route filter must pass (omit ranks
#                         # to target the links alone)
stragglers: []            # per-rank compute slowdowns, e.g.
#  - {rank: 2, factor: 3.0}
crashes: []               # rank stops executing at a virtual time, e.g.
#  - {rank: 5, time: 0.02}
"""


def loads_fault_plan(text: str) -> FaultPlan:
    """Parse a plan from YAML (preferred) or JSON text."""
    data = None
    try:
        import yaml
    except ImportError:  # pragma: no cover - PyYAML is normally present
        yaml = None
    if yaml is not None:
        try:
            data = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise FaultPlanError(f"unparsable fault plan: {exc}") from None
    else:  # pragma: no cover - JSON fallback without PyYAML
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"unparsable fault plan: {exc}") from None
    if data is None:
        data = {}
    return FaultPlan.from_dict(data)


def load_fault_plan(path: str) -> FaultPlan:
    """Load a :class:`FaultPlan` from a YAML/JSON file."""
    try:
        with open(path) as fh:
            text = fh.read()
    except OSError as exc:
        raise FaultPlanError(f"cannot read fault plan {path!r}: {exc}") \
            from None
    return loads_fault_plan(text)


def dumps_fault_plan(plan: FaultPlan) -> str:
    """Serialize a plan back to YAML (JSON without PyYAML)."""
    data = plan.to_dict()
    try:
        import yaml
    except ImportError:  # pragma: no cover - JSON fallback
        return json.dumps(data, indent=2, sort_keys=True) + "\n"
    return yaml.safe_dump(data, sort_keys=True)
