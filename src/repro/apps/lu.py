"""NPB LU (SSOR solver) communication skeleton.

LU factors the discretized Navier-Stokes operator with a wavefront
("hyperplane") sweep over a 2-D processor grid.  For each k-plane of the
lower-triangular solve a rank receives boundary data from its north and
west neighbours, computes, then forwards south and east; the upper-
triangular solve runs the wavefront in reverse.  Crucially, the NPB
implementation posts these receives with **MPI_ANY_SOURCE** (the paper
calls this out in §4.4), making LU the suite's test of Algorithm 2's
wildcard elimination.  Residual norms are combined with allreduces.
"""

from __future__ import annotations

from repro.apps.base import ClassParams, grid_2d, work_seconds


def lu_factory(nranks: int, params: ClassParams, wildcard: bool = True):
    px, py = grid_2d(nranks)
    n = params.grid
    nz = max(n // 8, 2)                    # k-planes swept per iteration
    face = max((n // px) * 8 * 5, 40)      # 5 solution components per cell

    def program(mpi):
        from repro.mpi.api import ANY_SOURCE

        me = mpi.rank
        x, y = me % px, me // px
        north = me - px if y > 0 else None
        south = me + px if y < py - 1 else None
        west = me - 1 if x > 0 else None
        east = me + 1 if x < px - 1 else None

        def sweep(upstream, downstream, tag):
            # one triangular solve: nz pipelined k-planes
            for _ in range(nz):
                expected = [p for p in upstream if p is not None]
                if wildcard:
                    # NPB LU receives neighbour data in arbitrary order
                    for _ in expected:
                        yield from mpi.recv(source=ANY_SOURCE, tag=tag)
                else:
                    # deterministic variant used by the ablation bench
                    for p in sorted(expected):
                        yield from mpi.recv(source=p, tag=tag)
                yield from mpi.compute(work_seconds(
                    (n // px) * (n // py) * 10))
                for p in downstream:
                    if p is not None:
                        yield from mpi.send(dest=p, nbytes=face, tag=tag)

        for _ in range(params.iterations):
            # lower-triangular: wavefront from the north-west corner
            yield from sweep((north, west), (south, east), tag=1)
            # upper-triangular: wavefront from the south-east corner
            yield from sweep((south, east), (north, west), tag=2)
            # SSOR residual norms
            yield from mpi.allreduce(40)
        yield from mpi.bcast(40, root=0)  # verification values
        yield from mpi.finalize()

    return program


CLASSES = {
    "S": ClassParams(grid=12, iterations=4),
    "W": ClassParams(grid=33, iterations=6),
    "A": ClassParams(grid=64, iterations=8),
    "B": ClassParams(grid=102, iterations=12),
    "C": ClassParams(grid=162, iterations=16),
}
