"""Application suite: communication skeletons of the NAS Parallel
Benchmarks (BT, CG, EP, FT, IS, LU, MG, SP) and Sweep3D — the paper's
evaluation workloads (§5.1) — plus the Fig. 2 ring example and the HPC
proxy skeletons (AMG, Kripke, Laghos) the scenario layer targets."""

from repro.apps.base import (PATTERNS, AppDefinition, AppError,
                             ClassParams)
from repro.apps.registry import (APPS, PAPER_SUITE, make_app,
                                 valid_rank_counts)

__all__ = [
    "APPS",
    "AppDefinition",
    "AppError",
    "ClassParams",
    "PATTERNS",
    "PAPER_SUITE",
    "make_app",
    "valid_rank_counts",
]
