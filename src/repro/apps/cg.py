"""NPB CG (Conjugate Gradient) communication skeleton.

CG distributes a sparse matrix over a 2-D processor grid (power-of-two
ranks).  Every CG iteration performs a matrix-vector product whose
partial results are summed across each processor *row* with a recursive-
halving exchange, followed by a transpose exchange with the symmetric
processor and two global dot-product reductions.  We reproduce that
structure: per inner iteration, log2(row) pairwise exchange phases, the
transpose send/receive, and the allreduces — with per-rank vector sizes
derived from the class's matrix order NA.
"""

from __future__ import annotations

from repro.apps.base import (ClassParams, require_power_of_two,
                             work_seconds)


def _cg_layout(nranks: int):
    """NPB CG layout: npcols x nprows with npcols >= nprows, both powers
    of two, npcols * nprows == nranks."""
    log2 = nranks.bit_length() - 1
    nprows = 1 << (log2 // 2)
    npcols = nranks // nprows
    return npcols, nprows


def cg_factory(nranks: int, params: ClassParams):
    require_power_of_two(nranks, "CG")
    npcols, nprows = _cg_layout(nranks)
    na = params.grid                       # matrix order
    rows_per_rank = na // nprows
    vec_bytes = max(rows_per_rank // npcols, 1) * 8

    def program(mpi):
        me = mpi.rank
        col = me % npcols
        # reduce-exchange partners within my processor row: NPB's
        # reduce_exch_proc - distance-halving butterfly over columns
        exch = []
        d = npcols // 2
        while d >= 1:
            exch.append((me // npcols) * npcols + (col ^ d))
            d //= 2
        # transpose partner (symmetric processor in the grid)
        row_idx = me // npcols
        transpose = col * nprows + row_idx if npcols == nprows else None

        for _ in range(params.iterations):
            for _ in range(params.inner):
                # sparse matvec: local work then row-sum butterfly
                yield from mpi.compute(work_seconds(
                    rows_per_rank * 16 / npcols))
                for peer in exch:
                    rreq = yield from mpi.irecv(source=peer, tag=1)
                    yield from mpi.send(dest=peer, nbytes=vec_bytes, tag=1)
                    yield from mpi.wait(rreq)
                if transpose is not None and transpose != me:
                    rreq = yield from mpi.irecv(source=transpose, tag=2)
                    yield from mpi.send(dest=transpose, nbytes=vec_bytes,
                                        tag=2)
                    yield from mpi.wait(rreq)
                # dot products rho and alpha denominators
                yield from mpi.allreduce(8)
                yield from mpi.allreduce(8)
            # residual norm after each outer iteration
            yield from mpi.allreduce(8)
        yield from mpi.finalize()

    return program


CLASSES = {
    # grid = NA (matrix order), iterations = outer x inner CG steps
    "S": ClassParams(grid=1400, iterations=4, inner=5),
    "W": ClassParams(grid=7000, iterations=6, inner=8),
    "A": ClassParams(grid=14000, iterations=8, inner=10),
    "B": ClassParams(grid=75000, iterations=20, inner=12),
    "C": ClassParams(grid=150000, iterations=30, inner=15),
}
