"""AMG (algebraic multigrid, BoomerAMG-style) communication skeleton.

AMG solves on a hierarchy of increasingly coarse operator grids.  Unlike
the geometric NPB MG, coarsening *thins the rank set*: each level keeps
roughly half the active ranks, so deep levels run on a handful of ranks
exchanging tiny messages while the idle ranks wait at the cycle's
synchronization points.  That skew — latency-bound coarse levels on a
shrinking communicator, bandwidth-bound fine levels on the full one —
is the behaviour HPC proxy studies single AMG out for, and it makes the
app a sharp probe for scenario adversaries that degrade a few links
(hot-link, bisection) versus many.

Skeleton shape per V-cycle, with ``active(level) = nranks >> level``:

* down-cycle: smooth (6-neighbour halo on the active set), restrict to
  the surviving half (pairwise send to the keeper rank);
* coarsest solve: a small allgather-like exchange among the survivors;
* up-cycle: prolongate back out (keeper sends to the re-activated rank),
  smooth again;
* a convergence allreduce over the *full* communicator closes the cycle.
"""

from __future__ import annotations

from repro.apps.base import (ClassParams, grid_3d, require_power_of_two,
                             work_seconds)


def amg_factory(nranks: int, params: ClassParams):
    require_power_of_two(nranks, "AMG")
    n = params.grid
    # thin the rank set by half per level until ~4 ranks (or 2 levels min)
    levels = max(2, min(nranks.bit_length() - 2, 8,
                        max(n.bit_length() - 3, 2)))

    def program(mpi):
        me = mpi.rank

        def active(level):
            return max(nranks >> level, 1)

        def smooth(level):
            """Halo exchange + relaxation among the level's active ranks."""
            nact = active(level)
            if me >= nact:
                return
            px, py, pz = grid_3d(nact)
            x = me % px
            y = (me // px) % py
            z = me // (px * py)

            def nbr(dx, dy, dz):
                return (((x + dx) % px) + ((y + dy) % py) * px
                        + ((z + dz) % pz) * px * py)

            side = max(n >> level, 2)
            face = max((side * side * 8) // max(px * py, 1), 8)
            peers = sorted({nbr(-1, 0, 0), nbr(1, 0, 0), nbr(0, -1, 0),
                            nbr(0, 1, 0), nbr(0, 0, -1), nbr(0, 0, 1)}
                           - {me})
            reqs = []
            for peer in peers:
                r = yield from mpi.irecv(source=peer, tag=level)
                reqs.append(r)
            for peer in peers:
                s = yield from mpi.isend(dest=peer, nbytes=face, tag=level)
                reqs.append(s)
            yield from mpi.waitall(reqs)
            yield from mpi.compute(work_seconds((side ** 3) / nact))

        def restrict(level):
            """Level -> level+1: the dropped half ships its coarse rows
            to its keeper (rank me - next_active)."""
            nact, nnext = active(level), active(level + 1)
            coarse = max((max(n >> (level + 1), 2) ** 3 * 8) // nact, 8)
            if nnext <= me < nact:
                yield from mpi.send(dest=me - nnext, nbytes=coarse,
                                    tag=100 + level)
            elif me < nnext and me + nnext < nact:
                yield from mpi.recv(source=me + nnext, tag=100 + level)

        def prolongate(level):
            """Level+1 -> level: the keeper re-activates its partner."""
            nact, nnext = active(level), active(level + 1)
            coarse = max((max(n >> (level + 1), 2) ** 3 * 8) // nact, 8)
            if me < nnext and me + nnext < nact:
                yield from mpi.send(dest=me + nnext, nbytes=coarse,
                                    tag=200 + level)
            elif nnext <= me < nact:
                yield from mpi.recv(source=me - nnext, tag=200 + level)

        # setup: operator coarsening info, one allreduce per level
        for level in range(levels):
            yield from mpi.allreduce(16)
        for _ in range(params.iterations):
            # down-cycle
            for level in range(levels - 1):
                yield from smooth(level)
                yield from restrict(level)
            # coarsest solve: the few survivors exchange everything
            nbot = active(levels - 1)
            if me < nbot:
                bot = max(n >> (levels - 1), 2)
                blob = max((bot ** 3 * 8) // nbot, 8)
                reqs = []
                for peer in range(nbot):
                    if peer == me:
                        continue
                    r = yield from mpi.irecv(source=peer, tag=99)
                    reqs.append(r)
                for peer in range(nbot):
                    if peer == me:
                        continue
                    s = yield from mpi.isend(dest=peer, nbytes=blob, tag=99)
                    reqs.append(s)
                yield from mpi.waitall(reqs)
                yield from mpi.compute(work_seconds(bot ** 3))
            # up-cycle
            for level in range(levels - 2, -1, -1):
                yield from prolongate(level)
                yield from smooth(level)
            # convergence norm over the full communicator
            yield from mpi.allreduce(8)
        yield from mpi.finalize()

    return program


CLASSES = {
    "S": ClassParams(grid=32, iterations=2),
    "W": ClassParams(grid=64, iterations=3),
    "A": ClassParams(grid=128, iterations=4),
    "B": ClassParams(grid=256, iterations=8),
    "C": ClassParams(grid=512, iterations=10),
}
