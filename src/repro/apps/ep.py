"""NPB EP (Embarrassingly Parallel) communication skeleton.

EP generates Gaussian deviates independently on every rank; the only
communication is a handful of small allreduces combining the per-bin
counts and the checksum sums at the very end — which is what makes EP the
canonical "no communication" baseline in Fig. 6.
"""

from __future__ import annotations

from repro.apps.base import ClassParams, work_seconds


def ep_factory(nranks: int, params: ClassParams):
    # EP's M parameter: 2^M random pairs split evenly across ranks
    pairs_per_rank = (1 << params.grid) / nranks

    def program(mpi):
        # batched generation: NPB processes 2^16-pair chunks
        chunks = max(params.iterations, 1)
        for _ in range(chunks):
            yield from mpi.compute(work_seconds(pairs_per_rank / chunks))
        # combine the 10 concentric-square counts q(0..9) and sx/sy sums
        yield from mpi.allreduce(8)           # sx
        yield from mpi.allreduce(8)           # sy
        yield from mpi.allreduce(10 * 8)      # q[0..9]
        yield from mpi.finalize()

    return program


CLASSES = {
    # grid here is NPB's M (log2 of pair count)
    "S": ClassParams(grid=20, iterations=4),
    "W": ClassParams(grid=21, iterations=4),
    "A": ClassParams(grid=23, iterations=8),
    "B": ClassParams(grid=25, iterations=8),
    "C": ClassParams(grid=27, iterations=16),
}
