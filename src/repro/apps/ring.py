"""Ring microbenchmark — the paper's running example (Fig. 2).

Each rank posts a receive from its left neighbour, sends to its right
neighbour, and waits, for a configurable number of iterations.  The
ScalaTrace of this program compresses to a single PRSD exactly as §3.1
describes, and the generated coNCePTuaL program matches §3.2's example.
"""

from __future__ import annotations

from repro.apps.base import ClassParams, work_seconds


def ring_factory(nranks: int, params: ClassParams, nbytes: int = 1024):
    iterations = params.iterations

    def program(mpi):
        right = (mpi.rank + 1) % mpi.size
        left = (mpi.rank - 1) % mpi.size
        for _ in range(iterations):
            rreq = yield from mpi.irecv(source=left, tag=0)
            sreq = yield from mpi.isend(dest=right, nbytes=nbytes, tag=0)
            yield from mpi.waitall([rreq, sreq])
            yield from mpi.compute(work_seconds(params.grid ** 2
                                                / mpi.size))
        yield from mpi.finalize()

    return program


CLASSES = {
    "S": ClassParams(grid=32, iterations=50),
    "W": ClassParams(grid=64, iterations=100),
    "A": ClassParams(grid=128, iterations=200),
    "B": ClassParams(grid=256, iterations=400),
    "C": ClassParams(grid=512, iterations=1000),
}
