"""Application registry: name → buildable definition."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.apps import (amg, bt, cg, ep, ft, halo3d, is_sort, jacobi,
                        kripke, laghos, lu, mg, races, ring, sp, sweep3d)
from repro.apps.base import (AppDefinition, AppError, require_power_of_two,
                             require_square)

APPS: Dict[str, AppDefinition] = {
    "ring": AppDefinition(
        "ring", ring.ring_factory, ring.CLASSES,
        "nearest-neighbour ring exchange (the paper's Fig. 2 example)",
        pattern="stencil"),
    "ep": AppDefinition(
        "ep", ep.ep_factory, ep.CLASSES,
        "NPB EP: embarrassingly parallel, final small allreduces",
        pattern="embarrassingly-parallel"),
    "cg": AppDefinition(
        "cg", cg.cg_factory, cg.CLASSES,
        "NPB CG: row-sum butterfly + transpose + dot-product allreduces",
        validate=lambda n: require_power_of_two(n, "CG"),
        pattern="collective-heavy"),
    "mg": AppDefinition(
        "mg", mg.mg_factory, mg.CLASSES,
        "NPB MG: V-cycle with level-dependent 3-D halo exchange",
        validate=lambda n: require_power_of_two(n, "MG"),
        pattern="multigrid"),
    "ft": AppDefinition(
        "ft", ft.ft_factory, ft.CLASSES,
        "NPB FT: all-to-all transposes on a duplicated communicator",
        validate=lambda n: require_power_of_two(n, "FT"),
        pattern="transpose"),
    "is": AppDefinition(
        "is", is_sort.is_factory, is_sort.CLASSES,
        "NPB IS: bucket allreduce + alltoall + uneven alltoallv",
        validate=lambda n: require_power_of_two(n, "IS"),
        pattern="transpose"),
    "lu": AppDefinition(
        "lu", lu.lu_factory, lu.CLASSES,
        "NPB LU: SSOR wavefront with MPI_ANY_SOURCE receives (§4.4)",
        pattern="sweep"),
    "bt": AppDefinition(
        "bt", bt.bt_factory, bt.CLASSES,
        "NPB BT: ADI face exchange + solver pipelines (the §5.4 subject)",
        validate=lambda n: require_square(n, "BT"),
        pattern="stencil"),
    "sp": AppDefinition(
        "sp", sp.sp_factory, sp.CLASSES,
        "NPB SP: ADI with thinner, more frequent pipeline messages",
        validate=lambda n: require_square(n, "SP"),
        pattern="stencil"),
    "sweep3d": AppDefinition(
        "sweep3d", sweep3d.sweep3d_factory, sweep3d.CLASSES,
        "Sweep3D: octant wavefronts with split-call-site collectives "
        "(§4.3)",
        pattern="sweep"),
    # extra (non-paper) workloads
    "jacobi": AppDefinition(
        "jacobi", jacobi.jacobi_factory, jacobi.CLASSES,
        "Jacobi 2-D: non-periodic 5-point halo exchange + residual checks",
        pattern="stencil"),
    "halo3d": AppDefinition(
        "halo3d", halo3d.halo3d_factory, halo3d.CLASSES,
        "halo3d: 27-point 3-D exchange (faces/edges/corners, Ember-style)",
        pattern="stencil"),
    "race": AppDefinition(
        "race", races.race_factory, races.CLASSES,
        "wildcard fan-in race: schedule-dependent deadlock fixture for "
        "the fuzzer (docs/FUZZING.md)",
        validate=races.validate,
        pattern="irregular"),
    # HPC proxy applications (scenario-layer targets)
    "amg": AppDefinition(
        "amg", amg.amg_factory, amg.CLASSES,
        "AMG: algebraic-multigrid V-cycle with rank-thinning coarse "
        "levels (BoomerAMG-style)",
        validate=lambda n: require_power_of_two(n, "AMG"),
        pattern="multigrid"),
    "kripke": AppDefinition(
        "kripke", kripke.kripke_factory, kripke.CLASSES,
        "Kripke: KBA transport sweeps pipelined over group/direction "
        "sets (LLNL proxy)",
        pattern="sweep"),
    "laghos": AppDefinition(
        "laghos", laghos.laghos_factory, laghos.CLASSES,
        "Laghos: high-order Lagrangian hydro — halo exchange + CG "
        "dot-product allreduce mix (CEED proxy)",
        pattern="collective-heavy"),
}

#: the paper's evaluation set (§5.1): NPB + Sweep3D
PAPER_SUITE = ("bt", "cg", "ep", "ft", "is", "lu", "mg", "sp", "sweep3d")


def make_app(name: str, nranks: int, cls: str = "S", **kwargs) -> Callable:
    """Build the SPMD program for a named application."""
    try:
        definition = APPS[name.lower()]
    except KeyError:
        raise AppError(
            f"unknown application {name!r}; choose from "
            f"{sorted(APPS)}") from None
    return definition.make(nranks, cls, **kwargs)


def valid_rank_counts(name: str, candidates: List[int]) -> List[int]:
    """Filter candidate rank counts to those the app accepts."""
    definition = APPS[name.lower()]
    out = []
    for n in candidates:
        try:
            if definition.validate is not None:
                definition.validate(n)
            out.append(n)
        except AppError:
            continue
    return out
