"""NPB IS (Integer Sort) communication skeleton.

Each IS iteration ranks a set of keys: the ranks combine bucket counts
with an allreduce, exchange per-destination key counts with an alltoall
of one integer each, and redistribute the keys themselves with an
alltoallv whose per-destination volumes are *uneven* (keys are Gaussian-
distributed over buckets).  The uneven alltoallv is the suite's test of
Table 1's "MULTICAST with averaged message size" substitution.
"""

from __future__ import annotations

from repro.apps.base import ClassParams, require_power_of_two, work_seconds


def _key_split(total_keys: int, nranks: int):
    """Deterministically uneven per-destination key counts (middle ranks
    receive more, mimicking the Gaussian key distribution)."""
    base = total_keys // (nranks * nranks)
    sizes = []
    for dst in range(nranks):
        centre = nranks / 2
        weight = 1.0 + 0.8 * (1.0 - abs(dst - centre) / centre)
        sizes.append(max(int(base * weight), 4) * 4)  # 4-byte keys
    return sizes

def is_factory(nranks: int, params: ClassParams):
    require_power_of_two(nranks, "IS")
    total_keys = 1 << params.grid
    buckets = 1024

    def program(mpi):
        for _ in range(params.iterations):
            # local bucket counting
            yield from mpi.compute(work_seconds(total_keys / mpi.size))
            # combine bucket histograms
            yield from mpi.allreduce(buckets * 4)
            # exchange key counts, then the keys themselves (uneven)
            yield from mpi.alltoall(4)
            sizes = _key_split(total_keys, mpi.size)
            yield from mpi.alltoallv(sizes)
            # local ranking of received keys
            yield from mpi.compute(work_seconds(total_keys / mpi.size / 2))
        # full verification
        yield from mpi.allreduce(8)
        yield from mpi.finalize()

    return program


CLASSES = {
    # grid = log2 of total keys
    "S": ClassParams(grid=16, iterations=4),
    "W": ClassParams(grid=20, iterations=6),
    "A": ClassParams(grid=23, iterations=10),
    "B": ClassParams(grid=25, iterations=10),
    "C": ClassParams(grid=27, iterations=10),
}
