"""NPB MG (Multigrid) communication skeleton.

MG performs V-cycles on a 3-D grid distributed over a 3-D processor
decomposition.  Each level exchanges one-cell-deep halos with the six
axis neighbours (periodic), with face sizes shrinking by 4x per
coarsening step; residual norms are combined with small allreduces.  The
per-level size variation is exactly the kind of per-iteration parameter
change the generator must express with loop-variable conditionals.
"""

from __future__ import annotations

from repro.apps.base import (ClassParams, grid_3d, require_power_of_two,
                             work_seconds)


def mg_factory(nranks: int, params: ClassParams):
    require_power_of_two(nranks, "MG")
    px, py, pz = grid_3d(nranks)
    n = params.grid
    # levels until the local grid degenerates
    levels = max(2, min(n.bit_length() - 2, 6))

    def program(mpi):
        me = mpi.rank
        # my coordinates in the process grid
        x = me % px
        y = (me // px) % py
        z = me // (px * py)

        def nbr(dx, dy, dz):
            return (((x + dx) % px) + ((y + dy) % py) * px
                    + ((z + dz) % pz) * px * py)

        neighbours = [nbr(-1, 0, 0), nbr(1, 0, 0), nbr(0, -1, 0),
                      nbr(0, 1, 0), nbr(0, 0, -1), nbr(0, 0, 1)]

        def exchange(level):
            # face bytes at this level: (n / 2^level)^2 per dimension pair
            side = max(n >> level, 2)
            face = max((side * side * 8) // max(px * py, 1), 8)
            reqs = []
            for peer in neighbours:
                r = yield from mpi.irecv(source=peer, tag=level)
                reqs.append(r)
            for peer in neighbours:
                s = yield from mpi.isend(dest=peer, nbytes=face, tag=level)
                reqs.append(s)
            yield from mpi.waitall(reqs)

        # initial residual norm
        yield from mpi.allreduce(16)
        for _ in range(params.iterations):
            # down-cycle: restrict to coarser grids
            for level in range(levels):
                yield from mpi.compute(work_seconds(
                    (max(n >> level, 2) ** 3) / nranks))
                yield from exchange(level)
            # up-cycle: prolongate and smooth back to the fine grid
            for level in range(levels - 1, -1, -1):
                yield from mpi.compute(work_seconds(
                    (max(n >> level, 2) ** 3) / (2 * nranks)))
                yield from exchange(level)
            # convergence norm
            yield from mpi.allreduce(16)
        yield from mpi.finalize()

    return program


CLASSES = {
    "S": ClassParams(grid=32, iterations=4),
    "W": ClassParams(grid=64, iterations=4),
    "A": ClassParams(grid=256, iterations=4),
    "B": ClassParams(grid=256, iterations=10),
    "C": ClassParams(grid=512, iterations=10),
}
