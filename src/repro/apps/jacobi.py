"""Jacobi 2-D relaxation — a classic halo-exchange workload beyond the
paper's suite.

Five-point stencil on a non-periodic 2-D process grid: every iteration
exchanges one-row/one-column halos with up to four neighbours and checks
convergence with an allreduce every few sweeps.  The non-periodic
boundaries give corner, edge, and interior ranks different communication
shapes — a good exercise for the generator's task-group selectors.
"""

from __future__ import annotations

from repro.apps.base import ClassParams, grid_2d, work_seconds


def jacobi_factory(nranks: int, params: ClassParams,
                   check_every: int = 4):
    px, py = grid_2d(nranks)
    n = params.grid
    row_bytes = max((n // px) * 8, 8)
    col_bytes = max((n // py) * 8, 8)

    def program(mpi):
        me = mpi.rank
        x, y = me % px, me // px
        neighbours = []
        if x > 0:
            neighbours.append((me - 1, col_bytes))
        if x < px - 1:
            neighbours.append((me + 1, col_bytes))
        if y > 0:
            neighbours.append((me - px, row_bytes))
        if y < py - 1:
            neighbours.append((me + px, row_bytes))

        for it in range(params.iterations):
            reqs = []
            for peer, _ in neighbours:
                r = yield from mpi.irecv(source=peer, tag=0)
                reqs.append(r)
            for peer, nbytes in neighbours:
                s = yield from mpi.isend(dest=peer, nbytes=nbytes, tag=0)
                reqs.append(s)
            yield from mpi.waitall(reqs)
            yield from mpi.compute(work_seconds(
                (n // px) * (n // py) * 5))
            if it % check_every == check_every - 1:
                yield from mpi.allreduce(8)   # global residual
        yield from mpi.finalize()

    return program


CLASSES = {
    "S": ClassParams(grid=64, iterations=8),
    "W": ClassParams(grid=128, iterations=16),
    "A": ClassParams(grid=256, iterations=24),
    "B": ClassParams(grid=512, iterations=48),
    "C": ClassParams(grid=1024, iterations=64),
}
