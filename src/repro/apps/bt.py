"""NPB BT (Block Tridiagonal ADI solver) communication skeleton.

BT runs on a square process grid.  Each time step exchanges ghost faces
with the four grid neighbours (``copy_faces``, large asynchronous
messages), then solves block-tridiagonal systems along x, y and z with a
forward-substitution pipeline down each processor row/column and a
back-substitution pipeline in the reverse direction.  BT is the paper's
§5.4 what-if subject: almost all its traffic is asynchronous
point-to-point with only setup/verification collectives.
"""

from __future__ import annotations

from repro.apps.base import ClassParams, require_square, work_seconds


def bt_factory(nranks: int, params: ClassParams):
    q = require_square(nranks, "BT")
    n = params.grid
    cell = max(n // q, 2)                  # cells per rank per dimension
    face_bytes = cell * cell * 5 * 8       # 5 solution components
    line_bytes = cell * 5 * 5 * 8          # block boundary per pipeline hop

    def program(mpi):
        me = mpi.rank
        x, y = me % q, me // q

        def wrap(cx, cy):
            return (cx % q) + (cy % q) * q

        east, west = wrap(x + 1, y), wrap(x - 1, y)
        south, north = wrap(x, y + 1), wrap(x, y - 1)

        # setup broadcasts
        yield from mpi.bcast(8, root=0)
        yield from mpi.bcast(40, root=0)

        def copy_faces():
            reqs = []
            for peer in (east, west, south, north):
                r = yield from mpi.irecv(source=peer, tag=0)
                reqs.append(r)
            for peer in (east, west, south, north):
                s = yield from mpi.isend(dest=peer, nbytes=face_bytes,
                                         tag=0)
                reqs.append(s)
            yield from mpi.waitall(reqs)

        def solve_line(prev, nxt, first, last, tag):
            # forward substitution down the line
            if not first:
                yield from mpi.recv(source=prev, tag=tag)
            yield from mpi.compute(work_seconds(cell ** 3 * 2))
            if not last:
                yield from mpi.send(dest=nxt, nbytes=line_bytes, tag=tag)
            # back substitution up the line
            if not last:
                yield from mpi.recv(source=nxt, tag=tag + 1)
            yield from mpi.compute(work_seconds(cell ** 3))
            if not first:
                yield from mpi.send(dest=prev, nbytes=line_bytes,
                                    tag=tag + 1)

        for _ in range(params.iterations):
            yield from copy_faces()
            yield from mpi.compute(work_seconds(cell ** 3 * 5))  # rhs
            # x_solve: pipeline along my processor row
            yield from solve_line(west, east, x == 0, x == q - 1, tag=10)
            # y_solve: pipeline along my processor column
            yield from solve_line(north, south, y == 0, y == q - 1, tag=20)
            # z_solve is rank-local
            yield from mpi.compute(work_seconds(cell ** 3 * 2))
        # verification
        yield from mpi.reduce(40, root=0)
        yield from mpi.allreduce(8)
        yield from mpi.finalize()

    return program


CLASSES = {
    "S": ClassParams(grid=12, iterations=6),
    "W": ClassParams(grid=24, iterations=8),
    "A": ClassParams(grid=64, iterations=10),
    "B": ClassParams(grid=102, iterations=20),
    "C": ClassParams(grid=162, iterations=30),
}
