"""Kripke (LLNL deterministic transport proxy) communication skeleton.

Kripke, like Sweep3D, performs KBA wavefront sweeps of the discrete-
ordinates equations across a 2-D processor decomposition — but it
pipelines much more aggressively: the angular domain is blocked into
*group-sets* and *direction-sets*, and every (group-set, direction-set,
zone-plane) block is swept as an independent pipelined stage.  The
result is many more, smaller wavefront messages in flight at once, which
keeps the sweep pipeline full but makes the app acutely sensitive to
per-link queueing and to stragglers on the process-grid diagonal — the
``straggler-wavefront`` scenario's target.  Between sweep passes the
groups are reduced with a population allreduce.

Skeleton shape per iteration: for each direction-set (one per sweep
corner) and each group-set, sweep ``inner`` zone-plane blocks through
the grid; then one allreduce for the particle-balance check.
"""

from __future__ import annotations

from repro.apps.base import ClassParams, grid_2d, work_seconds

#: sweep corners (di, dj): Kripke sweeps all four 2-D quadrants
_CORNERS = [(1, 1), (-1, 1), (1, -1), (-1, -1)]

#: angular blocking: group-sets x direction-sets-per-corner
_GROUP_SETS = 2


def kripke_factory(nranks: int, params: ClassParams):
    px, py = grid_2d(nranks)
    n = params.grid
    it_cells = max(n // px, 1)
    jt_cells = max(n // py, 1)
    # per-block boundary flux: thinner than Sweep3D's because the
    # angular domain is split across group-sets
    i_face = max(jt_cells * 4 * 8 // _GROUP_SETS, 8)
    j_face = max(it_cells * 4 * 8 // _GROUP_SETS, 8)

    def program(mpi):
        me = mpi.rank
        x, y = me % px, me // px

        def sweep_block(di, dj, tag):
            """One (group-set, direction-set, k-block) pipeline stage."""
            i_up = me - di if 0 <= x - di < px else None
            i_dn = me + di if 0 <= x + di < px else None
            j_up = me - dj * px if 0 <= y - dj < py else None
            j_dn = me + dj * px if 0 <= y + dj < py else None
            if i_up is not None:
                yield from mpi.recv(source=i_up, tag=tag)
            if j_up is not None:
                yield from mpi.recv(source=j_up, tag=tag + 1)
            yield from mpi.compute(work_seconds(
                it_cells * jt_cells * 4 / _GROUP_SETS))
            if i_dn is not None:
                yield from mpi.send(dest=i_dn, nbytes=i_face, tag=tag)
            if j_dn is not None:
                yield from mpi.send(dest=j_dn, nbytes=j_face, tag=tag + 1)

        for _ in range(params.iterations):
            for ci, (di, dj) in enumerate(_CORNERS):
                for gs in range(_GROUP_SETS):
                    # zone-plane blocks pipeline through the grid: the
                    # next block enters as soon as the corner rank frees
                    tag = 2 * (ci * _GROUP_SETS + gs)
                    for _ in range(params.inner):
                        yield from sweep_block(di, dj, tag)
            # particle balance across all groups
            yield from mpi.allreduce(16)
        yield from mpi.bcast(8, root=0)
        yield from mpi.finalize()

    return program


CLASSES = {
    "S": ClassParams(grid=16, iterations=2, inner=4),
    "W": ClassParams(grid=32, iterations=3, inner=6),
    "A": ClassParams(grid=64, iterations=4, inner=8),
    "B": ClassParams(grid=128, iterations=6, inner=10),
    "C": ClassParams(grid=256, iterations=8, inner=12),
}
