"""NPB SP (Scalar Pentadiagonal ADI solver) communication skeleton.

SP shares BT's square-grid ADI structure but factors scalar
pentadiagonal systems: it runs roughly twice as many (smaller) pipeline
messages per time step and many more time steps, giving it a higher
communication-to-computation ratio — the contrast Fig. 6 shows between
the two codes.
"""

from __future__ import annotations

from repro.apps.base import ClassParams, require_square, work_seconds


def sp_factory(nranks: int, params: ClassParams):
    q = require_square(nranks, "SP")
    n = params.grid
    cell = max(n // q, 2)
    face_bytes = cell * cell * 5 * 8
    line_bytes = cell * 5 * 2 * 8          # scalar systems: thinner lines

    def program(mpi):
        me = mpi.rank
        x, y = me % q, me // q

        def wrap(cx, cy):
            return (cx % q) + (cy % q) * q

        east, west = wrap(x + 1, y), wrap(x - 1, y)
        south, north = wrap(x, y + 1), wrap(x, y - 1)

        yield from mpi.bcast(8, root=0)

        def exchange_faces():
            reqs = []
            for peer in (east, west, south, north):
                r = yield from mpi.irecv(source=peer, tag=0)
                reqs.append(r)
            for peer in (east, west, south, north):
                s = yield from mpi.isend(dest=peer, nbytes=face_bytes,
                                         tag=0)
                reqs.append(s)
            yield from mpi.waitall(reqs)

        def pentadiagonal(prev, nxt, first, last, tag):
            # SP's solver makes two forward and two backward hops per
            # dimension (factor + solve phases)
            for phase in range(2):
                t = tag + 2 * phase
                if not first:
                    yield from mpi.recv(source=prev, tag=t)
                yield from mpi.compute(work_seconds(cell ** 3))
                if not last:
                    yield from mpi.send(dest=nxt, nbytes=line_bytes, tag=t)
                if not last:
                    yield from mpi.recv(source=nxt, tag=t + 1)
                yield from mpi.compute(work_seconds(cell ** 3 / 2))
                if not first:
                    yield from mpi.send(dest=prev, nbytes=line_bytes,
                                        tag=t + 1)

        for _ in range(params.iterations):
            yield from exchange_faces()
            yield from mpi.compute(work_seconds(cell ** 3 * 3))
            yield from pentadiagonal(west, east, x == 0, x == q - 1, tag=10)
            yield from pentadiagonal(north, south, y == 0, y == q - 1,
                                     tag=20)
            yield from mpi.compute(work_seconds(cell ** 3))
        yield from mpi.reduce(40, root=0)
        yield from mpi.allreduce(8)
        yield from mpi.finalize()

    return program


CLASSES = {
    "S": ClassParams(grid=12, iterations=8),
    "W": ClassParams(grid=36, iterations=12),
    "A": ClassParams(grid=64, iterations=16),
    "B": ClassParams(grid=102, iterations=30),
    "C": ClassParams(grid=162, iterations=40),
}
