"""Shared infrastructure for the application suite.

Each application is a *communication skeleton*: the exact message pattern
of the original code (peers, sizes, tags, collectives, ordering) with the
numerics replaced by virtual-time compute phases — the same abstraction
the paper's generated benchmarks make, applied one level earlier so the
whole study runs on the simulator.

Problem classes follow the NPB convention (S, W, A, B, C): the class sets
the global grid size and iteration count; the per-rank work and message
sizes then derive from the processor decomposition, so strong-scaling
behaviour is realistic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.errors import ReproError


class AppError(ReproError):
    """Invalid application configuration (bad rank count, unknown class)."""


#: the communication-pattern vocabulary: every registry app declares one,
#: so scenario adversaries (repro.scenarios) can target what actually
#: hurts that pattern (e.g. stragglers on a wavefront's critical path)
#: and ``repro apps --json`` can report it
PATTERNS = (
    "collective-heavy",        # dominated by allreduce/alltoall phases
    "embarrassingly-parallel",  # compute with rare small collectives
    "irregular",               # wildcard/race-driven, schedule-sensitive
    "multigrid",               # level-varying halos, V-cycle structure
    "stencil",                 # fixed-neighbour halo exchange
    "sweep",                   # pipelined wavefronts over a process grid
    "transpose",               # all-to-all data redistribution
)


@dataclass(frozen=True)
class ClassParams:
    """One NPB problem class for one app."""

    grid: int          # global grid points per dimension
    iterations: int    # main loop trip count
    inner: int = 1     # inner-loop factor where the app has one


#: seconds of computation per grid point per sweep — a Blue Gene/L-class
#: core doing a handful of flops per point
PER_POINT = 4e-9


def work_seconds(points: float, per_point: float = PER_POINT) -> float:
    """Virtual compute time for touching ``points`` grid points."""
    return max(points, 0.0) * per_point


def grid_2d(nranks: int) -> Tuple[int, int]:
    """Near-square 2-D process grid (px >= py, px * py == nranks)."""
    py = int(math.sqrt(nranks))
    while py > 1 and nranks % py:
        py -= 1
    return nranks // py, py


def grid_3d(nranks: int) -> Tuple[int, int, int]:
    """Near-cubic 3-D process grid."""
    best = (nranks, 1, 1)
    best_score = None
    z = 1
    while z * z * z <= nranks:
        if nranks % z == 0:
            rem = nranks // z
            px, py = grid_2d(rem)
            dims = tuple(sorted((px, py, z), reverse=True))
            score = max(dims) - min(dims)
            if best_score is None or score < best_score:
                best, best_score = dims, score
        z += 1
    return best


def require_square(nranks: int, app: str) -> int:
    q = int(math.sqrt(nranks))
    if q * q != nranks:
        raise AppError(f"{app} requires a square number of ranks, "
                       f"got {nranks}")
    return q


def require_power_of_two(nranks: int, app: str) -> int:
    if nranks <= 0 or nranks & (nranks - 1):
        raise AppError(f"{app} requires a power-of-two number of ranks, "
                       f"got {nranks}")
    return nranks


@dataclass
class AppDefinition:
    """Registry entry: how to build one application."""

    name: str
    factory: Callable  # factory(nranks, params, **kw) -> program
    classes: Dict[str, ClassParams]
    description: str = ""
    validate: Optional[Callable[[int], None]] = None
    pattern: str = "stencil"  # communication pattern (PATTERNS)

    def __post_init__(self):
        if self.pattern not in PATTERNS:
            raise AppError(
                f"{self.name}: unknown pattern {self.pattern!r}; "
                f"choose from {PATTERNS}")

    def make(self, nranks: int, cls: str = "S", **kwargs) -> Callable:
        """Build the SPMD program function for ``nranks`` ranks."""
        if self.validate is not None:
            self.validate(nranks)
        try:
            params = self.classes[cls.upper()]
        except KeyError:
            raise AppError(
                f"{self.name}: unknown class {cls!r}; choose from "
                f"{sorted(self.classes)}") from None
        return self.factory(nranks, params, **kwargs)
