"""Sweep3D (LANL neutron-transport kernel) communication skeleton.

Sweep3D sweeps the discrete-ordinates equations across a 2-D processor
grid for each of 8 angular octants: a rank receives its upstream i- and
j-direction boundary fluxes, computes its block of cells, and forwards
downstream — the classic wavefront.  After each pair of octants the code
performs a flux-fixup reduction which, in the original source, is invoked
from *different lines* depending on whether the rank applied fixups.  That
is precisely the Fig. 3 situation, making Sweep3D the suite's test of
Algorithm 1's collective alignment (the paper names it for this in §5.1).
"""

from __future__ import annotations

from repro.apps.base import ClassParams, grid_2d, work_seconds

#: sweep directions per octant pair: (di, dj)
_OCTANTS = [(1, 1), (-1, 1), (1, -1), (-1, -1)]


def sweep3d_factory(nranks: int, params: ClassParams,
                    split_callsites: bool = True):
    px, py = grid_2d(nranks)
    n = params.grid
    # angle-block boundary flux: it x jt cells x mmi angles x 8 bytes
    it_cells = max(n // px, 1)
    jt_cells = max(n // py, 1)
    i_face = jt_cells * 6 * 8
    j_face = it_cells * 6 * 8

    def program(mpi):
        me = mpi.rank
        x, y = me % px, me // px

        def sweep(di, dj):
            # upstream/downstream neighbours for this sweep direction
            i_up = me - di if 0 <= x - di < px else None
            i_dn = me + di if 0 <= x + di < px else None
            j_up = me - dj * px if 0 <= y - dj < py else None
            j_dn = me + dj * px if 0 <= y + dj < py else None
            for _ in range(params.inner):       # k-plane blocks
                if i_up is not None:
                    yield from mpi.recv(source=i_up, tag=1)
                if j_up is not None:
                    yield from mpi.recv(source=j_up, tag=2)
                yield from mpi.compute(work_seconds(
                    it_cells * jt_cells * 8))
                if i_dn is not None:
                    yield from mpi.send(dest=i_dn, nbytes=i_face, tag=1)
                if j_dn is not None:
                    yield from mpi.send(dest=j_dn, nbytes=j_face, tag=2)

        for _ in range(params.iterations):
            for di, dj in _OCTANTS:
                yield from sweep(di, dj)
                yield from sweep(-di, -dj)
                # flux fixup: the same logical allreduce is reached from
                # two different source lines depending on local state
                if split_callsites and (me + x + y) % 2 == 0:
                    yield from mpi.allreduce(24)   # fixup branch
                else:
                    yield from mpi.allreduce(24)   # no-fixup branch
            # convergence test on the scalar flux
            yield from mpi.allreduce(8)
        yield from mpi.bcast(16, root=0)
        yield from mpi.finalize()

    return program


CLASSES = {
    "S": ClassParams(grid=20, iterations=2, inner=4),
    "W": ClassParams(grid=50, iterations=3, inner=6),
    "A": ClassParams(grid=100, iterations=4, inner=8),
    "B": ClassParams(grid=200, iterations=6, inner=10),
    "C": ClassParams(grid=400, iterations=8, inner=12),
}
