"""halo3d — a 27-point 3-D exchange in the style of the Mantevo/Ember
communication proxies.

Each iteration exchanges faces, edges, and corners with all 26 neighbours
of a non-periodic 3-D decomposition (three very different message sizes),
followed by a compute phase and a periodic small allreduce.  The mix of
message sizes in one phase stresses the emitter's grouping machinery and
the network models' eager/rendezvous split.
"""

from __future__ import annotations

from repro.apps.base import ClassParams, grid_3d, work_seconds


def halo3d_factory(nranks: int, params: ClassParams):
    px, py, pz = grid_3d(nranks)
    n = params.grid
    bx, by, bz = max(n // px, 2), max(n // py, 2), max(n // pz, 2)
    face = {  # bytes by neighbour kind
        "face": max(bx * by * 8, 8),
        "edge": max(bx * 8, 8),
        "corner": 8,
    }

    def program(mpi):
        me = mpi.rank
        x = me % px
        y = (me // px) % py
        z = me // (px * py)
        neighbours = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for dz in (-1, 0, 1):
                    if dx == dy == dz == 0:
                        continue
                    nx, ny, nz = x + dx, y + dy, z + dz
                    if not (0 <= nx < px and 0 <= ny < py
                            and 0 <= nz < pz):
                        continue
                    kind = ("corner" if dx and dy and dz else
                            "edge" if (bool(dx) + bool(dy) + bool(dz)) == 2
                            else "face")
                    neighbours.append(
                        (nx + ny * px + nz * px * py, face[kind]))

        for _ in range(params.iterations):
            reqs = []
            for peer, _ in neighbours:
                r = yield from mpi.irecv(source=peer, tag=0)
                reqs.append(r)
            for peer, nbytes in neighbours:
                s = yield from mpi.isend(dest=peer, nbytes=nbytes, tag=0)
                reqs.append(s)
            yield from mpi.waitall(reqs)
            yield from mpi.compute(work_seconds(bx * by * bz * 3))
            yield from mpi.allreduce(8)
        yield from mpi.finalize()

    return program


CLASSES = {
    "S": ClassParams(grid=16, iterations=4),
    "W": ClassParams(grid=32, iterations=8),
    "A": ClassParams(grid=64, iterations=12),
    "B": ClassParams(grid=128, iterations=20),
    "C": ClassParams(grid=256, iterations=30),
}
