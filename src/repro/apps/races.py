"""Wildcard fan-in race — a deliberately schedule-dependent skeleton.

The pattern is the one in ``examples/deadlock_detection.py`` (the
paper's Fig. 5 discussion): a master posts ``nranks - 2`` ANY_SOURCE
receives followed by one *directed* receive from a straggler that sends
late.  On the canonical schedule the straggler's message is always the
last-arriving candidate, so the wildcards drain the prompt senders and
the directed receive gets the straggler's message — the run completes.
But every wildcard could *legally* match the straggler instead; any
schedule that lets one do so leaves the directed receive waiting on a
message that was already consumed, a classic schedule-dependent
deadlock.  This is the seeded fixture the schedule-space fuzzer
(``repro fuzz``, see ``docs/FUZZING.md``) is asserted against: the
``canonical`` policy completes, ``adversarial-delay`` deadlocks
deterministically, and ``random`` deadlocks for most seeds.

Rank layout (``nranks >= 3``):

* rank 0 — the master: per iteration, ``nranks - 2`` blocking wildcard
  receives, then a blocking receive directed at the straggler;
* ranks ``1 .. nranks-2`` — prompt senders: one eager send to the
  master per iteration;
* rank ``nranks - 1`` — the straggler: a compute delay much longer
  than any fabric latency, then one eager send per iteration.

The straggler is the *highest* rank on purpose: rank cohorts execute in
rank order, so on wire-queueing platforms (ethernet, arc) the prompt
senders claim the master's serial ejection link first and the
straggler's message stays the latest arrival there too — the canonical
completion guarantee holds on every platform preset.
"""

from __future__ import annotations

from repro.apps.base import AppError, ClassParams, work_seconds
from repro.mpi.api import ANY_SOURCE

#: straggler compute delay in seconds — three decades above the largest
#: platform-preset latency (3e-5), so the straggler's arrival estimate
#: is strictly the maximum among the wildcard candidates everywhere
STRAGGLER_DELAY = 1e-3


def validate(nranks: int) -> None:
    """The race needs a master, a straggler, and >= 1 prompt sender."""
    if nranks < 3:
        raise AppError(f"race requires at least 3 ranks, got {nranks}")


def race_factory(nranks: int, params: ClassParams, nbytes: int = 64):
    iterations = params.iterations
    fanin = nranks - 2
    straggler = nranks - 1

    def program(mpi):
        rank = mpi.rank
        for _ in range(iterations):
            if rank == 0:
                for _ in range(fanin):
                    yield from mpi.recv(source=ANY_SOURCE, tag=0)
                yield from mpi.recv(source=straggler, tag=0)
                yield from mpi.compute(work_seconds(params.grid ** 2))
            elif rank == straggler:
                yield from mpi.compute(STRAGGLER_DELAY)
                yield from mpi.send(dest=0, nbytes=nbytes, tag=0)
            else:
                yield from mpi.send(dest=0, nbytes=nbytes, tag=0)
        yield from mpi.finalize()

    return program


CLASSES = {
    "S": ClassParams(grid=16, iterations=1),
    "W": ClassParams(grid=16, iterations=2),
    "A": ClassParams(grid=32, iterations=4),
    "B": ClassParams(grid=32, iterations=8),
    "C": ClassParams(grid=64, iterations=16),
}
