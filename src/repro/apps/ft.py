"""NPB FT (3-D FFT) communication skeleton.

FT computes repeated 3-D FFTs with a 1-D ("slab") decomposition at our
scale: each iteration performs local FFTs in two dimensions, a global
transpose implemented as MPI_Alltoall over a *duplicated* communicator,
the remaining 1-D FFTs, and a checksum combined with an allreduce.  The
communicator duplication at startup exercises §4.2's communicator
handling in the generator.
"""

from __future__ import annotations

from repro.apps.base import ClassParams, require_power_of_two, work_seconds


def ft_factory(nranks: int, params: ClassParams):
    require_power_of_two(nranks, "FT")
    n = params.grid
    # complex doubles: total volume n^3 * 16 bytes, transposed every FFT
    slab_bytes = (n * n * n * 16) // (nranks * nranks)  # per-destination

    def program(mpi):
        # FT sets up its own communicator (MPI_Comm_dup of world)
        comm = yield from mpi.comm_dup(None)
        # broadcast of problem parameters
        yield from mpi.bcast(24, root=0, comm=comm)
        # initial evolve + forward FFT
        yield from mpi.compute(work_seconds((n ** 3) * 2 / mpi.size))
        yield from mpi.alltoall(max(slab_bytes, 16), comm=comm)
        for _ in range(params.iterations):
            # evolve in frequency space + inverse FFT (2 local dims)
            yield from mpi.compute(work_seconds((n ** 3) * 3 / mpi.size))
            # global transpose
            yield from mpi.alltoall(max(slab_bytes, 16), comm=comm)
            # final local FFT dimension + checksum
            yield from mpi.compute(work_seconds((n ** 3) / mpi.size))
            yield from mpi.allreduce(16, comm=comm)
        yield from mpi.finalize()

    return program


CLASSES = {
    "S": ClassParams(grid=64, iterations=6),
    "W": ClassParams(grid=128, iterations=6),
    "A": ClassParams(grid=256, iterations=6),
    "B": ClassParams(grid=512, iterations=20),
    "C": ClassParams(grid=512, iterations=20),
}
