"""Laghos (high-order Lagrangian hydrodynamics proxy) communication
skeleton.

Laghos advances compressible flow on a moving high-order mesh.  Each
time step assembles forces (a face-neighbour halo exchange over the
mesh partition) and then runs a CG solve for the velocity mass matrix —
a tight loop of small halo exchanges *and* latency-critical dot-product
allreduces, two per CG iteration.  The resulting mix — medium halo
traffic punctuated by many tiny global reductions — is the opposite
extreme from the sweep apps, and it is what makes Laghos the standard
probe for allreduce sensitivity: hotspot/incast scenarios that delay
even one participant stall every reduction.

Skeleton shape per time step: force-assembly halo, then ``inner`` CG
iterations (halo + two 8-byte allreduces each), then a dt-control
allreduce and an energy-conservation check.
"""

from __future__ import annotations

from repro.apps.base import ClassParams, grid_2d, work_seconds


def laghos_factory(nranks: int, params: ClassParams):
    px, py = grid_2d(nranks)
    n = params.grid
    # high-order (Q2) face data: ~3 dofs per edge point, 8 bytes each
    row_bytes = max((n // px) * 3 * 8, 8)
    col_bytes = max((n // py) * 3 * 8, 8)

    def program(mpi):
        me = mpi.rank
        x, y = me % px, me // px
        neighbours = []
        if x > 0:
            neighbours.append((me - 1, col_bytes))
        if x < px - 1:
            neighbours.append((me + 1, col_bytes))
        if y > 0:
            neighbours.append((me - px, row_bytes))
        if y < py - 1:
            neighbours.append((me + px, row_bytes))

        def halo(tag, scale=1):
            reqs = []
            for peer, _ in neighbours:
                r = yield from mpi.irecv(source=peer, tag=tag)
                reqs.append(r)
            for peer, nbytes in neighbours:
                s = yield from mpi.isend(dest=peer,
                                         nbytes=max(nbytes // scale, 8),
                                         tag=tag)
                reqs.append(s)
            yield from mpi.waitall(reqs)

        local = (n // px) * (n // py)
        for _ in range(params.iterations):
            # corner-force assembly on the moving mesh
            yield from halo(0)
            yield from mpi.compute(work_seconds(local * 12))
            # CG solve for the velocity mass matrix: each iteration is
            # one sparse mat-vec halo plus two dot-product allreduces
            for _ in range(params.inner):
                yield from halo(1, scale=3)
                yield from mpi.compute(work_seconds(local * 4))
                yield from mpi.allreduce(8)    # alpha = r.r / p.Ap
                yield from mpi.allreduce(8)    # new residual norm
            # CFL time-step control: global minimum over elements
            yield from mpi.allreduce(8)
        # energy conservation check at the end of the run
        yield from mpi.allreduce(16)
        yield from mpi.finalize()

    return program


CLASSES = {
    "S": ClassParams(grid=32, iterations=2, inner=6),
    "W": ClassParams(grid=64, iterations=3, inner=8),
    "A": ClassParams(grid=128, iterations=4, inner=12),
    "B": ClassParams(grid=256, iterations=6, inner=16),
    "C": ClassParams(grid=512, iterations=8, inner=20),
}
