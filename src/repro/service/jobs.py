"""Persistent job queue for the sweep service: journal, dedup, replay.

The service accepts **jobs** — a :class:`~repro.sweep.plan.SweepPlan`,
:class:`~repro.fuzz.campaign.FuzzCampaign`, or
:class:`~repro.scenarios.job.ScenarioJob` submitted over HTTP — and
runs each underlying plan exactly once per content digest.  Two
clients submitting the same digest share one **execution**: both jobs
point at the same execution record and both observe its terminal
state.  The split mirrors the artifact cache's dogpile guarantee one
level up — the cache dedupes *stage artifacts* under a key lock, the
job store dedupes *whole plan executions* under a digest.

Everything is persisted to a JSONL **journal** (``<state>/jobs.jsonl``)
so a crashed or restarted service replays to a consistent queue:

* ``job`` records carry the submission (id, kind, digest, name, and
  the full plan ``spec``, so replay can re-execute without any other
  file);
* ``state`` records carry execution transitions (``running`` /
  ``done`` / ``failed``) for every job id sharing the execution.

A digest can run more than once: a *failed* execution is terminal for
the jobs that observed it, and the next submission of the same digest
creates a fresh one (see :meth:`JobStore.submit`).  Both record types
therefore carry the execution **generation** (``gen``, 0-based per
dedup key), so replay re-creates each generation as its own execution
instead of merging a retry into the failure it is retrying — without
it, the retry would replay as "failed" with the stale error and never
be re-queued, or a completed retry would flip the original failure to
"done".

Replay rules (``tests/service/test_journal.py``):

* jobs whose execution was ``queued`` or ``running`` at crash time are
  re-queued (a half-finished execution reruns from its spec — results
  are deterministic, so the rerun reproduces the lost outcome);
* terminal states are idempotent — duplicated ``done``/``failed``
  records apply cleanly;
* a corrupt *trailing* journal line (the torn write of a crash) is
  truncated with a warning, never a crash; records after a corrupt
  line are discarded with it.

Result payloads live next to the journal under ``<state>/results/``,
keyed by ``<kind>-<digest>`` — content-addressed like everything else,
so a re-submitted digest finds its bytes without re-running.  Writes
are atomic (temp + rename) and strictly precede the terminal journal
record, so a ``done`` in the journal implies the payload exists.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ServiceError

#: job/execution lifecycle states, in order
JOB_STATES = ("queued", "running", "done", "failed")

#: states an execution never leaves
TERMINAL_STATES = ("done", "failed")

#: plan kinds the service executes
JOB_KINDS = ("sweep", "fuzz", "scenario")

#: result payload formats persisted per kind
RESULT_FORMATS = {"sweep": ("json", "jsonl"), "fuzz": ("json",),
                  "scenario": ("json", "jsonl")}


@dataclass
class Execution:
    """One deduplicated plan execution shared by same-digest jobs."""

    key: str                        #: dedup key, ``<kind>:<digest>``
    kind: str                       #: JOB_KINDS member
    digest: str                     #: plan/campaign content digest
    name: str                       #: plan/campaign name
    spec: Dict[str, Any]            #: the plan as plain data (replayable)
    gen: int = 0                    #: generation per key (bumped when a
    #:                                 failed digest is retried fresh)
    state: str = "queued"           #: JOB_STATES member
    error: Optional[str] = None     #: failure description (failed only)
    job_ids: List[str] = field(default_factory=list)
    #: live per-point progress, updated by the runner's callback
    progress: Dict[str, Any] = field(default_factory=dict)
    #: terminal bookkeeping: wall seconds, workers, obs counter snapshot
    execution: Dict[str, Any] = field(default_factory=dict)

    @property
    def terminal(self) -> bool:
        """Whether the execution reached ``done`` or ``failed``."""
        return self.state in TERMINAL_STATES


@dataclass
class Job:
    """One client submission; thin handle onto its shared execution."""

    id: str
    execution: Execution
    deduplicated: bool = False      #: True when the submit joined an
    #:                                 already-known digest

    def status_dict(self) -> Dict[str, Any]:
        """The JSON rendering served by ``GET /jobs/{id}``."""
        ex = self.execution
        out: Dict[str, Any] = {
            "id": self.id,
            "kind": ex.kind,
            "name": ex.name,
            "digest": ex.digest,
            "state": ex.state,
            "deduplicated": self.deduplicated,
            "shared_with": len(ex.job_ids) - 1,
        }
        if ex.error is not None:
            out["error"] = ex.error
        if ex.progress:
            out["progress"] = dict(ex.progress)
        if ex.execution:
            out["execution"] = dict(ex.execution)
        return out


def _execution_key(kind: str, digest: str) -> str:
    """The dedup identity of one plan execution."""
    return f"{kind}:{digest}"


class JobStore:
    """Journal-backed job registry with dedup-by-digest semantics.

    Not thread-safe by itself: the service mutates it only from the
    event-loop thread (worker threads hand results back through the
    loop).  The CLI and tests drive it synchronously.
    """

    def __init__(self, state_dir: str):
        self.state_dir = state_dir
        self.journal_path = os.path.join(state_dir, "jobs.jsonl")
        self.results_dir = os.path.join(state_dir, "results")
        self.jobs: Dict[str, Job] = {}
        self.executions: Dict[str, Execution] = {}
        #: execution keys awaiting a worker, submission order
        self.pending: List[str] = []
        self._seq = 0
        self._journal_fh = None
        #: replay summary of the last :meth:`load` (served by /healthz)
        self.replay: Dict[str, int] = {}

    # -- journal ------------------------------------------------------------
    def _open_journal(self):
        if self._journal_fh is None:
            os.makedirs(self.state_dir, exist_ok=True)
            self._journal_fh = open(self.journal_path, "a")
        return self._journal_fh

    def _append(self, record: Dict[str, Any]) -> None:
        """Append one journal record durably (flush + fsync)."""
        fh = self._open_journal()
        fh.write(json.dumps(record, sort_keys=True) + "\n")
        fh.flush()
        os.fsync(fh.fileno())

    def close(self) -> None:
        """Close the journal file handle (the store stays readable)."""
        if self._journal_fh is not None:
            self._journal_fh.close()
            self._journal_fh = None

    def load(self) -> Dict[str, int]:
        """Replay the journal into memory; returns the replay summary.

        Safe on a missing or empty journal.  A corrupt line truncates
        the journal at that point (a crash can tear at most the last
        line; anything after a torn line is unreachable anyway) with a
        :class:`UserWarning` rather than refusing to start.
        """
        summary = {"jobs": 0, "requeued": 0, "truncated_bytes": 0,
                   "skipped_records": 0}
        records, truncated = self._read_journal()
        summary["truncated_bytes"] = truncated
        for record in records:
            if not self._apply(record):
                summary["skipped_records"] += 1
        summary["jobs"] = len(self.jobs)
        # crash recovery: anything not terminal goes back on the queue
        # (a "running" execution died with the service; its spec is in
        # the journal, so it simply runs again)
        for key, ex in self.executions.items():
            if not ex.terminal:
                if ex.state == "running":
                    ex.state = "queued"
                    summary["requeued"] += 1
                self.pending.append(key)
        self.replay = summary
        return summary

    def _read_journal(self) -> Tuple[List[Dict[str, Any]], int]:
        """Parsed journal records, truncating at the first corrupt line."""
        try:
            with open(self.journal_path, "rb") as fh:
                raw = fh.read()
        except OSError:
            return [], 0
        records: List[Dict[str, Any]] = []
        good = 0
        for line in raw.splitlines(keepends=True):
            try:
                record = json.loads(line)
                if not isinstance(record, dict):
                    raise ValueError("journal record is not an object")
            except ValueError:
                broken = len(raw) - good
                warnings.warn(
                    f"service journal {self.journal_path!r}: corrupt "
                    f"record at byte {good}; truncating {broken} "
                    f"byte(s) (a crash can tear the trailing write)",
                    stacklevel=2)
                with open(self.journal_path, "r+b") as fh:
                    fh.truncate(good)
                return records, broken
            records.append(record)
            good += len(line)
        return records, 0

    def _apply(self, record: Dict[str, Any]) -> bool:
        """Apply one journal record; False when skipped (with warning)."""
        rec = record.get("rec")
        if rec == "job":
            return self._apply_job(record)
        if rec == "state":
            return self._apply_state(record)
        warnings.warn(f"service journal: unknown record type {rec!r} "
                      f"skipped", stacklevel=2)
        return False

    def _apply_job(self, record: Dict[str, Any]) -> bool:
        try:
            job_id = record["id"]
            kind = record["kind"]
            digest = record["digest"]
            spec = record["spec"]
            name = record.get("name", kind)
        except KeyError as exc:
            warnings.warn(f"service journal: job record missing {exc}; "
                          f"skipped", stacklevel=2)
            return False
        if job_id in self.jobs:  # replayed submit: idempotent
            return True
        key = _execution_key(kind, digest)
        gen = record.get("gen")
        ex = self.executions.get(key)
        # mirror submit(): a job record for a *new* generation starts a
        # fresh execution superseding the current one (earlier jobs keep
        # their reference, so a replayed failure stays sticky for them).
        # Journals from before generation tracking carry no "gen"; there
        # a new generation is recognizable exactly as submit() created
        # it — the current execution had already failed.
        fresh = ex is None or (gen != ex.gen if gen is not None
                               else ex.state == "failed")
        if fresh:
            if gen is None:
                gen = 0 if ex is None else ex.gen + 1
            ex = self.executions[key] = Execution(
                key=key, kind=kind, digest=digest, name=name, spec=spec,
                gen=gen)
            dedup = False
        else:
            dedup = True
        ex.job_ids.append(job_id)
        self.jobs[job_id] = Job(id=job_id, execution=ex,
                                deduplicated=dedup)
        # keep fresh ids monotone past everything in the journal
        try:
            self._seq = max(self._seq, int(job_id.split("-")[0][1:]))
        except ValueError:
            pass
        return True

    def _apply_state(self, record: Dict[str, Any]) -> bool:
        key = record.get("key")
        state = record.get("state")
        ex = self.executions.get(key)
        if ex is None or state not in JOB_STATES:
            warnings.warn(
                f"service journal: state record for unknown execution "
                f"{key!r} (state {state!r}) skipped", stacklevel=2)
            return False
        gen = record.get("gen")
        if gen is not None and gen != ex.gen:
            warnings.warn(
                f"service journal: state record for stale generation "
                f"{gen} of {key!r} (current {ex.gen}) skipped",
                stacklevel=2)
            return False
        if ex.terminal and state == ex.state:
            return True  # duplicated terminal record: idempotent
        ex.state = state
        if record.get("error") is not None:
            ex.error = str(record["error"])
        if isinstance(record.get("execution"), dict):
            ex.execution = record["execution"]
        return True

    # -- submission ---------------------------------------------------------
    def submit(self, kind: str, digest: str, name: str,
               spec: Dict[str, Any]) -> Job:
        """Register one submission; returns the (possibly shared) job.

        A digest already known to the store joins its execution
        (``job.deduplicated``) and immediately observes its current —
        possibly terminal — state.  A previously *failed* digest is
        retried with a fresh execution: failure is sticky for the jobs
        that observed it, not for the digest.
        """
        if kind not in JOB_KINDS:
            raise ServiceError(f"unknown job kind {kind!r}; choose from "
                               f"{JOB_KINDS}")
        key = _execution_key(kind, digest)
        ex = self.executions.get(key)
        dedup = ex is not None and ex.state != "failed"
        self._seq += 1
        job_id = f"j{self._seq:06d}-{digest[:8]}"
        if not dedup:
            ex = self.executions[key] = Execution(
                key=key, kind=kind, digest=digest, name=name, spec=spec,
                gen=0 if ex is None else ex.gen + 1)
            self.pending.append(key)
        assert ex is not None
        ex.job_ids.append(job_id)
        job = Job(id=job_id, execution=ex, deduplicated=dedup)
        self.jobs[job_id] = job
        self._append({"rec": "job", "id": job_id, "kind": kind,
                      "digest": digest, "name": name, "spec": spec,
                      "gen": ex.gen})
        return job

    def take_pending(self) -> Optional[Execution]:
        """Pop the oldest queued execution, or None."""
        while self.pending:
            ex = self.executions[self.pending.pop(0)]
            if ex.state == "queued":
                return ex
        return None

    # -- transitions --------------------------------------------------------
    def mark_running(self, ex: Execution) -> None:
        """Record the execution's transition to ``running``."""
        ex.state = "running"
        self._append({"rec": "state", "key": ex.key, "gen": ex.gen,
                      "state": "running"})

    def finish(self, ex: Execution, payloads: Dict[str, str],
               execution_meta: Dict[str, Any]) -> None:
        """Persist result payloads, then record ``done``.

        Payload writes strictly precede the journal record, so replay
        never sees a ``done`` execution without its result bytes.
        """
        for fmt, text in payloads.items():
            self._write_result(ex.kind, ex.digest, fmt, text)
        ex.execution = execution_meta
        ex.state = "done"
        self._append({"rec": "state", "key": ex.key, "gen": ex.gen,
                      "state": "done", "execution": execution_meta})

    def fail(self, ex: Execution, error: str) -> None:
        """Record the execution's terminal failure."""
        ex.state = "failed"
        ex.error = error
        self._append({"rec": "state", "key": ex.key, "gen": ex.gen,
                      "state": "failed", "error": error})

    # -- results ------------------------------------------------------------
    def result_path(self, kind: str, digest: str, fmt: str = "json") -> str:
        """On-disk location of one result payload."""
        return os.path.join(self.results_dir, f"{kind}-{digest}.{fmt}")

    def _write_result(self, kind: str, digest: str, fmt: str,
                      text: str) -> None:
        os.makedirs(self.results_dir, exist_ok=True)
        path = self.result_path(kind, digest, fmt)
        fd, tmp = tempfile.mkstemp(dir=self.results_dir, prefix=".tmp-")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(text)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def read_result(self, job: Job, fmt: str = "json") -> str:
        """The job's result payload text (terminal ``done`` jobs only)."""
        ex = job.execution
        if fmt not in RESULT_FORMATS.get(ex.kind, ()):
            raise ServiceError(
                f"{ex.kind} results have no {fmt!r} format; choose from "
                f"{RESULT_FORMATS[ex.kind]}")
        try:
            with open(self.result_path(ex.kind, ex.digest, fmt)) as fh:
                return fh.read()
        except OSError as exc:
            raise ServiceError(
                f"result payload missing for job {job.id} "
                f"({ex.key}): {exc}") from None

    # -- summaries ----------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        """Job totals by state (the /healthz summary)."""
        out = {state: 0 for state in JOB_STATES}
        for job in self.jobs.values():
            out[job.execution.state] += 1
        return out

    def execution_counts(self) -> Dict[str, int]:
        """Execution totals by state (dedup makes this <= job counts)."""
        out = {state: 0 for state in JOB_STATES}
        for ex in self.executions.values():
            out[ex.state] += 1
        return out
