"""The sweep service: an asyncio HTTP/JSON front-end over the job store.

``repro serve`` turns the one-shot sweep/fuzz CLIs into a long-running
service.  The HTTP layer is a handcrafted ``asyncio`` streams handler —
stdlib only, ``Connection: close`` per request, JSON in and out — small
enough to audit end-to-end (``docs/SERVICE.md`` is the API reference):

========  ======================  ========================================
method    path                    meaning
========  ======================  ========================================
POST      ``/jobs``               submit a SweepPlan, FuzzCampaign, or
                                  ScenarioJob
GET       ``/jobs``               list all known jobs
GET       ``/jobs/{id}``          job status + live per-point progress
GET       ``/jobs/{id}/result``   canonical result bytes (terminal only)
GET       ``/healthz``            liveness + queue/replay/counter summary
========  ======================  ========================================

Execution model: one **worker coroutine** drains the job store's
pending queue; each execution runs in a thread-pool thread (the sweep
engine fans points across its own ``ProcessPoolExecutor`` with
``--workers`` processes, so the service thread is just the driver).
Executions are sequential — the parallelism budget belongs to the
engine, not to concurrent jobs — and every store mutation happens on
the event-loop thread, keeping :class:`~repro.service.jobs.JobStore`
single-threaded.

Observability is two collectors, deliberately separate: the server owns
an :class:`~repro.obs.Instrumentation` used *directly* (never via the
module-global probe) for ``service.*`` counters and spans, while each
execution installs its own scoped collector in the worker thread so
``sweep.*``/``fuzz.*``/``pipeline.*`` probes are captured per job and
snapshotted into the terminal status — no cross-contamination between
the serving path and the executing path.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Any, Dict, Optional, Tuple

from repro import __version__, obs
from repro.errors import ReproError, ServiceError
from repro.service.jobs import JOB_KINDS, Execution, Job, JobStore

#: request body ceiling: plans are small; anything bigger is abuse
MAX_BODY_BYTES = 4 * 1024 * 1024
#: request line + headers ceiling
MAX_HEADER_BYTES = 64 * 1024

#: obs layers whose per-execution counters ride into job status
_EXECUTION_LAYERS = ("sweep", "fuzz", "pipeline")


def parse_submission(text: str,
                     kind_hint: Optional[str] = None) -> Tuple[str, Any]:
    """Parse one submission body into ``(kind, plan)``.

    Two shapes are accepted:

    * a JSON **envelope** ``{"kind": "sweep"|"fuzz"|"scenario",
      "spec": {...}}`` (the explicit form the client CLI sends);
    * a bare plan/campaign/job body (YAML or JSON), whose kind comes
      from ``kind_hint`` (the ``?kind=`` query parameter, default
      sweep).

    Malformed submissions raise :class:`ServiceError` — the server maps
    it to 400, so a bad plan never reaches the queue.
    """
    from repro.fuzz import loads_campaign
    from repro.scenarios import loads_scenario_job
    from repro.sweep import loads_sweep_plan
    kind = kind_hint or "sweep"
    body = text
    try:
        data = json.loads(text)
    except ValueError:
        data = None
    if isinstance(data, dict) and "spec" in data:
        kind = str(data.get("kind", kind))
        body = json.dumps(data["spec"])
    if kind not in JOB_KINDS:
        raise ServiceError(f"unknown job kind {kind!r}; choose from "
                           f"{JOB_KINDS}")
    try:
        if kind == "sweep":
            plan = loads_sweep_plan(body)
            plan.check()
        elif kind == "scenario":
            # a ScenarioJob validates (and compiles its one-point
            # sweep plan) at construction — no separate check()
            plan = loads_scenario_job(body)
        else:
            plan = loads_campaign(body)
            plan.check()
    except ReproError as exc:
        raise ServiceError(f"invalid {kind} submission: {exc}") from None
    return kind, plan


def execute_spec(kind: str, spec: Dict[str, Any], workers: int,
                 cache_dir: str, progress=None) -> Tuple[Dict[str, str],
                                                         Dict[str, Any]]:
    """Run one journaled spec; returns ``(payloads, execution_meta)``.

    This is the whole execution path shared by the async worker and the
    synchronous test/replay drivers: rebuild the plan from its journaled
    dict, run it under a scoped obs collector, and package the canonical
    result payloads (byte-identical to the one-shot CLI's canonical
    output for the same digest) plus the execution metadata — wall
    seconds, engine workers, and the ``sweep.*``/``fuzz.*``/
    ``pipeline.*`` counter snapshot.
    """
    from repro.fuzz import FuzzCampaign, run_campaign
    from repro.scenarios import ScenarioJob
    from repro.sweep import SweepPlan, run_sweep
    inst = obs.Instrumentation()
    t0 = time.perf_counter()
    with obs.instrumented(inst):
        if kind in ("sweep", "scenario"):
            # a scenario job compiles to its one-point sweep plan and
            # runs through the same engine, so its canonical result is
            # byte-identical to `repro scenarios run` on the same job
            plan = (ScenarioJob.from_dict(spec).to_sweep_plan()
                    if kind == "scenario" else SweepPlan.from_dict(spec))
            result = run_sweep(plan, workers,
                               use_cache=True, cache_dir=cache_dir,
                               progress=progress)
            payloads = {"json": result.canonical_json(),
                        "jsonl": result.canonical_jsonl()}
            outcome = {"points": result.counts(),
                       "cache_hits": result.cache_hits,
                       "cache_misses": result.cache_misses}
        else:
            report = run_campaign(FuzzCampaign.from_dict(spec), workers,
                                  cache_dir=cache_dir, progress=progress)
            payloads = {"json": report.canonical_json()}
            outcome = {"cells": len(report.cells),
                       "divergent_cells": len(report.divergent_cells),
                       "deadlock_cells": len(report.deadlock_cells)}
    meta: Dict[str, Any] = {"workers": workers,
                            "seconds": round(time.perf_counter() - t0, 6)}
    meta.update(outcome)
    meta["counters"] = {
        name: value for name, value in sorted(inst.counters.items())
        if obs.layer_of(name) in _EXECUTION_LAYERS}
    return payloads, meta


class _HTTPError(Exception):
    """Internal: unwinds a handler into one JSON error response."""

    def __init__(self, status: int, message: str, **extra: Any):
        super().__init__(message)
        self.status = status
        self.payload = dict(extra, error=message)


class SweepService:
    """The asyncio server: HTTP front-end + worker over a JobStore."""

    def __init__(self, state_dir: str, cache_dir: str = ".repro-cache",
                 workers: int = 1, host: str = "127.0.0.1",
                 port: int = 0):
        self.store = JobStore(state_dir)
        self.cache_dir = cache_dir
        self.workers = workers
        self.host = host
        self.port = port                #: bound port (0 = ephemeral)
        self.inst = obs.Instrumentation()
        self._progress_lock = threading.Lock()
        self._wake: Optional[asyncio.Event] = None
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> None:
        """Replay the journal, bind the socket, start the worker."""
        replay = self.store.load()
        self.inst.count("service.journal_jobs_replayed", replay["jobs"])
        self.inst.count("service.journal_requeued", replay["requeued"])
        self._wake = asyncio.Event()
        if self.store.pending:
            self._wake.set()
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._worker_task = asyncio.ensure_future(self._worker())

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        finally:
            await self.stop()

    async def stop(self) -> None:
        """Close the socket, cancel the worker, close the journal."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        task = getattr(self, "_worker_task", None)
        if task is not None:
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self.store.close()

    # -- the worker ---------------------------------------------------------
    async def _worker(self) -> None:
        """Drain the pending queue, one execution at a time."""
        assert self._wake is not None
        loop = asyncio.get_running_loop()
        while True:
            ex = self.store.take_pending()
            if ex is None:
                self._wake.clear()
                await self._wake.wait()
                continue
            self.store.mark_running(ex)
            self.inst.count("service.executions_started")
            with self.inst.span("service.execution", key=ex.key,
                                plan=ex.name):
                try:
                    payloads, meta = await loop.run_in_executor(
                        None, self._execute, ex)
                except asyncio.CancelledError:
                    raise
                except Exception as exc:
                    # any failure — a ReproError from the engine or a
                    # programming error — fails THIS execution, never
                    # the worker loop
                    self.store.fail(ex, f"{type(exc).__name__}: {exc}")
                    self.inst.count("service.executions_failed")
                else:
                    self.store.finish(ex, payloads, meta)
                    self.inst.count("service.executions_done")

    def _execute(self, ex: Execution):
        """Thread-pool body: run one execution with live progress."""

        def progress(rec: Dict[str, Any]) -> None:
            """Per-point callback from the engine (executor thread)."""
            with self._progress_lock:
                p = dict(ex.progress)
                p["done"] = p.get("done", 0) + 1
                p[rec["status"]] = p.get(rec["status"], 0) + 1
                p["last_index"] = rec["index"]
                ex.progress = p

        return execute_spec(ex.kind, ex.spec, self.workers,
                            self.cache_dir, progress=progress)

    # -- HTTP ---------------------------------------------------------------
    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        """Serve exactly one request on this connection, then close."""
        try:
            try:
                method, path, query, body = await self._read_request(reader)
                self.inst.count("service.requests")
                status, payload, raw = self._route(method, path, query,
                                                   body)
            except _HTTPError as exc:
                self.inst.count("service.request_errors")
                status, payload, raw = exc.status, exc.payload, None
            except (ConnectionError, asyncio.IncompleteReadError):
                raise  # client gone: handled by the outer except
            except Exception as exc:
                # a handler bug or environmental failure (say, the
                # journal's fsync on a full disk) answers 500 instead
                # of silently dropping the connection
                self.inst.count("service.request_errors")
                status, raw = 500, None
                payload = {"error": f"internal error: "
                                    f"{type(exc).__name__}: {exc}"}
            await self._respond(writer, status, payload, raw)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request: nothing to answer
        finally:
            try:
                writer.close()
            except Exception:  # pragma: no cover - double close
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        """Parse one HTTP/1.1 request: (method, path, query, body)."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            raise _HTTPError(431, "request headers too large") from None
        if len(head) > MAX_HEADER_BYTES:
            raise _HTTPError(431, "request headers too large")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3:
            raise _HTTPError(400, f"malformed request line {lines[0]!r}")
        method, target = parts[0].upper(), parts[1]
        path, _, query_text = target.partition("?")
        query: Dict[str, str] = {}
        for pair in query_text.split("&"):
            if pair:
                k, _, v = pair.partition("=")
                query[k] = v
        length = 0
        for line in lines[1:]:
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                    if length < 0:
                        raise ValueError
                except ValueError:
                    raise _HTTPError(400, "bad Content-Length") from None
        if length > MAX_BODY_BYTES:
            raise _HTTPError(413, f"request body over {MAX_BODY_BYTES} "
                                  f"bytes")
        body = (await reader.readexactly(length)).decode("utf-8") \
            if length else ""
        return method, path, query, body

    def _route(self, method: str, path: str, query: Dict[str, str],
               body: str):
        """Dispatch one parsed request; returns (status, payload, raw)."""
        if path == "/healthz" and method == "GET":
            return 200, self._healthz(), None
        if path == "/jobs":
            if method == "POST":
                return self._submit(body, query.get("kind"))
            if method == "GET":
                jobs = [self.store.jobs[jid].status_dict()
                        for jid in sorted(self.store.jobs)]
                return 200, {"jobs": jobs}, None
            raise _HTTPError(405, f"{method} not allowed on {path}")
        if path.startswith("/jobs/") and method == "GET":
            rest = path[len("/jobs/"):]
            job_id, _, tail = rest.partition("/")
            job = self.store.jobs.get(job_id)
            if job is None:
                raise _HTTPError(404, f"no such job {job_id!r}")
            if tail == "":
                return 200, job.status_dict(), None
            if tail == "result":
                return self._result(job, query.get("format", "json"))
            raise _HTTPError(404, f"no such endpoint {path!r}")
        raise _HTTPError(404, f"no such endpoint {path!r}")

    def _healthz(self) -> Dict[str, Any]:
        """The liveness payload: queue depth, replay, counters."""
        return {"status": "ok", "version": __version__,
                "engine_workers": self.workers,
                "jobs": self.store.counts(),
                "executions": self.store.execution_counts(),
                "pending": len(self.store.pending),
                "replay": self.store.replay,
                "counters": {k: v for k, v in
                             sorted(self.inst.counters.items())}}

    def _submit(self, body: str, kind_hint: Optional[str]):
        """POST /jobs: validate, journal, enqueue (or join), answer."""
        if not body.strip():
            raise _HTTPError(400, "empty submission body")
        try:
            kind, plan = parse_submission(body, kind_hint)
        except ServiceError as exc:
            raise _HTTPError(400, str(exc)) from None
        job = self.store.submit(kind, plan.digest(), plan.name,
                                plan.to_dict())
        self.inst.count("service.jobs_submitted")
        if job.deduplicated:
            self.inst.count("service.jobs_deduplicated")
        elif self._wake is not None:
            self._wake.set()
        return 202, job.status_dict(), None

    def _result(self, job: Job, fmt: str):
        """GET /jobs/{id}/result: canonical bytes, terminal jobs only."""
        ex = job.execution
        if ex.state == "failed":
            raise _HTTPError(409, ex.error or "execution failed",
                             state="failed", id=job.id)
        if ex.state != "done":
            raise _HTTPError(409, f"job {job.id} is {ex.state}; result "
                                  f"not available yet",
                             state=ex.state, id=job.id)
        try:
            text = self.store.read_result(job, fmt)
        except ServiceError as exc:
            raise _HTTPError(404 if "format" in str(exc) else 500,
                             str(exc)) from None
        ctype = ("application/x-ndjson" if fmt == "jsonl"
                 else "application/json")
        return 200, None, (text, ctype)

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: Optional[Dict[str, Any]], raw) -> None:
        """Write one response: a JSON payload or raw canonical bytes."""
        if raw is not None:
            text, ctype = raw
        else:
            text = json.dumps(payload, sort_keys=True) + "\n"
            ctype = "application/json"
        data = text.encode("utf-8")
        reason = {200: "OK", 202: "Accepted", 400: "Bad Request",
                  404: "Not Found", 405: "Method Not Allowed",
                  409: "Conflict", 413: "Payload Too Large",
                  431: "Request Header Fields Too Large",
                  500: "Internal Server Error"}.get(status, "Unknown")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(data)}\r\n"
                f"Connection: close\r\n\r\n")
        writer.write(head.encode("latin-1") + data)
        await writer.drain()


class ServiceThread:
    """A :class:`SweepService` running on a background event loop.

    The test suite, the benchmark harness, and anything else that wants
    a live server inside one process uses this: ``start()`` returns once
    the socket is bound (``service.port`` is then real, even for an
    ephemeral port 0), ``stop()`` tears the loop down cleanly.
    """

    def __init__(self, service: SweepService):
        self.service = service
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "ServiceThread":
        """Bind and serve on a daemon thread; returns self when live."""
        started = threading.Event()
        failure: Dict[str, BaseException] = {}

        def run() -> None:
            """Thread body: own event loop, start(), run_forever()."""
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                loop.run_until_complete(self.service.start())
            except BaseException as exc:  # surface bind errors to caller
                failure["error"] = exc
                started.set()
                return
            started.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(self.service.stop())
                loop.close()

        self._thread = threading.Thread(target=run, daemon=True,
                                        name="repro-service")
        self._thread.start()
        started.wait()
        if "error" in failure:
            raise ServiceError(f"service failed to start: "
                               f"{failure['error']}")
        return self

    @property
    def url(self) -> str:
        """The served base URL, e.g. ``http://127.0.0.1:43521``."""
        return f"http://{self.service.host}:{self.service.port}"

    def stop(self) -> None:
        """Stop serving and join the background thread."""
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10)
        self._loop = None
        self._thread = None
