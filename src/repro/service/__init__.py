"""repro.service — sweeps and fuzz campaigns as a long-running service.

The one-shot CLIs (``repro sweep run``, ``repro fuzz run``) become job
types on one substrate: an asyncio HTTP/JSON server (``repro serve``)
with a crash-safe journaled job queue, digest deduplication (two
clients submitting the same plan share one execution), and the shared
sharded artifact cache underneath.

* :class:`JobStore` — the persistent queue: JSONL journal, replay on
  restart, dedup by ``<kind>:<digest>``, atomic result payloads;
* :class:`SweepService` — the asyncio server: ``POST /jobs``,
  ``GET /jobs/{id}``, ``GET /jobs/{id}/result``, ``GET /healthz``;
* :class:`ServiceThread` — an in-process server harness for tests and
  benchmarks;
* :mod:`repro.service.client` — the stdlib HTTP client the
  ``repro jobs`` commands use.

See ``docs/SERVICE.md`` for the API reference, job lifecycle, dedup
semantics, and the cache-sharding/migration story.
"""

from repro.service.jobs import (JOB_KINDS, JOB_STATES, TERMINAL_STATES,
                                Execution, Job, JobStore)
from repro.service.server import (ServiceThread, SweepService,
                                  execute_spec, parse_submission)

__all__ = [
    "Execution",
    "JOB_KINDS",
    "JOB_STATES",
    "Job",
    "JobStore",
    "ServiceThread",
    "SweepService",
    "TERMINAL_STATES",
    "execute_spec",
    "parse_submission",
]
