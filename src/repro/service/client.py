"""A stdlib HTTP client for the sweep service (the ``repro jobs`` CLI).

Thin ``urllib.request`` wrappers over the endpoints in
:mod:`repro.service.server`; every server-reported error surfaces as a
:class:`~repro.errors.ServiceError` carrying the server's message, so
callers never parse raw HTTP failures.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional, Tuple

from repro.errors import ServiceError
from repro.service.jobs import TERMINAL_STATES

#: per-request socket timeout (seconds); executions run server-side, so
#: every request here is cheap regardless of job size
REQUEST_TIMEOUT = 30.0


def _request(base_url: str, method: str, path: str,
             body: Optional[str] = None,
             timeout: float = REQUEST_TIMEOUT) -> Tuple[int, str]:
    """One HTTP round-trip; returns ``(status, body_text)``.

    4xx/5xx responses are returned, not raised — the caller decides
    which statuses are errors (409 on ``/result`` is ordinary polling).
    Transport failures (refused, reset, timeout) raise
    :class:`ServiceError`.
    """
    url = base_url.rstrip("/") + path
    data = body.encode("utf-8") if body is not None else None
    req = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        req.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, resp.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode("utf-8")
    except (urllib.error.URLError, OSError) as exc:
        raise ServiceError(f"cannot reach service at {base_url!r}: "
                           f"{exc}") from None


def _json_or_raise(status: int, text: str, context: str) -> Dict[str, Any]:
    """Parse a JSON payload; raise ServiceError on error statuses."""
    try:
        payload = json.loads(text)
    except ValueError:
        payload = {"error": text.strip() or f"HTTP {status}"}
    if status >= 400:
        raise ServiceError(f"{context}: {payload.get('error', text)} "
                           f"(HTTP {status})")
    return payload


def submit(base_url: str, spec_text: str,
           kind: str = "sweep") -> Dict[str, Any]:
    """POST /jobs: submit plan/campaign text; returns the job status."""
    envelope = None
    try:
        data = json.loads(spec_text)
    except ValueError:
        data = None
    if isinstance(data, dict):
        envelope = json.dumps({"kind": kind, "spec": data})
    if envelope is not None:
        status, text = _request(base_url, "POST", "/jobs", envelope)
    else:  # YAML body: kind travels in the query string
        status, text = _request(base_url, "POST", f"/jobs?kind={kind}",
                                spec_text)
    return _json_or_raise(status, text, "submit failed")


def status(base_url: str, job_id: str) -> Dict[str, Any]:
    """GET /jobs/{id}: the job's current status dict."""
    code, text = _request(base_url, "GET", f"/jobs/{job_id}")
    return _json_or_raise(code, text, f"status of {job_id} failed")


def result(base_url: str, job_id: str, fmt: str = "json") -> str:
    """GET /jobs/{id}/result: the canonical result text (terminal)."""
    code, text = _request(base_url, "GET",
                          f"/jobs/{job_id}/result?format={fmt}")
    if code != 200:
        _json_or_raise(code, text, f"result of {job_id} failed")
    return text


def healthz(base_url: str) -> Dict[str, Any]:
    """GET /healthz: the service liveness/summary payload."""
    code, text = _request(base_url, "GET", "/healthz")
    return _json_or_raise(code, text, "healthz failed")


def wait(base_url: str, job_id: str, timeout: float = 300.0,
         poll: float = 0.15) -> Dict[str, Any]:
    """Poll until the job reaches a terminal state; returns its status.

    Raises :class:`ServiceError` when ``timeout`` (wall seconds)
    elapses first — the job keeps running server-side either way.
    """
    deadline = time.monotonic() + timeout
    while True:
        st = status(base_url, job_id)
        if st.get("state") in TERMINAL_STATES:
            return st
        if time.monotonic() >= deadline:
            raise ServiceError(
                f"job {job_id} still {st.get('state')!r} after "
                f"{timeout:.0f}s")
        time.sleep(poll)
