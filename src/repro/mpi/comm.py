"""Communicators for the simulated MPI layer.

A communicator is an ordered subset of world ranks; position in the order
is the *communicator rank*.  The paper's §4.2 points out that trace events
recorded against a sub-communicator must eventually be re-expressed in
"absolute" MPI_COMM_WORLD ranks for the generated benchmark to be readable;
this class provides both directions of that translation.

Communicator identity is *interned* per world: every rank that derives the
same logical communicator (same split instance, same color) receives an
object with the same integer ``id``, which is what the engine uses to keep
collective and point-to-point traffic on different communicators separate.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import MPIUsageError


class Communicator:
    __slots__ = ("id", "world_ranks", "_index")

    def __init__(self, cid: int, world_ranks: Tuple[int, ...]):
        if len(set(world_ranks)) != len(world_ranks):
            raise MPIUsageError("duplicate ranks in communicator")
        self.id = cid
        self.world_ranks = tuple(world_ranks)
        self._index = {w: i for i, w in enumerate(self.world_ranks)}

    @property
    def size(self) -> int:
        return len(self.world_ranks)

    def contains_world(self, world_rank: int) -> bool:
        return world_rank in self._index

    def rank_of_world(self, world_rank: int) -> int:
        """Communicator rank of a world rank (the inverse of to_world)."""
        try:
            return self._index[world_rank]
        except KeyError:
            raise MPIUsageError(
                f"world rank {world_rank} is not in communicator {self.id}"
            ) from None

    def to_world(self, comm_rank: int) -> int:
        """Absolute world rank of a communicator rank."""
        if not 0 <= comm_rank < self.size:
            raise MPIUsageError(
                f"rank {comm_rank} out of range for communicator {self.id} "
                f"of size {self.size}")
        return self.world_ranks[comm_rank]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Communicator):
            return NotImplemented
        return self.id == other.id and self.world_ranks == other.world_ranks

    def __hash__(self) -> int:
        return hash((self.id, self.world_ranks))

    def __repr__(self) -> str:
        return f"Communicator(id={self.id}, size={self.size})"


class CommRegistry:
    """World-wide interning table for communicators.

    Keys identify a *logical* creation event — e.g. ``("split", parent_id,
    instance, color)`` — so that every participating rank resolves to the
    identical :class:`Communicator` object.
    """

    def __init__(self, world_size: int):
        self.world_size = world_size
        self.comm_world = Communicator(0, tuple(range(world_size)))
        self._next_id = 1
        self._by_key: Dict[tuple, Communicator] = {}
        self._by_id: Dict[int, Communicator] = {0: self.comm_world}

    def intern(self, key: tuple, world_ranks: Tuple[int, ...]) -> Communicator:
        comm = self._by_key.get(key)
        if comm is None:
            comm = Communicator(self._next_id, world_ranks)
            self._next_id += 1
            self._by_key[key] = comm
            self._by_id[comm.id] = comm
        elif comm.world_ranks != tuple(world_ranks):
            raise MPIUsageError(
                f"communicator key {key} re-interned with different ranks")
        return comm

    def by_id(self, cid: int) -> Optional[Communicator]:
        return self._by_id.get(cid)

    def all_comms(self):
        return list(self._by_id.values())
