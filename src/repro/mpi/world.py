"""SPMD program launcher for the simulated MPI layer."""

from __future__ import annotations

import inspect
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import MPIUsageError, SimulationError
from repro.mpi.api import MPIProcess
from repro.mpi.comm import CommRegistry
from repro.mpi.hooks import MPIHook
from repro.sim.engine import Engine
from repro.sim.network import LogGPModel, NetworkModel


class World:
    """Shared state of one simulated MPI job: the engine, the communicator
    registry, the hook list, and the rendezvous area for comm_split data."""

    def __init__(self, nranks: int, model: NetworkModel,
                 hooks: Optional[Sequence[MPIHook]] = None,
                 max_steps: Optional[int] = None, faults=None,
                 profile: bool = False, schedule_policy=None,
                 schedule_seed: Optional[int] = None,
                 queue_discipline=None, queue_params=None):
        self.engine = Engine(nranks, model, max_steps=max_steps,
                             faults=faults, profile=profile,
                             schedule_policy=schedule_policy,
                             schedule_seed=schedule_seed,
                             queue_discipline=queue_discipline,
                             queue_params=queue_params)
        self.registry = CommRegistry(nranks)
        self.hooks: List[MPIHook] = list(hooks or [])
        self.split_data: Dict[tuple, Dict[int, tuple]] = {}

    @property
    def size(self) -> int:
        return self.registry.comm_world.size


class SpmdResult:
    """Outcome of a simulated SPMD run."""

    def __init__(self, world: World, total_time: float):
        self.world = world
        self.total_time = total_time
        self.per_rank_times = [world.engine.now(r) for r in range(world.size)]
        self.messages_sent = world.engine.messages_sent
        self.bytes_sent = world.engine.bytes_sent
        self.crashed_ranks = tuple(world.engine.crashed_ranks)
        self.starved_ranks = tuple(world.engine.starved_ranks)
        #: per-link contention accounting (routed fabrics only; {} flat)
        self.link_stats = world.engine.link_stats
        #: FaultReport when the run was driven by a fault injector
        self.fault_report = None
        if world.engine.faults is not None:
            from repro.faults.report import build_fault_report
            self.fault_report = build_fault_report(world.engine,
                                                   world.engine.faults)

    @property
    def degraded(self) -> bool:
        """True when at least one rank crashed or starved."""
        return bool(self.crashed_ranks or self.starved_ranks)

    def __repr__(self) -> str:
        tail = ""
        if self.degraded:
            tail = (f", crashed={list(self.crashed_ranks)}, "
                    f"starved={list(self.starved_ranks)}")
        return (f"SpmdResult(time={self.total_time:.6g}s, "
                f"messages={self.messages_sent}{tail})")


def _wrap(program: Callable, mpi: MPIProcess):
    """Run the user program and enforce that it finalized."""
    gen = program(mpi)
    if not inspect.isgenerator(gen):
        raise MPIUsageError(
            "an SPMD program must be a generator function (use 'yield from' "
            "on the mpi methods)")
    yield from gen
    if not mpi._finalized:
        raise MPIUsageError(
            f"rank {mpi.rank} returned without calling mpi.finalize()")


def run_spmd(program: Callable, nranks: int,
             model: Optional[NetworkModel] = None,
             hooks: Optional[Sequence[MPIHook]] = None,
             max_steps: Optional[int] = None,
             faults=None, profile: bool = False,
             schedule_policy=None,
             schedule_seed: Optional[int] = None,
             queue_discipline=None, queue_params=None) -> SpmdResult:
    """Execute ``program`` on ``nranks`` simulated ranks.

    ``program(mpi)`` must be a generator function taking an
    :class:`MPIProcess` and must end with ``yield from mpi.finalize()``.
    Returns an :class:`SpmdResult`; hooks observe every MPI event and are
    told when the run ends.  ``faults`` (a
    :class:`~repro.faults.FaultInjector`) subjects the run to an injected
    fault plan; when the faulted simulation dies (deadlock/livelock) the
    raised :class:`SimulationError` carries a ``partial`` attribute with
    the :class:`SpmdResult` of everything that executed before the hang,
    and hooks still observe the end of the run — that is what lets the
    pipeline salvage a trace prefix and fault report.
    ``schedule_policy``/``schedule_seed`` pick the engine's tie-break
    policy (default canonical; see :mod:`repro.sim.policy`);
    ``queue_discipline``/``queue_params`` pick the routed fabric's
    per-link queue (default FIFO; see :mod:`repro.sim.queueing`).
    """
    world = World(nranks, model or LogGPModel(), hooks=hooks,
                  max_steps=max_steps, faults=faults, profile=profile,
                  schedule_policy=schedule_policy,
                  schedule_seed=schedule_seed,
                  queue_discipline=queue_discipline,
                  queue_params=queue_params)
    gens = [_wrap(program, MPIProcess(world, r)) for r in range(nranks)]
    try:
        total = world.engine.run(gens)
    except SimulationError as exc:
        for hook in world.hooks:
            hook.on_run_end(world)
        exc.partial = SpmdResult(world, world.engine.total_time)
        raise
    for hook in world.hooks:
        hook.on_run_end(world)
    return SpmdResult(world, total)
