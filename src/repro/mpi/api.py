"""The simulated MPI API used by application programs.

Applications are SPMD generator functions receiving one :class:`MPIProcess`
per rank and delegating to its methods with ``yield from``::

    def program(mpi):
        right = (mpi.rank + 1) % mpi.size
        for _ in range(100):
            rreq = yield from mpi.irecv(source=ANY_SOURCE)
            yield from mpi.send(dest=right, nbytes=1024)
            yield from mpi.wait(rreq)
            yield from mpi.compute(5e-6)
        yield from mpi.finalize()

Every method interposes like a PMPI wrapper: it timestamps the operation in
virtual time and emits an :class:`~repro.mpi.hooks.MPIEvent` to all hooks
(tracer, profiler, ...).  Peers and roots are expressed in communicator
ranks, as in real MPI.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import MPIUsageError
from repro.mpi.comm import Communicator
from repro.mpi.hooks import MPIEvent
from repro.sim.ops import (ANY_SOURCE, ANY_TAG, Collective, Compute,
                           PostRecv, PostSend, Test, WaitAll, WaitAny)
from repro.sim.requests import Request, Status
from repro.util.callsite import Callsite, capture_callsite

__all__ = ["ANY_SOURCE", "ANY_TAG", "MPIProcess"]


class MPIProcess:
    """Per-rank MPI endpoint bound to a :class:`~repro.mpi.world.World`."""

    def __init__(self, world, rank: int):
        self.world = world
        self.rank = rank
        self._outstanding: List[Request] = []
        self._req_comm = {}
        self._split_seq = {}
        self._finalized = False
        #: explicit callsite override; the coNCePTuaL compiler sets this so
        #: generated programs have AST-path signatures instead of stack ones
        self.callsite_override: Optional[Callsite] = None

    # -- introspection ----------------------------------------------------
    @property
    def comm_world(self) -> Communicator:
        return self.world.registry.comm_world

    @property
    def size(self) -> int:
        return self.comm_world.size

    def now(self) -> float:
        """Current virtual time on this rank (MPI_Wtime analogue)."""
        return self.world.engine.now(self.rank)

    # -- internals ----------------------------------------------------------
    def _comm(self, comm: Optional[Communicator]) -> Communicator:
        if comm is None:
            return self.comm_world
        return comm

    def _callsite(self) -> Callsite:
        if self.callsite_override is not None:
            return self.callsite_override
        return capture_callsite(skip=2)

    def _emit(self, op: str, comm: Communicator, t_start: float,
              callsite: Callsite, **kw) -> None:
        event = MPIEvent(rank=self.rank, op=op, comm=comm, t_start=t_start,
                         t_end=self.now(), callsite=callsite, **kw)
        for hook in self.world.hooks:
            hook.on_event(event)

    def _convert_status(self, st: Status, comm: Communicator) -> Status:
        """Engine statuses carry world ranks; applications see comm ranks."""
        if st is None or st.source is None:
            return st
        return Status(comm.rank_of_world(st.source), st.tag, st.nbytes)

    # -- point-to-point -------------------------------------------------------
    def send(self, dest: int, nbytes: int, tag: int = 0,
             comm: Optional[Communicator] = None):
        """Blocking standard-mode send (MPI_Send)."""
        comm = self._comm(comm)
        cs = self._callsite()
        t0 = self.now()
        req = yield PostSend(comm.to_world(dest), nbytes, tag, comm.id)
        yield WaitAll([req])
        self._emit("Send", comm, t0, cs, peer=dest, tag=tag, nbytes=nbytes)

    def isend(self, dest: int, nbytes: int, tag: int = 0,
              comm: Optional[Communicator] = None):
        """Nonblocking send (MPI_Isend); complete with wait/waitall."""
        comm = self._comm(comm)
        cs = self._callsite()
        t0 = self.now()
        req = yield PostSend(comm.to_world(dest), nbytes, tag, comm.id)
        self._outstanding.append(req)
        self._req_comm[id(req)] = comm
        self._emit("Isend", comm, t0, cs, peer=dest, tag=tag, nbytes=nbytes)
        return req

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             comm: Optional[Communicator] = None):
        """Blocking receive (MPI_Recv); returns the Status with the matched
        (communicator-rank) source — how applications observe wildcards."""
        comm = self._comm(comm)
        cs = self._callsite()
        t0 = self.now()
        wsrc = source if source == ANY_SOURCE else comm.to_world(source)
        req = yield PostRecv(wsrc, tag, comm.id)
        (st,) = yield WaitAll([req])
        self._emit("Recv", comm, t0, cs, peer=source, tag=tag,
                   nbytes=st.nbytes, matched_source=st.source)
        return self._convert_status(st, comm)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
              comm: Optional[Communicator] = None):
        """Nonblocking receive (MPI_Irecv); complete with wait/waitall."""
        comm = self._comm(comm)
        cs = self._callsite()
        t0 = self.now()
        wsrc = source if source == ANY_SOURCE else comm.to_world(source)
        req = yield PostRecv(wsrc, tag, comm.id)
        self._outstanding.append(req)
        self._req_comm[id(req)] = comm
        self._emit("Irecv", comm, t0, cs, peer=source, tag=tag, nbytes=0)
        return req

    # -- completion -------------------------------------------------------------
    def _offsets_of(self, requests: Sequence[Request]) -> Tuple[int, ...]:
        offsets = []
        for req in requests:
            try:
                offsets.append(self._outstanding.index(req))
            except ValueError:
                raise MPIUsageError(
                    "waiting on a request that is not outstanding") from None
        return tuple(sorted(offsets))

    def _retire(self, requests: Sequence[Request]) -> None:
        for req in requests:
            self._outstanding.remove(req)

    def wait(self, request: Request):
        """MPI_Wait: complete one outstanding nonblocking operation."""
        cs = self._callsite()
        t0 = self.now()
        offsets = self._offsets_of([request])
        (st,) = yield WaitAll([request])
        self._retire([request])
        comm = self._req_comm.pop(id(request))
        self._emit("Wait", comm, t0, cs, wait_offsets=offsets,
                   nbytes=st.nbytes if request.kind == "recv" else 0,
                   matched_source=st.source if request.kind == "recv" else None)
        return self._convert_status(st, comm) if request.kind == "recv" else None

    def waitall(self, requests: Sequence[Request]):
        """MPI_Waitall: complete a set of outstanding operations."""
        cs = self._callsite()
        t0 = self.now()
        requests = list(requests)
        offsets = self._offsets_of(requests)
        statuses = yield WaitAll(requests)
        self._retire(requests)
        comms = [self._req_comm.pop(id(r)) for r in requests]
        recv_bytes = sum(st.nbytes for r, st in zip(requests, statuses)
                         if r.kind == "recv")
        self._emit("Waitall", self.comm_world, t0, cs, wait_offsets=offsets,
                   nbytes=recv_bytes)
        return [self._convert_status(st, c) if r.kind == "recv" else None
                for r, st, c in zip(requests, statuses, comms)]

    def waitany(self, requests: Sequence[Request]):
        """MPI_Waitany: block until (at least) one of the outstanding
        operations completes; retires exactly that one.  Returns
        ``(index, status)`` — the index into ``requests`` of the completed
        operation, and its status (None for sends).

        The traced event's ``wait_offsets`` names only the *completed*
        request, so a replay retires the same operation the original run
        did (the simulator is deterministic, so the same one completes)."""
        cs = self._callsite()
        t0 = self.now()
        requests = list(requests)
        self._offsets_of(requests)  # validate up front
        idx, st = yield WaitAny(requests)
        req = requests[idx]
        offsets = self._offsets_of([req])
        self._retire([req])
        comm = self._req_comm.pop(id(req))
        self._emit("Waitany", comm, t0, cs, wait_offsets=offsets,
                   nbytes=st.nbytes if req.kind == "recv" else 0,
                   matched_source=st.source if req.kind == "recv" else None)
        return idx, (self._convert_status(st, comm)
                     if req.kind == "recv" else None)

    def waitsome(self, requests: Sequence[Request]):
        """MPI_Waitsome: block until at least one outstanding operation
        completes, then retire *every* operation already complete at that
        virtual time.  Returns ``(indices, statuses)`` sorted by index.

        As with :meth:`waitany`, the traced ``wait_offsets`` lists the
        completed requests only."""
        cs = self._callsite()
        t0 = self.now()
        requests = list(requests)
        self._offsets_of(requests)  # validate up front
        idx, st = yield WaitAny(requests)
        done = [(idx, st)]
        for i, req in enumerate(requests):
            if i == idx:
                continue
            flag, st2 = yield Test(req)
            if flag:
                done.append((i, st2))
        done.sort(key=lambda pair: pair[0])
        reqs = [requests[i] for i, _ in done]
        offsets = self._offsets_of(reqs)
        self._retire(reqs)
        comms = [self._req_comm.pop(id(r)) for r in reqs]
        recv_bytes = sum(s.nbytes for (_, s), r in zip(done, reqs)
                         if r.kind == "recv")
        self._emit("Waitsome", self.comm_world, t0, cs,
                   wait_offsets=offsets, nbytes=recv_bytes)
        statuses = [self._convert_status(s, c) if r.kind == "recv" else None
                    for (_, s), r, c in zip(done, reqs, comms)]
        return [i for i, _ in done], statuses

    def test(self, request: Request):
        """MPI_Test: nonblocking completion probe.  Does not emit a trace
        event (like ScalaTrace, we only record completed communication)."""
        flag, st = yield Test(request)
        if flag:
            comm = self._req_comm.pop(id(request))
            self._outstanding.remove(request)
            return True, (self._convert_status(st, comm)
                          if request.kind == "recv" else None)
        return False, None

    # -- collectives --------------------------------------------------------------
    def _collective(self, op: str, key: str, comm: Communicator,
                    cost_bytes: int, **event_kw):
        cs = self._callsite()
        t0 = self.now()
        yield Collective(comm.world_ranks, key, nbytes=cost_bytes,
                         comm_id=comm.id)
        self._emit(op, comm, t0, cs, **event_kw)

    def barrier(self, comm: Optional[Communicator] = None):
        comm = self._comm(comm)
        yield from self._collective("Barrier", "barrier", comm, 0, nbytes=0)

    def bcast(self, nbytes: int, root: int = 0,
              comm: Optional[Communicator] = None):
        comm = self._comm(comm)
        yield from self._collective("Bcast", "bcast", comm, nbytes,
                                    nbytes=nbytes, root=root)

    def reduce(self, nbytes: int, root: int = 0,
               comm: Optional[Communicator] = None):
        comm = self._comm(comm)
        yield from self._collective("Reduce", "reduce", comm, nbytes,
                                    nbytes=nbytes, root=root)

    def allreduce(self, nbytes: int, comm: Optional[Communicator] = None):
        comm = self._comm(comm)
        yield from self._collective("Allreduce", "allreduce", comm, nbytes,
                                    nbytes=nbytes)

    def gather(self, nbytes: int, root: int = 0,
               comm: Optional[Communicator] = None):
        comm = self._comm(comm)
        yield from self._collective("Gather", "gather", comm, nbytes,
                                    nbytes=nbytes, root=root)

    def gatherv(self, nbytes: int, root: int = 0,
                comm: Optional[Communicator] = None):
        """Vector gather: ``nbytes`` is *this rank's* contribution."""
        comm = self._comm(comm)
        yield from self._collective("Gatherv", "gather", comm, nbytes,
                                    nbytes=nbytes, root=root)

    def scatter(self, nbytes: int, root: int = 0,
                comm: Optional[Communicator] = None):
        comm = self._comm(comm)
        yield from self._collective("Scatter", "scatter", comm, nbytes,
                                    nbytes=nbytes, root=root)

    def scatterv(self, nbytes: int, root: int = 0,
                 comm: Optional[Communicator] = None):
        """Vector scatter: ``nbytes`` is *this rank's* portion."""
        comm = self._comm(comm)
        yield from self._collective("Scatterv", "scatter", comm, nbytes,
                                    nbytes=nbytes, root=root)

    def allgather(self, nbytes: int, comm: Optional[Communicator] = None):
        comm = self._comm(comm)
        yield from self._collective("Allgather", "allgather", comm, nbytes,
                                    nbytes=nbytes)

    def allgatherv(self, nbytes: int, comm: Optional[Communicator] = None):
        comm = self._comm(comm)
        yield from self._collective("Allgatherv", "allgather", comm, nbytes,
                                    nbytes=nbytes)

    def alltoall(self, nbytes: int, comm: Optional[Communicator] = None):
        """``nbytes`` is the per-destination payload."""
        comm = self._comm(comm)
        yield from self._collective("Alltoall", "alltoall", comm, nbytes,
                                    nbytes=nbytes)

    def alltoallv(self, nbytes_list: Sequence[int],
                  comm: Optional[Communicator] = None):
        """Vector all-to-all: one payload size per destination rank."""
        comm = self._comm(comm)
        nbytes_list = tuple(int(n) for n in nbytes_list)
        if len(nbytes_list) != comm.size:
            raise MPIUsageError(
                f"alltoallv needs {comm.size} sizes, got {len(nbytes_list)}")
        avg = sum(nbytes_list) // max(len(nbytes_list), 1)
        yield from self._collective("Alltoallv", "alltoall", comm, avg,
                                    nbytes=nbytes_list)

    def reduce_scatter(self, nbytes_list: Sequence[int],
                       comm: Optional[Communicator] = None):
        """``nbytes_list[i]`` is the result size delivered to comm rank i."""
        comm = self._comm(comm)
        nbytes_list = tuple(int(n) for n in nbytes_list)
        if len(nbytes_list) != comm.size:
            raise MPIUsageError(
                f"reduce_scatter needs {comm.size} sizes, "
                f"got {len(nbytes_list)}")
        avg = sum(nbytes_list) // max(len(nbytes_list), 1)
        yield from self._collective("Reduce_scatter", "reduce_scatter", comm,
                                    avg, nbytes=nbytes_list)

    # -- communicator management -----------------------------------------------
    def group_comm(self, world_ranks) -> Communicator:
        """Intern a communicator for an explicit world-rank group *without*
        any communication or trace event.

        This models coNCePTuaL's implicit sub-communicator creation (§3.2:
        "MPI subcommunicator creation ... handled implicitly"): compiled
        benchmarks know their collective groups statically, so the setup
        happens outside the measured/traced region.
        """
        ranks = tuple(sorted(int(r) for r in world_ranks))
        if ranks == self.comm_world.world_ranks:
            return self.comm_world
        return self.world.registry.intern(("group", ranks), ranks)

    def comm_split(self, comm: Optional[Communicator], color: Optional[int],
                   key: int = 0):
        """MPI_Comm_split: returns this rank's sub-communicator, or None
        when ``color`` is None (MPI_UNDEFINED)."""
        comm = self._comm(comm)
        seq = self._split_seq.get(("split", comm.id), 0)
        self._split_seq[("split", comm.id)] = seq + 1
        slot = self.world.split_data.setdefault((comm.id, seq), {})
        slot[self.rank] = (color, key)
        cs = self._callsite()
        t0 = self.now()
        yield Collective(comm.world_ranks, "allgather", nbytes=8,
                         comm_id=comm.id)
        color_code = -1 if color is None else color
        self._emit("Comm_split", comm, t0, cs, nbytes=(color_code, key))
        if color is None:
            return None
        members = sorted((k, w) for w, (c, k) in slot.items() if c == color)
        ranks = tuple(w for _, w in members)
        return self.world.registry.intern(("split", comm.id, seq, color),
                                          ranks)

    def comm_dup(self, comm: Optional[Communicator] = None):
        """MPI_Comm_dup: a new communicator with identical membership."""
        comm = self._comm(comm)
        seq = self._split_seq.get(("dup", comm.id), 0)
        self._split_seq[("dup", comm.id)] = seq + 1
        cs = self._callsite()
        t0 = self.now()
        yield Collective(comm.world_ranks, "barrier", comm_id=comm.id)
        self._emit("Comm_dup", comm, t0, cs, nbytes=0)
        return self.world.registry.intern(("dup", comm.id, seq),
                                          comm.world_ranks)

    # -- compute & teardown ---------------------------------------------------------
    def compute(self, seconds: float):
        """Advance this rank's clock: the simulated computation phase
        between MPI calls (what ScalaTrace measures as delta time)."""
        yield Compute(seconds)

    def finalize(self):
        """MPI_Finalize: a world-wide collective (treated exactly as the
        paper's algorithms treat it, §4.3/§4.4)."""
        if self._finalized:
            raise MPIUsageError(f"rank {self.rank} finalized twice")
        if self._outstanding:
            raise MPIUsageError(
                f"rank {self.rank} finalized with "
                f"{len(self._outstanding)} outstanding requests")
        comm = self.comm_world
        yield from self._collective("Finalize", "finalize", comm, 0, nbytes=0)
        self._finalized = True
