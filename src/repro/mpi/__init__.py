"""Simulated MPI layer: per-rank API, communicators, PMPI-style hooks,
and the SPMD launcher."""

from repro.mpi.api import ANY_SOURCE, ANY_TAG, MPIProcess
from repro.mpi.comm import Communicator, CommRegistry
from repro.mpi.hooks import (COLLECTIVE_OPS, MPIEvent, MPIHook, P2P_OPS,
                             RecordingHook, WAIT_OPS)
from repro.mpi.world import SpmdResult, World, run_spmd

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "COLLECTIVE_OPS",
    "CommRegistry",
    "Communicator",
    "MPIEvent",
    "MPIHook",
    "MPIProcess",
    "P2P_OPS",
    "RecordingHook",
    "SpmdResult",
    "WAIT_OPS",
    "World",
    "run_spmd",
]
