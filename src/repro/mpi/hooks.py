"""PMPI-style interposition for the simulated MPI layer.

Every MPI-level call made by an application emits one :class:`MPIEvent` to
each registered :class:`MPIHook` — the simulated analogue of linking an
application against a PMPI wrapper library.  ScalaTrace's tracer and the
mpiP-style profiler are both implemented as hooks, exactly mirroring the
paper's tooling (§5.1–5.2).

Events are delivered per rank in that rank's program order, with virtual
timestamps taken before and after the operation, so a hook can recover
computation time as the gap between consecutive events (§3.1).
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

from repro.mpi.comm import Communicator
from repro.util.callsite import Callsite

#: Events whose ``op`` is in this set participate in collective semantics.
COLLECTIVE_OPS = frozenset({
    "Barrier", "Bcast", "Reduce", "Allreduce", "Gather", "Gatherv",
    "Scatter", "Scatterv", "Allgather", "Allgatherv", "Alltoall",
    "Alltoallv", "Reduce_scatter", "Comm_split", "Comm_dup", "Finalize",
})

#: Point-to-point events.
P2P_OPS = frozenset({"Send", "Isend", "Recv", "Irecv"})

#: Completion events.  Every member folds to one coNCePTuaL AWAITS
#: statement in the generator, so tools that normalize traces (compare,
#: replay) must treat the whole family as one op.
WAIT_OPS = frozenset({"Wait", "Waitall", "Waitany", "Waitsome"})


class MPIEvent:
    """One interposed MPI call.

    ``peer`` and ``root`` are expressed in *communicator* ranks, as the
    application wrote them; ``matched_source`` (receives only) reports the
    world rank that actually satisfied the receive, which diagnostic tools
    may use but which ScalaTrace deliberately does not record (§4.4).
    ``nbytes`` is a scalar for uniform operations and a tuple for the
    vector collectives.  ``wait_offsets`` lists, for wait operations, the
    indices (0 = oldest) of the outstanding nonblocking requests being
    completed — enough to replay request linkage losslessly.
    """

    __slots__ = ("rank", "op", "comm", "peer", "tag", "nbytes", "root",
                 "wait_offsets", "t_start", "t_end", "callsite",
                 "matched_source")

    def __init__(self, rank: int, op: str, comm: Communicator,
                 peer: Optional[int] = None, tag: int = 0,
                 nbytes: Union[int, Tuple[int, ...]] = 0,
                 root: Optional[int] = None,
                 wait_offsets: Optional[Tuple[int, ...]] = None,
                 t_start: float = 0.0, t_end: float = 0.0,
                 callsite: Optional[Callsite] = None,
                 matched_source: Optional[int] = None):
        self.rank = rank
        self.op = op
        self.comm = comm
        self.peer = peer
        self.tag = tag
        self.nbytes = nbytes
        self.root = root
        self.wait_offsets = wait_offsets
        self.t_start = t_start
        self.t_end = t_end
        self.callsite = callsite
        self.matched_source = matched_source

    @property
    def is_collective(self) -> bool:
        return self.op in COLLECTIVE_OPS

    @property
    def total_bytes(self) -> int:
        if isinstance(self.nbytes, tuple):
            return sum(self.nbytes)
        return self.nbytes

    def __repr__(self) -> str:
        bits = [f"rank={self.rank}", f"op={self.op}"]
        if self.peer is not None:
            bits.append(f"peer={self.peer}")
        if self.root is not None:
            bits.append(f"root={self.root}")
        bits.append(f"nbytes={self.nbytes}")
        return f"MPIEvent({', '.join(bits)})"


class MPIHook:
    """Base class for interposition hooks; override what you need."""

    def on_event(self, event: MPIEvent) -> None:
        """Called after each MPI operation completes on a rank."""

    def on_run_end(self, world) -> None:
        """Called once after every rank has finished (post-MPI_Finalize)."""


class RecordingHook(MPIHook):
    """Trivial hook that appends every event to a list; used by tests."""

    def __init__(self):
        self.events = []
        self.run_ended = False

    def on_event(self, event: MPIEvent) -> None:
        self.events.append(event)

    def on_run_end(self, world) -> None:
        self.run_ended = True

    def by_rank(self, rank: int):
        return [e for e in self.events if e.rank == rank]
