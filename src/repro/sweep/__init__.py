"""repro.sweep — deterministic parallel sweeps for batched what-if studies.

The paper's §5.4 headline use case is re-running one generated
communication specification across a grid of what-if configurations
(compute acceleration, network parameters, rank counts, fault plans).
This package makes that a first-class, parallel operation:

* :class:`SweepPlan` — a digest-keyed YAML/JSON description of the grid
  (shared ``base`` config + cartesian ``axes`` + explicit ``points``);
* :func:`run_sweep` — fans the points across worker processes, sharing
  the content-addressed artifact cache (cross-process locked) so the
  expensive trace/generate work happens once, and merges the results
  order-independently;
* :class:`SweepResult` — the merged outcome, whose canonical rendering
  is byte-identical whether the sweep ran on 1 worker or N.

Quick start::

    from repro.sweep import SweepPlan, run_sweep

    plan = SweepPlan(name="whatif", base={"app": "bt", "nranks": 16,
                                          "cls": "B", "platform": "arc"},
                     axes=[{"field": "compute_scale",
                            "values": [1.0, 0.5, 0.0]}])
    result = run_sweep(plan, workers=4)
    print(result.report())        # per-point status + makespans

See ``docs/SWEEPS.md`` for the plan schema, determinism guarantees, and
cache-sharing semantics.
"""

from repro.sweep.engine import (PointResult, SweepResult, default_workers,
                                run_sweep)
from repro.sweep.plan import (MODES, TEMPLATE, SweepAxis, SweepPlan,
                              SweepPoint, build_config, dumps_sweep_plan,
                              load_sweep_plan, loads_sweep_plan)

__all__ = [
    "MODES",
    "PointResult",
    "SweepAxis",
    "SweepPlan",
    "SweepPoint",
    "SweepResult",
    "TEMPLATE",
    "build_config",
    "default_workers",
    "dumps_sweep_plan",
    "load_sweep_plan",
    "loads_sweep_plan",
    "run_sweep",
]
