"""Declarative sweep plans: one file describes a whole what-if study.

A :class:`SweepPlan` is the sweep analogue of a
:class:`~repro.faults.plan.FaultPlan`: a frozen, digest-keyed value
object describing a *grid* of pipeline configurations — the paper's
§5.4 methodology (re-run one generated communication specification
across changed platforms and compute-acceleration factors) made
first-class and batchable.

A plan has three parts:

* ``base`` — :class:`~repro.pipeline.PipelineConfig` fields shared by
  every point (the application, rank count, problem class, platform);
* ``axes`` — an ordered list of ``{field, values}`` entries whose
  cartesian product generates the grid (``compute_scale``,
  ``run_platform_params``, ``nranks``, ``fault_plan``, ... — any config
  field);
* ``points`` — explicit extra points appended after the grid, for
  one-off configurations the product cannot express.

Point expansion order is deterministic: the cartesian product iterates
the axes in their listed order (last axis fastest, like nested loops),
then the explicit points follow.  The plan's :meth:`~SweepPlan.digest`
is a stable content address over the whole description, used to key
sweep results exactly as a fault plan's digest keys faulted artifacts.

Plans serialize to/from YAML (or JSON when PyYAML is unavailable); see
``docs/SWEEPS.md`` for the schema and ``repro sweep template`` for a
commented example.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SweepPlanError

#: pipeline suffixes a plan may target: the full Fig. 1 flow, the flow
#: without the final execution, or tracing alone (cache warming)
MODES = ("run", "generate", "trace")

#: config fields a plan may set.  Cache bookkeeping is deliberately
#: excluded: whether/where artifacts are cached is an *execution*
#: decision owned by the sweep invocation, not by the study description
#: (the same plan must produce the same results cached or not).
_EXCLUDED_FIELDS = ("use_cache", "cache_dir")


def _config_fields() -> Dict[str, Any]:
    """Name -> dataclass field for every plan-settable config field."""
    import dataclasses

    from repro.pipeline.config import PipelineConfig
    return {f.name: f for f in dataclasses.fields(PipelineConfig)
            if f.name not in _EXCLUDED_FIELDS}


def _check_fields(where: str, mapping: Mapping[str, Any]) -> None:
    """Reject unknown or excluded config fields with a helpful message."""
    known = _config_fields()
    for key in mapping:
        if key not in known:
            hint = (" (cache settings belong to the sweep invocation, "
                    "not the plan)" if key in _EXCLUDED_FIELDS else "")
            raise SweepPlanError(
                f"{where}: unknown config field {key!r}{hint}; "
                f"choose from {sorted(known)}")


@dataclass(frozen=True)
class SweepAxis:
    """One swept dimension: a config field and its ordered values."""

    field: str
    values: Tuple[Any, ...]

    def __post_init__(self):
        """Validate the axis: known field, non-empty value list."""
        _check_fields("axis", {self.field: None})
        if not isinstance(self.values, (list, tuple)) or not self.values:
            raise SweepPlanError(
                f"axis {self.field!r} needs a non-empty list of values, "
                f"got {self.values!r}")
        object.__setattr__(self, "values", tuple(self.values))


@dataclass(frozen=True)
class SweepPoint:
    """One expanded grid point: its index, the varying parameters, and
    the full config-field mapping (base + variation)."""

    index: int          #: position in the deterministic expansion order
    params: Dict[str, Any]     #: just the fields this point varies
    overrides: Dict[str, Any]  #: base merged with ``params``

    def label(self) -> str:
        """Short human label: the varying fields, comma-joined."""
        if not self.params:
            return f"point {self.index}"
        return ", ".join(f"{k}={_short(v)}" for k, v in
                         sorted(self.params.items()))


def _short(value: Any) -> str:
    """Compact value rendering for point labels."""
    if isinstance(value, dict):
        return "{" + ",".join(f"{k}={_short(v)}"
                              for k, v in sorted(value.items())) + "}"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


@dataclass(frozen=True)
class SweepPlan:
    """A digest-keyed description of one batched what-if study."""

    name: str = "sweep"             #: study name (reports, result files)
    mode: str = "run"               #: pipeline suffix to execute (MODES)
    base: Dict[str, Any] = field(default_factory=dict)
    axes: Tuple[SweepAxis, ...] = ()
    extra_points: Tuple[Dict[str, Any], ...] = ()

    def __post_init__(self):
        """Validate mode, base fields, axis uniqueness, explicit points."""
        if not self.name:
            raise SweepPlanError("plan name must be non-empty")
        if self.mode not in MODES:
            raise SweepPlanError(
                f"unknown mode {self.mode!r}; choose from {MODES}")
        _check_fields("base", self.base)
        axes = tuple(a if isinstance(a, SweepAxis) else SweepAxis(**a)
                     for a in self.axes)
        object.__setattr__(self, "axes", axes)
        seen = set()
        for axis in axes:
            if axis.field in seen:
                raise SweepPlanError(
                    f"field {axis.field!r} appears in more than one axis")
            seen.add(axis.field)
        pts = tuple(dict(p) for p in self.extra_points)
        for p in pts:
            _check_fields("point", p)
        object.__setattr__(self, "extra_points", pts)
        if not axes and not pts:
            raise SweepPlanError(
                "plan sweeps nothing: give at least one axis or one "
                "explicit point")

    # -- expansion ----------------------------------------------------------
    def points(self) -> List[SweepPoint]:
        """The deterministic point list: cartesian product of the axes
        (in listed order, last axis fastest), then the explicit points."""
        out: List[SweepPoint] = []
        if self.axes:
            names = [a.field for a in self.axes]
            for combo in itertools.product(*(a.values for a in self.axes)):
                params = dict(zip(names, combo))
                out.append(SweepPoint(len(out), params,
                                      {**self.base, **params}))
        for params in self.extra_points:
            out.append(SweepPoint(len(out), dict(params),
                                  {**self.base, **params}))
        return out

    def check(self) -> int:
        """Build every point's :class:`PipelineConfig`, surfacing any
        invalid value as a :class:`SweepPlanError`; returns the point
        count (``repro sweep validate``)."""
        from repro.errors import FaultPlanError, PipelineConfigError
        pts = self.points()
        for point in pts:
            try:
                build_config(point.overrides)
            except (PipelineConfigError, FaultPlanError) as exc:
                raise SweepPlanError(
                    f"point {point.index} ({point.label()}): {exc}") \
                    from None
        return len(pts)

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data rendering (the YAML/JSON file content)."""
        return {
            "name": self.name,
            "mode": self.mode,
            "base": dict(self.base),
            "axes": [{"field": a.field, "values": list(a.values)}
                     for a in self.axes],
            "points": [dict(p) for p in self.extra_points],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepPlan":
        """Build and validate a plan from parsed YAML/JSON data."""
        if not isinstance(data, Mapping):
            raise SweepPlanError(
                f"sweep plan must be a mapping, got {type(data).__name__}")
        known = {"name", "mode", "base", "axes", "points"}
        unknown = set(data) - known
        if unknown:
            raise SweepPlanError(
                f"unknown sweep-plan keys: {sorted(unknown)}; "
                f"known keys: {sorted(known)}")
        axes_data = data.get("axes", [])
        if not isinstance(axes_data, Sequence) or \
                isinstance(axes_data, (str, bytes)):
            raise SweepPlanError("axes must be a list of "
                                 "{field, values} entries")
        axes = []
        for entry in axes_data:
            if not isinstance(entry, Mapping) or \
                    set(entry) != {"field", "values"}:
                raise SweepPlanError(
                    f"each axis needs exactly the keys 'field' and "
                    f"'values', got {entry!r}")
            axes.append(SweepAxis(entry["field"], tuple(entry["values"])))
        points = data.get("points", [])
        if not isinstance(points, Sequence) or \
                isinstance(points, (str, bytes)):
            raise SweepPlanError("points must be a list of mappings")
        try:
            return cls(name=data.get("name", "sweep"),
                       mode=data.get("mode", "run"),
                       base=dict(data.get("base", {})),
                       axes=tuple(axes),
                       extra_points=tuple(points))
        except TypeError as exc:
            raise SweepPlanError(f"bad sweep plan: {exc}") from None

    def digest(self) -> str:
        """Stable content address of the plan (keys sweep results the
        way a fault plan's digest keys faulted artifacts)."""
        payload = json.dumps(self.to_dict(), sort_keys=True, default=str)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def describe(self) -> str:
        """One-line human summary (``repro sweep validate``)."""
        bits = [f"mode={self.mode}"]
        for a in self.axes:
            bits.append(f"{a.field} x{len(a.values)}")
        if self.extra_points:
            bits.append(f"+{len(self.extra_points)} explicit point(s)")
        n = len(self.points())
        return (f"{self.name}: {n} point(s) ({'; '.join(bits)}; "
                f"digest {self.digest()})")


def build_config(overrides: Mapping[str, Any], *,
                 use_cache: bool = False, cache_dir: str = ".repro-cache"):
    """A validated :class:`PipelineConfig` from a point's field mapping.

    Inline ``fault_plan`` mappings become :class:`FaultPlan` objects and
    ``run_platform_params`` mappings pass through the config's own
    normalization; cache policy comes from the sweep invocation.
    """
    from repro.faults.plan import FaultPlan
    from repro.pipeline.config import PipelineConfig
    kw = dict(overrides)
    plan = kw.get("fault_plan")
    if isinstance(plan, Mapping):
        kw["fault_plan"] = FaultPlan.from_dict(dict(plan))
    return PipelineConfig(use_cache=use_cache, cache_dir=cache_dir, **kw)


#: commented example written by ``repro sweep template`` — the paper's
#: Fig. 7 what-if acceleration study as a plan file
TEMPLATE = """\
# repro sweep plan (see docs/SWEEPS.md for the full schema)
name: fig7-whatif         # study name; lands in results and reports
mode: run                 # run | generate | trace (pipeline suffix)
base:                     # PipelineConfig fields shared by every point
  app: bt                 #   any field except use_cache/cache_dir,
  nranks: 16              #   which belong to the sweep invocation
  cls: B
  platform: arc           # trace/generate platform (ARC Ethernet)
axes:                     # cartesian product, listed order, last fastest
  - field: compute_scale  # Fig. 7's axis: fraction of recorded compute
    values: [1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1, 0.0]
# more axes compound, e.g. sweep the run-time network too:
#  - field: run_platform_params
#    values: [{latency: 3.0e-5}, {latency: 1.0e-4}]
# topology and placement are execution-only: every point still shares
# the cached trace/emit artifacts (docs/TOPOLOGY.md):
#  - field: topology
#    values: [null, torus3d, fattree]
#  - field: placement
#    values: [block, roundrobin, "random:1"]
# scenarios are execution-only too: a scenario axis (curated names or
# inline specs, docs/SCENARIOS.md) reruns the same cached benchmark
# under each adversity, and scenario points report link/drop metrics:
#  - field: scenario
#    values: [calm, torus-hotlink, straggler-wavefront]
points: []                # explicit extra points, e.g.
#  - {nranks: 64, compute_scale: 0.5}
# a fault_plan axis takes inline plans (docs/FAULTS.md schema):
#  - field: fault_plan
#    values: [null, {seed: 42, drop_rate: 0.05, max_retries: 12}]
"""


def loads_sweep_plan(text: str) -> SweepPlan:
    """Parse a plan from YAML (preferred) or JSON text."""
    data: Optional[Any] = None
    try:
        import yaml
    except ImportError:  # pragma: no cover - PyYAML is normally present
        yaml = None
    if yaml is not None:
        try:
            data = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise SweepPlanError(f"unparsable sweep plan: {exc}") from None
    else:  # pragma: no cover - JSON fallback without PyYAML
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SweepPlanError(f"unparsable sweep plan: {exc}") from None
    if data is None:
        data = {}
    return SweepPlan.from_dict(data)


def load_sweep_plan(path: str) -> SweepPlan:
    """Load a :class:`SweepPlan` from a YAML/JSON file."""
    try:
        with open(path) as fh:
            text = fh.read()
    except OSError as exc:
        raise SweepPlanError(
            f"cannot read sweep plan {path!r}: {exc}") from None
    return loads_sweep_plan(text)


def dumps_sweep_plan(plan: SweepPlan) -> str:
    """Serialize a plan back to YAML (JSON without PyYAML)."""
    data = plan.to_dict()
    try:
        import yaml
    except ImportError:  # pragma: no cover - JSON fallback
        return json.dumps(data, indent=2, sort_keys=True) + "\n"
    return yaml.safe_dump(data, sort_keys=False)
