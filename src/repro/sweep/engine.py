"""The parallel sweep engine: fan a plan's grid across worker processes.

Executing a :class:`~repro.sweep.plan.SweepPlan` means running one
pipeline per grid point.  Points are independent, so they parallelize
across a ``ProcessPoolExecutor``; three properties make the parallel
execution safe and exactly reproducible:

* **Determinism** — every point's outcome is a pure function of its
  config (the whole system is deterministic), so a point computes the
  same result in any process, in any order.
* **Shared cache** — workers share the content-addressed artifact
  cache; the per-key cross-process lock in
  :class:`~repro.pipeline.cache.ArtifactCache` means N workers sweeping
  the same application trace it *once* while the rest block briefly and
  hit.
* **Order-independent merge** — results are collected keyed by point
  index and canonicalized without any scheduling-dependent data (wall
  times and cache hit/miss status are reported separately), so
  :meth:`SweepResult.canonical_json` is byte-identical for
  ``workers=1`` and ``workers=N``.

A point that fails (deadlock, livelock guard, invalid config) is
*isolated*: it reports ``status="failed"`` with the error, and the rest
of the sweep proceeds.  Degraded runs (crashed-rank salvage under a
fault plan, PR 3 semantics) report ``status="degraded"`` with their
fault report.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro import obs
from repro.errors import ReproError, SweepError
from repro.sweep.plan import SweepPlan, build_config

#: schema version of serialized sweep results
RESULT_VERSION = 1


@dataclass
class PointResult:
    """Outcome of one grid point.

    ``status`` is ``ok``, ``degraded`` (salvaged faulted run), or
    ``failed`` (isolated error).  ``metrics`` holds the deterministic
    simulation outcomes; ``execution`` holds scheduling-dependent
    bookkeeping (wall seconds, per-stage cache status) that is excluded
    from the canonical rendering.
    """

    index: int                      #: position in plan expansion order
    params: Dict[str, Any]          #: the fields this point varies
    status: str                     #: ok | degraded | failed
    metrics: Dict[str, Any] = field(default_factory=dict)
    fault: Optional[Dict[str, Any]] = None  #: FaultReport.to_dict()
    error: Optional[str] = None     #: failure description (failed only)
    execution: Dict[str, Any] = field(default_factory=dict)
    #: structured DeadlockDiagnostic.to_dict() when the failure carried
    #: one (schedule-dependent deadlocks surface their wait-for cycle
    #: here; the fuzzer classifies on it)
    diagnostic: Optional[Dict[str, Any]] = None

    def canonical_dict(self) -> Dict[str, Any]:
        """The deterministic, order-independent part of the result."""
        out = {"index": self.index, "params": self.params,
               "status": self.status, "metrics": self.metrics,
               "fault": self.fault, "error": self.error}
        # only present when captured: pre-diagnostic sweep outputs stay
        # byte-identical
        if self.diagnostic is not None:
            out["diagnostic"] = self.diagnostic
        return out


@dataclass
class SweepResult:
    """Everything one executed sweep produced.

    The canonical renderings (:meth:`canonical_dict`,
    :meth:`canonical_json`, :meth:`canonical_jsonl`) contain only
    deterministic data and are byte-identical across worker counts;
    :meth:`to_dict` adds the execution metadata (wall time, worker
    count, cache accounting).
    """

    plan: SweepPlan                 #: the executed plan
    points: List[PointResult]       #: per-point outcomes, index order
    workers: int = 1                #: worker processes used
    seconds: float = 0.0            #: sweep wall-clock time
    cache_hits: int = 0             #: artifact-cache hits, all points
    cache_misses: int = 0           #: artifact-cache misses, all points

    def counts(self) -> Dict[str, int]:
        """Point totals by status (``ok``/``degraded``/``failed``)."""
        out = {"ok": 0, "degraded": 0, "failed": 0}
        for p in self.points:
            out[p.status] = out.get(p.status, 0) + 1
        return out

    @property
    def failed(self) -> List[PointResult]:
        """The isolated failed points (empty on a clean sweep)."""
        return [p for p in self.points if p.status == "failed"]

    def canonical_dict(self) -> Dict[str, Any]:
        """Deterministic sweep outcome: plan identity + point results."""
        return {"version": RESULT_VERSION,
                "name": self.plan.name,
                "mode": self.plan.mode,
                "plan_digest": self.plan.digest(),
                "points": [p.canonical_dict() for p in self.points]}

    def canonical_json(self) -> str:
        """Canonical JSON: byte-identical for any worker count."""
        return json.dumps(self.canonical_dict(), sort_keys=True,
                          separators=(",", ":")) + "\n"

    def canonical_jsonl(self) -> str:
        """One canonical JSON line per point (CI parity checks)."""
        return "".join(
            json.dumps(p.canonical_dict(), sort_keys=True,
                       separators=(",", ":")) + "\n"
            for p in self.points)

    def to_dict(self) -> Dict[str, Any]:
        """Full rendering: canonical outcome + execution metadata."""
        out = self.canonical_dict()
        out["execution"] = {
            "workers": self.workers,
            "seconds": round(self.seconds, 6),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "points": [dict(p.execution, index=p.index)
                       for p in self.points],
        }
        return out

    def report(self) -> str:
        """The per-point table printed by ``repro sweep run``."""
        counts = self.counts()
        lines = [f"sweep report: {self.plan.name} "
                 f"({len(self.points)} point(s), mode={self.plan.mode}, "
                 f"{self.workers} worker(s), digest {self.plan.digest()})",
                 f"  {'point':<6s} {'status':<9s} "
                 f"{'makespan':>12s}  parameters"]
        for p in self.points:
            makespan = p.metrics.get("makespan_s")
            shown = (f"{makespan * 1e6:>10.1f}us" if makespan is not None
                     else f"{'-':>12s}")
            label = ", ".join(f"{k}={v}" for k, v in
                              sorted(p.params.items())) or "(base)"
            if p.error:
                label += f"  [{p.error}]"
            lines.append(f"  {p.index:<6d} {p.status:<9s} {shown}  {label}")
        tail = (f"  total  {self.seconds:.2f}s wall; "
                f"{counts['ok']} ok, {counts['degraded']} degraded, "
                f"{counts['failed']} failed; cache {self.cache_hits} "
                f"hit(s), {self.cache_misses} miss(es)")
        lines.append(tail)
        return "\n".join(lines)


def _point_pipeline(mode: str):
    """The pipeline a plan mode executes per point."""
    from repro.pipeline import Pipeline, TraceStage, full_pipeline
    if mode == "run":
        return full_pipeline(run=True)
    if mode == "generate":
        return full_pipeline(run=False)
    if mode == "trace":
        return Pipeline([TraceStage()])
    raise SweepError(f"unknown sweep mode {mode!r}")


def _execute_point(payload) -> Dict[str, Any]:
    """Worker entry: run one point, return a picklable outcome record.

    Runs in a pool process (or inline for ``workers=1`` — the code path
    is identical either way).  Every :class:`ReproError` is caught and
    converted into a ``failed`` record so one bad point cannot take the
    sweep down; non-repro exceptions are programming errors and
    propagate.
    """
    index, mode, overrides, params, use_cache, cache_dir = payload[:6]
    fingerprint = payload[6] if len(payload) > 6 else False
    t0 = time.perf_counter()
    record: Dict[str, Any] = {"index": index, "params": params,
                              "status": "ok", "metrics": {},
                              "fault": None, "error": None}
    try:
        config = build_config(overrides, use_cache=use_cache,
                              cache_dir=cache_dir)
        result = _point_pipeline(mode).run(config)
    except ReproError as exc:
        record["status"] = "failed"
        record["error"] = f"{type(exc).__name__}: {exc}"
        # structured deadlock evidence rides along when the error has
        # it: the fuzzer keys equivalence classes on the wait-for cycle
        diag = getattr(exc, "diagnostic", None)
        if diag is not None:
            record["diagnostic"] = diag.to_dict()
        else:
            cycle = getattr(exc, "cycle", None)
            if cycle:
                record["diagnostic"] = {"cycle": list(cycle)}
        record["execution"] = {"seconds": round(time.perf_counter() - t0,
                                                6)}
        return record
    metrics = record["metrics"]
    trace = result.artifacts.get("trace")
    if trace is not None:
        metrics["trace_events"] = trace.event_count()
        metrics["trace_nodes"] = trace.node_count()
    if result.source is not None:
        metrics["source_lines"] = len(result.source.splitlines())
    run_result = result.run_result
    if run_result is None and fingerprint:
        # trace-mode point: the traced application's own result carries
        # the schedule-dependent makespan the fuzzer compares
        run_result = result.artifacts.get("trace_run_result")
    if run_result is not None:
        metrics["makespan_s"] = run_result.total_time
        metrics["messages"] = run_result.messages_sent
        if "scenario" in params or "scenario" in dict(overrides):
            # scenario points additionally report the adversity-facing
            # accounting (deterministic, so canonical-safe); plain sweep
            # points keep their pre-scenario byte shape
            link_stats = run_result.link_stats
            metrics["links_used"] = len(link_stats)
            metrics["link_wait_s"] = sum(
                s["wait_s"] for s in link_stats.values())
            metrics["link_drops"] = sum(
                s.get("drops", 0) for s in link_stats.values())
            scn = config.scenario
            if scn is not None:
                metrics["scenario"] = scn.name
                metrics["scenario_digest"] = scn.digest()
    if fingerprint:
        metrics["outcome_fp"] = _outcome_fingerprint(run_result, trace)
    if result.degraded:
        record["status"] = "degraded"
    if result.fault_report is not None:
        record["fault"] = result.fault_report.to_dict()
    cache = result.cache
    record["execution"] = {
        "seconds": round(time.perf_counter() - t0, 6),
        "stages": [[r.stage, r.cache] for r in result.records],
        "cache_hits": cache.hits if cache is not None else 0,
        "cache_misses": cache.misses if cache is not None else 0,
    }
    return record


def _outcome_fingerprint(run_result, trace) -> str:
    """Process-stable digest of everything schedule-dependent.

    Two points with the same fingerprint reached equivalent outcomes:
    same makespan and per-rank clocks (to the bit, via ``float.hex``),
    same message count, same serialized trace text when tracing.  Rabin
    node fingerprints are *not* used — they hash Python strings, so they
    differ across pool workers under ``PYTHONHASHSEED``; sha256 over the
    serialized artifacts is stable everywhere.
    """
    import hashlib
    h = hashlib.sha256()
    if run_result is not None:
        h.update(run_result.total_time.hex().encode())
        for t in run_result.per_rank_times:
            h.update(t.hex().encode())
        h.update(str(run_result.messages_sent).encode())
    if trace is not None:
        from repro.scalatrace.serialize import dumps_trace
        h.update(dumps_trace(trace).encode())
    return h.hexdigest()[:16]


def _to_point_result(record: Dict[str, Any]) -> PointResult:
    """A :class:`PointResult` from a worker's outcome record."""
    return PointResult(index=record["index"], params=record["params"],
                       status=record["status"],
                       metrics=record.get("metrics", {}),
                       fault=record.get("fault"),
                       error=record.get("error"),
                       execution=record.get("execution", {}),
                       diagnostic=record.get("diagnostic"))


def run_sweep(plan: SweepPlan, workers: int = 1, *,
              use_cache: bool = True, cache_dir: str = ".repro-cache",
              progress=None, fingerprint_outcomes: bool = False) -> SweepResult:
    """Execute every point of ``plan``; returns the merged result.

    ``workers`` > 1 fans the points across a ``ProcessPoolExecutor``;
    the merged :class:`SweepResult` is canonically byte-identical to a
    serial run.  ``use_cache``/``cache_dir`` configure the shared
    artifact cache (on by default: cache sharing across points is the
    engine's main economy).  ``progress``, when given, is called as
    ``progress(point_record)`` after each point completes, in completion
    order.  ``fingerprint_outcomes`` adds a process-stable
    ``metrics["outcome_fp"]`` digest per point (and, in trace mode, the
    traced run's makespan) — the fuzzer's dedup key; off by default so
    ordinary sweep output bytes are unchanged.
    """
    if workers < 1:
        raise SweepError(f"workers must be >= 1, got {workers}")
    points = plan.points()
    payloads = [(p.index, plan.mode, p.overrides, p.params,
                 use_cache, cache_dir, fingerprint_outcomes)
                for p in points]
    t0 = time.perf_counter()
    records: List[Optional[Dict[str, Any]]] = [None] * len(points)
    with obs.span("sweep.run", plan=plan.name, points=len(points),
                  workers=workers):
        if workers == 1 or len(points) <= 1:
            for payload in payloads:
                rec = _execute_point(payload)
                records[rec["index"]] = rec
                _account_point(rec, progress)
        else:
            workers = min(workers, len(points))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                pending = {pool.submit(_execute_point, payload)
                           for payload in payloads}
                while pending:
                    done, pending = wait(pending,
                                         return_when=FIRST_COMPLETED)
                    for fut in done:
                        rec = fut.result()
                        records[rec["index"]] = rec
                        _account_point(rec, progress)
    results = [_to_point_result(rec) for rec in records
               if rec is not None]
    return SweepResult(
        plan=plan, points=results, workers=workers,
        seconds=time.perf_counter() - t0,
        cache_hits=sum(p.execution.get("cache_hits", 0) for p in results),
        cache_misses=sum(p.execution.get("cache_misses", 0)
                         for p in results))


def _account_point(rec: Dict[str, Any], progress) -> None:
    """Per-point observability: counters + a machine-readable event."""
    obs.count("sweep.points")
    obs.count(f"sweep.points_{rec['status']}")
    execution = rec.get("execution", {})
    obs.count("sweep.cache_hits", execution.get("cache_hits", 0))
    obs.count("sweep.cache_misses", execution.get("cache_misses", 0))
    obs.event("point_done", "sweep.point", index=rec["index"],
              status=rec["status"],
              dur_s=execution.get("seconds", 0.0))
    if progress is not None:
        progress(rec)


def default_workers() -> int:
    """A sensible worker count for this host (CLI ``--workers 0``)."""
    return max(1, os.cpu_count() or 1)
