"""The pipeline stages: Fig. 1 of the paper, one class per arrow.

``TraceStage → AlignStage → ResolveStage → EmitStage → CompileStage →
RunStage`` is the full application-to-executed-benchmark flow;
``ReplayStage`` is the ScalaReplay variant that executes a trace
directly.  Stages communicate exclusively through the
:class:`~repro.pipeline.context.RunContext` artifact store, so any
suffix/prefix of the chain is a valid pipeline (the CLI's ``generate``
command, for example, runs ``Align → Resolve → Emit → Compile`` from a
loaded trace).

Caching: every stage contributes ``key_parts`` to the rolling content
address; the two stages whose artifacts are worth persisting (the
serialized trace and the generated source — the expensive, serializable
ones) additionally declare ``cacheable = True`` and implement
``serialize``/``deserialize``.  The alignment/resolution passes are
re-validated on every run (they are also the deadlock detector), reading
their input from the cached trace when one was hit.
"""

from __future__ import annotations

import json
from typing import Optional, Tuple

from repro.errors import PipelineError, SimulationError
from repro.pipeline.context import RunContext


def _fault_injector(ctx: RunContext, execution: bool = False):
    """A FaultInjector for the stage's effective plan, or None when no
    plan applies — the fault-free path never touches the faults package.

    ``execution=True`` marks the run/replay stages: only there does a
    scenario's fault content (its base plan plus expanded adversaries)
    engage.  The trace stage never sees it, which is what keeps the
    canonical trace — and its cache address — scenario-independent.
    """
    plan = ctx.config.fault_plan
    if execution:
        scn = ctx.config.scenario
        if scn is not None and scn.has_fault_content():
            # config.fault_plan + scenario fault content is rejected at
            # config construction, so the scenario's plan stands alone
            from repro.scenarios import scenario_fault_plan
            plan = scenario_fault_plan(scn, ctx.config.app,
                                       ctx.config.nranks)
    if plan is None or plan.is_null():
        return None
    from repro.faults import FaultInjector
    return FaultInjector(plan)


def _salvage(ctx: RunContext, exc: SimulationError, faults):
    """Partial-artifact salvage: when a faulted simulation dies, keep the
    :class:`SpmdResult` prefix the launcher attached to the error instead
    of propagating.  Returns the partial result, or None when the failure
    is not salvageable (no injector, or the error carries no partial)."""
    partial = getattr(exc, "partial", None)
    if faults is None or partial is None:
        return None
    ctx.artifacts["degraded"] = True
    ctx.artifacts["fault_report"] = partial.fault_report
    ctx.artifacts["fault_error"] = str(exc)
    return partial


def _schedule_kwargs(ctx: RunContext, execution: bool = False) -> dict:
    """``run_spmd`` keyword arguments for the stage's schedule policy.

    Empty for the canonical default, so the untouched-path call sites
    stay exactly as before; a non-canonical policy is rebuilt fresh per
    stage (each simulated run must see the same seeded RNG sequence a
    standalone ``repro run --schedule-policy ... --schedule-seed ...``
    would).

    ``execution=True`` marks the run/replay stages: only there does a
    scenario's schedule pin engage (the trace stays canonical, so a
    schedule-pinning scenario still shares the canonical trace cache).
    A config-level non-canonical policy keys the trace and wins
    everywhere; the combination of both is rejected at config time.
    """
    c = ctx.config
    policy, seed = c.schedule_policy, c.schedule_seed
    if execution and policy == "canonical":
        scn = c.scenario
        if scn is not None and scn.pins_schedule():
            policy, seed = scn.schedule_policy, scn.schedule_seed
    if policy == "canonical":
        return {}
    return {"schedule_policy": policy, "schedule_seed": seed}


def _queue_kwargs(ctx: RunContext) -> dict:
    """``run_spmd`` keyword arguments for the config's queue discipline.

    Empty for the FIFO default (the call sites — and the engine's inline
    fold — stay byte-identical to the pre-queueing code path); only the
    execution stages call this, because queue disciplines act on the
    routed execution fabric.
    """
    c = ctx.config
    if c.queue_discipline in (None, "fifo"):
        return {}
    return {"queue_discipline": c.queue_discipline,
            "queue_params": dict(c.queue_params or ())}


class Stage:
    """One step of the pipeline.

    Subclasses set ``name`` (stable identifier, also the report row
    label) and ``produces`` (the artifact key written to the context),
    and implement :meth:`run` returning a one-line human detail string.
    """

    name = "stage"
    produces: Optional[str] = None
    cacheable = False
    suffix = ""  # cache file suffix

    def key_parts(self, ctx: RunContext) -> Optional[Tuple]:
        """Stage configuration folded into the rolling cache key; None
        declares the stage (and everything downstream) unkeyable."""
        return ()

    def run(self, ctx: RunContext) -> str:
        """Execute the stage against ``ctx``; returns the report detail."""
        raise NotImplementedError

    def serialize(self, ctx: RunContext) -> str:
        """Render the produced artifact as cacheable text."""
        raise NotImplementedError(f"{self.name} is not cacheable")

    def deserialize(self, ctx: RunContext, text: str) -> str:
        """Install the cached artifact into the context; returns the
        report detail string."""
        raise NotImplementedError(f"{self.name} is not cacheable")


class TraceStage(Stage):
    """Application → merged global ScalaTrace trace (cacheable)."""

    name = "trace"
    produces = "trace"
    cacheable = True
    suffix = ".trace"

    def key_parts(self, ctx):
        """Everything that determines the trace bytes."""
        c = ctx.config
        plan = c.fault_plan
        # the plan digest keys the faulted trace separately from the
        # clean one (and from other plans) so the cache cannot serve a
        # degraded artifact to a fault-free run or vice versa
        fault = (None if plan is None or plan.is_null() else plan.digest())
        # the schedule policy changes which wildcard matches the trace
        # records, so (policy, seed) must key the artifact; canonical
        # folds to None so all canonical runs share one address
        sched = (None if c.schedule_policy == "canonical"
                 else (c.schedule_policy, c.schedule_seed))
        return ("trace", c.app, c.nranks, c.cls, c.platform, c.max_steps,
                fault, sched)

    def run(self, ctx):
        """Run the application under ScalaTrace on the simulator."""
        from repro.mpi.world import run_spmd
        from repro.scalatrace.tracer import ScalaTraceHook
        tracer = ScalaTraceHook()
        hooks = [tracer] + list(ctx.hooks or [])
        nranks = ctx.config.nranks
        if nranks is None:
            raise PipelineError("TraceStage requires config.nranks")
        faults = _fault_injector(ctx)
        try:
            result = run_spmd(ctx.program, nranks, model=ctx.model,
                              hooks=hooks, max_steps=ctx.config.max_steps,
                              faults=faults, profile=ctx.config.profile,
                              **_schedule_kwargs(ctx))
        except SimulationError as exc:
            partial = _salvage(ctx, exc, faults)
            if partial is None:
                raise
            ctx.artifacts["trace_run_result"] = partial
            trace = tracer.trace
            ctx.artifacts["trace"] = trace
            return ("salvaged",
                    f"{trace.event_count()} events in "
                    f"{trace.node_count()} nodes (prefix; {exc})")
        trace = tracer.trace
        ctx.artifacts["trace"] = trace
        # the traced application's own SpmdResult: trace-mode harnesses
        # (the fuzzer) read the makespan from here without a run stage
        ctx.artifacts["trace_run_result"] = result
        detail = (f"{trace.event_count()} events in "
                  f"{trace.node_count()} nodes")
        if faults is not None:
            ctx.artifacts["fault_report"] = result.fault_report
            if result.degraded:
                ctx.artifacts["degraded"] = True
                return ("degraded", detail + " (crashed-rank prefix)")
        return detail

    def serialize(self, ctx):
        """The trace's text serialization."""
        from repro.scalatrace.serialize import dumps_trace
        return dumps_trace(ctx.artifacts["trace"])

    def deserialize(self, ctx, text):
        """Install a cached trace into the context."""
        from repro.scalatrace.serialize import loads_trace
        trace = loads_trace(text)
        ctx.artifacts["trace"] = trace
        return (f"{trace.event_count()} events in "
                f"{trace.node_count()} nodes (cached)")


class AlignStage(Stage):
    """Algorithm 1: one RSD per logical collective (when needed)."""

    name = "align"
    produces = "trace"

    def key_parts(self, ctx):
        """Alignment toggles the artifact; fold the switch in."""
        return ("align", ctx.config.align)

    def run(self, ctx):
        """Apply Algorithm 1 when enabled and the trace needs it."""
        from repro.generator.align import align_collectives, needs_alignment
        trace = ctx.require("trace")
        ctx.artifacts["was_aligned"] = False
        if not ctx.config.align:
            return ("skipped", "disabled")
        if not needs_alignment(trace):
            return ("skipped", "not needed")
        ctx.artifacts["trace"] = align_collectives(trace)
        ctx.artifacts["was_aligned"] = True
        return "collectives aligned (Algorithm 1)"


class ResolveStage(Stage):
    """Algorithm 2: bind wildcard receives; detect trace deadlocks."""

    name = "resolve"
    produces = "trace"

    def key_parts(self, ctx):
        """Resolution toggles the artifact; fold the switch in."""
        return ("resolve", ctx.config.resolve)

    def run(self, ctx):
        """Apply Algorithm 2 when enabled and the trace has wildcards."""
        from repro.generator.wildcard import has_wildcards, resolve_wildcards
        trace = ctx.require("trace")
        ctx.artifacts["was_resolved"] = False
        if not ctx.config.resolve:
            return ("skipped", "disabled")
        if not has_wildcards(trace):
            return ("skipped", "no wildcards")
        ctx.artifacts["trace"] = resolve_wildcards(trace)
        ctx.artifacts["was_resolved"] = True
        return "wildcards resolved (Algorithm 2)"


class EmitStage(Stage):
    """Processed trace → coNCePTuaL source text (cacheable)."""

    name = "emit"
    produces = "source"
    cacheable = True
    suffix = ".ncptl"

    def key_parts(self, ctx):
        """The emitter settings that shape the generated source."""
        c = ctx.config
        return ("emit", c.include_timing, c.split_first_rest, c.name)

    def run(self, ctx):
        """Emit the processed trace as coNCePTuaL source."""
        from repro.conceptual.printer import print_program
        from repro.generator.emit_conceptual import ConceptualEmitter
        c = ctx.config
        emitter = ConceptualEmitter(ctx.require("trace"),
                                    include_timing=c.include_timing,
                                    split_first_rest=c.split_first_rest)
        ast = emitter.generate()
        ctx.artifacts["ast"] = ast
        ctx.artifacts["source"] = print_program(ast)
        return f"{len(ctx.artifacts['source'].splitlines())} lines"

    def serialize(self, ctx):
        """JSON envelope: the source plus the generator flags."""
        env = {"was_aligned": ctx.artifacts.get("was_aligned", False),
               "was_resolved": ctx.artifacts.get("was_resolved", False),
               "source": ctx.artifacts["source"]}
        return json.dumps(env)

    def deserialize(self, ctx, text):
        """Install a cached source envelope into the context."""
        env = json.loads(text)
        # the generator flags ride with the source so a cache hit
        # reconstructs the exact GeneratedBenchmark metadata
        ctx.artifacts["was_aligned"] = env["was_aligned"]
        ctx.artifacts["was_resolved"] = env["was_resolved"]
        ctx.artifacts["source"] = env["source"]
        ctx.artifacts.pop("ast", None)
        return (f"{len(env['source'].splitlines())} lines (cached)")


class CompileStage(Stage):
    """Source text (or the just-emitted AST) → runnable program."""

    name = "compile"
    produces = "benchmark"

    def run(self, ctx):
        """Compile the source (or the freshly emitted AST)."""
        from repro.conceptual.compiler import ConceptualProgram
        ast = ctx.artifacts.get("ast")
        if ast is not None:
            program = ConceptualProgram(ast, name=ctx.config.name)
        else:
            program = ConceptualProgram.from_source(ctx.require("source"),
                                                    name=ctx.config.name)
        ctx.artifacts["benchmark"] = program
        ctx.artifacts.setdefault("source", program.source)
        return f"{len(program._sites)} statements"


class RunStage(Stage):
    """Execute the compiled benchmark on the simulated platform."""

    name = "run"
    produces = "run_result"

    def key_parts(self, ctx):
        """None: execution is never cached."""
        return None

    def run(self, ctx):
        """Run the benchmark under the execution-stage model, applying
        the §5.4 what-if knobs (compute scaling, platform overrides)."""
        program = ctx.require("benchmark")
        nranks = ctx.config.nranks
        if nranks is None:
            raise PipelineError("RunStage requires config.nranks")
        if ctx.config.compute_scale != 1.0:
            # §5.4 what-if: scale the benchmark's COMPUTE statements at
            # the last moment, so the cached trace/source stay pristine
            from repro.generator.api import scale_compute
            program = scale_compute(program, ctx.config.compute_scale)
        faults = _fault_injector(ctx, execution=True)
        try:
            result, logs = program.run(nranks, model=ctx.run_model,
                                       hooks=ctx.hooks,
                                       max_steps=ctx.config.max_steps,
                                       faults=faults,
                                       profile=ctx.config.profile,
                                       **_queue_kwargs(ctx),
                                       **_schedule_kwargs(
                                           ctx, execution=True))
        except SimulationError as exc:
            partial = _salvage(ctx, exc, faults)
            if partial is None:
                raise
            ctx.artifacts["run_result"] = partial
            return ("salvaged",
                    f"{partial.total_time * 1e6:.1f} us simulated "
                    f"(prefix; {exc})")
        ctx.artifacts["run_result"] = result
        ctx.artifacts["logs"] = logs
        detail = f"{result.total_time * 1e6:.1f} us simulated"
        if ctx.config.compute_scale != 1.0:
            detail += f" (compute x{ctx.config.compute_scale:g})"
        if faults is not None:
            ctx.artifacts["fault_report"] = result.fault_report
            if result.degraded:
                ctx.artifacts["degraded"] = True
                return ("degraded", detail + " (crashed-rank prefix)")
        return detail


class ReplayStage(Stage):
    """ScalaReplay: execute the trace itself, event by event."""

    name = "replay"
    produces = "run_result"

    def key_parts(self, ctx):
        """None: replays are never cached."""
        return None

    def run(self, ctx):
        """Re-execute the trace event by event under the run model."""
        from repro.tools.replay import replay_program
        from repro.mpi.world import run_spmd
        trace = ctx.require("trace")
        faults = _fault_injector(ctx, execution=True)
        try:
            result = run_spmd(
                replay_program(trace,
                               include_timing=ctx.config.include_timing),
                trace.world_size, model=ctx.run_model, hooks=ctx.hooks,
                max_steps=ctx.config.max_steps, faults=faults,
                profile=ctx.config.profile, **_queue_kwargs(ctx),
                **_schedule_kwargs(ctx, execution=True))
        except SimulationError as exc:
            partial = _salvage(ctx, exc, faults)
            if partial is None:
                raise
            ctx.artifacts["run_result"] = partial
            return ("salvaged",
                    f"{partial.total_time * 1e6:.1f} us simulated, "
                    f"{partial.messages_sent} messages (prefix; {exc})")
        ctx.artifacts["run_result"] = result
        if faults is not None:
            ctx.artifacts["fault_report"] = result.fault_report
            if result.degraded:
                ctx.artifacts["degraded"] = True
        return (f"{result.total_time * 1e6:.1f} us simulated, "
                f"{result.messages_sent} messages")
