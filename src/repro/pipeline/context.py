"""The run context threaded through every pipeline stage.

A :class:`RunContext` is the single mutable object a pipeline run owns:
the validated config, lazily resolved program/model, the artifact store
(``trace``, ``source``, ``benchmark``, ``run_result`` …), the rolling
cache key, and the per-stage execution records that become the run
report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.errors import PipelineError
from repro.pipeline.cache import ArtifactCache
from repro.pipeline.config import PipelineConfig


@dataclass
class StageRecord:
    """What one stage execution did: how long, and how it was satisfied
    (``hit``/``miss`` for cached stages, ``off`` when caching did not
    apply, ``skipped`` when the stage decided it had nothing to do)."""

    stage: str
    seconds: float
    cache: str
    detail: str = ""


class RunContext:
    """Mutable state for one pipeline run.

    ``program`` / ``model`` / ``hooks`` may be supplied directly (the
    public API wrappers do this); supplying any of them makes the run
    *unkeyable* — its inputs are arbitrary Python objects with no stable
    content address — so caching disengages automatically.
    """

    def __init__(self, config: PipelineConfig,
                 program: Optional[Callable] = None,
                 model=None, hooks=None,
                 cache: Optional[ArtifactCache] = None):
        self.config = config
        self.hooks = hooks
        self._program = program
        self._model = model
        self._model_resolved = model is not None or config.platform is None
        self.cache = cache
        if cache is None and config.use_cache:
            self.cache = ArtifactCache(config.cache_dir)
        self.artifacts: Dict[str, Any] = {}
        self.records: List[StageRecord] = []
        # rolling content address; None whenever any input lacks one
        keyable = (config.app is not None and program is None
                   and model is None and hooks is None
                   and config.platform is not None)
        self.key: Optional[str] = "" if keyable else None

    # -- lazy resolution ---------------------------------------------------
    @property
    def program(self) -> Callable:
        """The SPMD application program (built from the registry on
        first use when not supplied directly)."""
        if self._program is None:
            if self.config.app is None:
                raise PipelineError(
                    "no application: config.app is unset and no program "
                    "was supplied to the RunContext")
            from repro.apps import make_app
            if self.config.nranks is None:
                raise PipelineError("config.nranks is required to build "
                                    f"app {self.config.app!r}")
            self._program = make_app(self.config.app, self.config.nranks,
                                     self.config.cls)
        return self._program

    @property
    def model(self):
        """The network model (platform preset, supplied model, or None
        for the simulator default)."""
        if not self._model_resolved:
            from repro.sim.network import make_model
            self._model = make_model(self.config.platform)
            self._model_resolved = True
        return self._model

    @property
    def run_model(self):
        """The network model the *execution* stages run under.

        Identical to :attr:`model` unless the config carries a
        ``run_platform`` / ``run_platform_params`` what-if override —
        the paper's §5.4 methodology of re-running one generated
        specification on a changed platform.  Trace and generation
        stages never see this model, so their cached artifacts are
        shared across a platform-parameter sweep.
        """
        c = self.config
        if c.run_platform is None and c.run_platform_params is None:
            base = self.model
        else:
            from repro.sim.network import make_model
            preset = c.run_platform or c.platform
            if preset is None:
                raise PipelineError(
                    "run_platform_params given but neither run_platform "
                    "nor platform names a preset to parameterize")
            try:
                base = make_model(preset,
                                  **dict(c.run_platform_params or ()))
            except (TypeError, ValueError) as exc:
                raise PipelineError(
                    f"bad run_platform_params for platform {preset!r}: "
                    f"{exc}") from None
        if c.topology is None:
            return base
        if c.nranks is None:
            raise PipelineError(
                "config.nranks is required to place ranks on a "
                f"{c.topology!r} topology")
        if base is None:
            from repro.sim.network import LogGPModel
            base = LogGPModel()
        from repro.topology import make_topology_model
        try:
            return make_topology_model(
                base, c.topology, c.nranks,
                topology_params=dict(c.topology_params or ()),
                placement=c.placement)
        except ValueError as exc:
            raise PipelineError(
                f"bad topology configuration ({c.topology!r}, placement "
                f"{c.placement!r}): {exc}") from None

    # -- bookkeeping -------------------------------------------------------
    def record(self, stage: str, seconds: float, cache: str,
               detail: str = "") -> StageRecord:
        """Append one per-stage report row (timing + cache status)."""
        rec = StageRecord(stage, seconds, cache, detail)
        self.records.append(rec)
        return rec

    def require(self, artifact: str) -> Any:
        """The named artifact, or a :class:`PipelineError` naming what
        *is* available — the error a stage raises when run out of order."""
        try:
            return self.artifacts[artifact]
        except KeyError:
            raise PipelineError(
                f"stage requires missing artifact {artifact!r}; "
                f"have {sorted(self.artifacts)}") from None


@dataclass
class PipelineResult:
    """Everything a finished pipeline run produced."""

    config: PipelineConfig
    records: List[StageRecord]
    artifacts: Dict[str, Any]
    cache: Optional[ArtifactCache] = None
    seconds: float = 0.0

    @property
    def trace(self):
        """The (possibly aligned/resolved) ScalaTrace trace, if produced."""
        return self.artifacts.get("trace")

    @property
    def source(self) -> Optional[str]:
        """The generated coNCePTuaL source text, if produced."""
        return self.artifacts.get("source")

    @property
    def benchmark(self):
        """The compiled ``ConceptualProgram``, if produced."""
        return self.artifacts.get("benchmark")

    @property
    def run_result(self):
        """The execution stage's ``SpmdResult``, if the pipeline ran one."""
        return self.artifacts.get("run_result")

    @property
    def fault_report(self):
        """The FaultReport of the last faulted simulation stage, if any."""
        return self.artifacts.get("fault_report")

    @property
    def degraded(self) -> bool:
        """True when some stage salvaged a partial (crashed/hung) run."""
        return bool(self.artifacts.get("degraded"))

    def cache_hits(self) -> int:
        """How many stages were served from the artifact cache."""
        return sum(1 for r in self.records if r.cache == "hit")

    def report(self) -> str:
        """The per-stage timing/cache table printed by ``repro pipeline``."""
        what = self.config.app or self.config.name
        header = (f"pipeline report: {what}"
                  + (f" class {self.config.cls}" if self.config.app else "")
                  + (f", np={self.config.nranks}"
                     if self.config.nranks else "")
                  + (f", platform={self.config.platform}"
                     if self.config.platform else ""))
        lines = [header,
                 f"  {'stage':<10s} {'time':>10s}  {'cache':<7s} detail"]
        for rec in self.records:
            lines.append(f"  {rec.stage:<10s} {rec.seconds * 1e3:>8.1f}ms"
                         f"  {rec.cache:<7s} {rec.detail}")
        total = sum(r.seconds for r in self.records)
        tail = f"  total      {total * 1e3:>8.1f}ms"
        if self.cache is not None:
            tail += f"  cache: {self.cache.stats()} ({self.cache.root})"
        lines.append(tail)
        return "\n".join(lines)
