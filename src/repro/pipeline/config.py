"""Typed configuration for the Fig. 1 pipeline.

:class:`PipelineConfig` replaces the keyword-argument soup that used to
be threaded through ``trace_application`` / ``generate_benchmark`` call
chains: one frozen, validated object describes *what* to build (which
application, how many ranks, which platform) and *how* (which generator
passes run, whether artifacts are cached).

The config's :meth:`fingerprint` is the basis of the artifact cache's
content addressing: two configs with the same fingerprint produce
byte-identical trace and source artifacts (the whole system is
deterministic), so cached artifacts can be reused across processes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, fields
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import PipelineConfigError
from repro.faults.plan import FaultPlan

#: problem classes accepted by the application suite
_CLASSES = ("S", "W", "A", "B", "C")

#: the execution-only fields: they change how the generated benchmark
#: *executes* without touching the trace/emit artifacts, so none of
#: them may appear in the trace/emit rolling cache key (the §5.4
#: what-if economy).  The contract test in
#: ``tests/pipeline/test_execution_only.py`` enforces this list
#: field-by-field against the stage key parts.
EXECUTION_ONLY_FIELDS = (
    "compute_scale",
    "run_platform",
    "run_platform_params",
    "topology",
    "topology_params",
    "placement",
    "scenario",
    "queue_discipline",
    "queue_params",
)


@dataclass(frozen=True)
class PipelineConfig:
    """Everything a pipeline run needs, in one validated value object.

    ``app`` names a workload from :data:`repro.apps.APPS`; leave it None
    when the entry artifact (an SPMD program or a loaded trace) is
    supplied directly on the :class:`~repro.pipeline.context.RunContext`.
    ``platform`` names a :data:`repro.sim.network.PLATFORMS` preset;
    leave it None to use a caller-supplied model (or the simulator
    default).  Caching only ever engages for runs that are fully
    described by the config (registry app + platform preset), because
    only those have a stable content address.
    """

    app: Optional[str] = None          #: registry name of the workload
    nranks: Optional[int] = None       #: simulated world size
    cls: str = "S"                     #: problem class (S/W/A/B/C)
    platform: Optional[str] = "bluegene"  #: network-model preset
    align: bool = True                 #: run Algorithm 1 when needed
    resolve: bool = True               #: run Algorithm 2 when needed
    include_timing: bool = True        #: emit COMPUTE statements
    split_first_rest: bool = True      #: §4.5 first-iteration conditionals
    name: str = "generated"            #: benchmark program name
    max_steps: Optional[int] = None    #: simulator livelock guard
    fault_plan: Optional[FaultPlan] = None  #: inject faults into sim runs
    #: §5.4 what-if axes: these vary how the *generated benchmark is
    #: executed* without touching the trace/emit artifacts, so a sweep
    #: over them shares the expensive cached artifacts across points.
    compute_scale: float = 1.0         #: scale COMPUTE stmts at run time
    run_platform: Optional[str] = None  #: execution platform (default:
    #:                                     same preset as ``platform``)
    run_platform_params: Optional[Tuple[Tuple[str, Any], ...]] = None
    #: keyword overrides for the execution-stage network model (a
    #: mapping is accepted and normalized to a sorted tuple of pairs)
    topology: Optional[str] = None     #: routed-fabric topology for the
    #:                                    execution stage (None = flat)
    topology_params: Optional[Tuple[Tuple[str, Any], ...]] = None
    #: topology/fabric keyword overrides (``dims``, ``arity``, ``nodes``,
    #: ``hop_latency``, ``link_bandwidth``); normalized like
    #: ``run_platform_params``
    placement: str = "block"           #: rank→node placement spec
    #:                                    ("block", "roundrobin",
    #:                                    "random[:seed]", "map:<file>")
    scenario: Optional[Any] = None     #: execution scenario: a curated
    #:                                    registry name, an inline spec
    #:                                    mapping, or a Scenario object
    #:                                    (normalized to the latter).
    #:                                    Expands into the execution-only
    #:                                    dimensions; its fault content
    #:                                    and schedule pin apply only at
    #:                                    the run/replay stages.
    queue_discipline: str = "fifo"     #: per-link queue discipline for
    #:                                    routed execution fabrics
    #:                                    (repro.sim.queueing)
    queue_params: Optional[Tuple[Tuple[str, Any], ...]] = None
    #: queue-discipline knobs (codel target/interval/penalty);
    #: normalized like the other params fields
    schedule_policy: str = "canonical"  #: engine tie-break policy for
    #:                                     every simulated run in the
    #:                                     pipeline (repro.sim.policy)
    schedule_seed: Optional[int] = None  #: seed for non-canonical
    #:                                      schedule policies
    stage_retries: int = 0             #: re-run attempts for failed stages
    stage_retry_backoff: float = 0.0   #: seconds slept before retry k (*2^k)
    profile: bool = False              #: per-phase engine wall-time
    #:                                    attribution (``engine.profile.*``
    #:                                    counters via repro.obs)
    use_cache: bool = False            #: consult/populate the artifact cache
    cache_dir: str = ".repro-cache"    #: artifact cache root directory

    def __post_init__(self):
        from repro.apps import APPS
        from repro.sim.network import PLATFORMS
        # normalize the params fields first so scenario expansion can
        # compare values in canonical (sorted-pair-tuple) form
        self._normalize_params("run_platform_params")
        self._normalize_params("topology_params")
        self._normalize_params("queue_params")
        self._expand_scenario()
        if self.app is not None and self.app.lower() not in APPS:
            raise PipelineConfigError(
                f"unknown application {self.app!r}; choose from "
                f"{sorted(APPS)}")
        if self.nranks is not None and self.nranks <= 0:
            raise PipelineConfigError(
                f"nranks must be positive, got {self.nranks}")
        if self.cls not in _CLASSES:
            raise PipelineConfigError(
                f"unknown problem class {self.cls!r}; choose from "
                f"{_CLASSES}")
        if self.platform is not None and self.platform not in PLATFORMS:
            raise PipelineConfigError(
                f"unknown platform {self.platform!r}; choose from "
                f"{sorted(PLATFORMS)}")
        if self.max_steps is not None and self.max_steps <= 0:
            raise PipelineConfigError(
                f"max_steps must be positive, got {self.max_steps}")
        if not self.name:
            raise PipelineConfigError("name must be non-empty")
        if self.fault_plan is not None and not isinstance(self.fault_plan,
                                                          FaultPlan):
            raise PipelineConfigError(
                f"fault_plan must be a FaultPlan, got "
                f"{type(self.fault_plan).__name__}")
        if self.stage_retries < 0:
            raise PipelineConfigError(
                f"stage_retries must be >= 0, got {self.stage_retries}")
        if self.stage_retry_backoff < 0:
            raise PipelineConfigError(
                f"stage_retry_backoff must be >= 0, got "
                f"{self.stage_retry_backoff}")
        if self.compute_scale < 0:
            raise PipelineConfigError(
                f"compute_scale must be >= 0, got {self.compute_scale}")
        if self.run_platform is not None and \
                self.run_platform not in PLATFORMS:
            raise PipelineConfigError(
                f"unknown run_platform {self.run_platform!r}; choose "
                f"from {sorted(PLATFORMS)}")
        if self.run_platform_params is not None:
            # satellite guard: a typoed or preset-incompatible parameter
            # (e.g. eager_threshold on SimpleModel) fails here — at
            # `repro sweep validate` time — not mid-fan-out in a worker
            preset = self.run_platform or self.platform
            if preset is not None:
                from repro.sim.network import validate_platform_params
                try:
                    validate_platform_params(
                        preset, [k for k, _ in self.run_platform_params])
                except ValueError as exc:
                    raise PipelineConfigError(
                        f"bad run_platform_params: {exc}") from None
        if self.topology is not None:
            from repro.topology import TOPOLOGIES
            if self.topology not in TOPOLOGIES:
                raise PipelineConfigError(
                    f"unknown topology {self.topology!r}; choose from "
                    f"{sorted(TOPOLOGIES)}")
        if self.topology_params is not None:
            if self.topology is None:
                raise PipelineConfigError(
                    "topology_params given without a topology")
            from repro.topology import validate_topology_params
            try:
                validate_topology_params(
                    self.topology, [k for k, _ in self.topology_params])
            except ValueError as exc:
                raise PipelineConfigError(
                    f"bad topology_params: {exc}") from None
        if not isinstance(self.placement, str) or not self.placement:
            raise PipelineConfigError(
                f"placement must be a non-empty spec string, got "
                f"{self.placement!r}")
        from repro.sim.policy import resolve_policy
        try:
            # construction-time validation only; each simulated stage
            # builds its own fresh policy (the RNG is per-run state)
            resolve_policy(self.schedule_policy, self.schedule_seed)
        except ValueError as exc:
            raise PipelineConfigError(str(exc)) from None
        if self.placement != "block":
            from repro.topology import parse_placement_spec
            try:
                parse_placement_spec(self.placement)
            except ValueError as exc:
                raise PipelineConfigError(f"bad placement: {exc}") \
                    from None
        from repro.sim.queueing import resolve_queue_discipline
        try:
            resolve_queue_discipline(
                self.queue_discipline, dict(self.queue_params or ()))
        except ValueError as exc:
            raise PipelineConfigError(str(exc)) from None
        if self.queue_discipline not in (None, "fifo") \
                and self.topology is None:
            raise PipelineConfigError(
                f"queue_discipline {self.queue_discipline!r} needs a "
                f"routed execution fabric; set a topology")

    def _expand_scenario(self) -> None:
        """Resolve ``scenario`` to a :class:`Scenario` and adopt its
        execution dimensions.

        A dimension the scenario sets is adopted when the config still
        carries the field default; an explicit conflicting value is an
        error (scenarios compose with, never silently override, direct
        settings).  The scenario's fault content and schedule pin are
        *not* expanded into config fields — they apply only at the
        run/replay stages (see ``repro.pipeline.stages``), which keeps
        the canonical trace and its cache key scenario-independent.
        """
        if self.scenario is None:
            return
        from repro.errors import ScenarioError
        from repro.scenarios import get_scenario
        try:
            scn = get_scenario(self.scenario)
        except ScenarioError as exc:
            raise PipelineConfigError(str(exc)) from None
        object.__setattr__(self, "scenario", scn)
        if scn.has_fault_content() and self.fault_plan is not None:
            raise PipelineConfigError(
                f"scenario {scn.name!r} carries fault content and the "
                f"config sets fault_plan; use one or the other")
        if scn.pins_schedule() and (
                self.schedule_policy != "canonical"
                or self.schedule_seed is not None):
            raise PipelineConfigError(
                f"scenario {scn.name!r} pins the schedule policy and "
                f"the config sets schedule_policy/schedule_seed; use "
                f"one or the other")
        defaults = {f.name: f.default for f in fields(type(self))}
        for name, value in scn.dimensions().items():
            current = getattr(self, name)
            if current == defaults[name]:
                object.__setattr__(self, name, value)
                if name.endswith("_params"):
                    self._normalize_params(name)
            elif current != value:
                raise PipelineConfigError(
                    f"scenario {scn.name!r} sets {name}={value!r} but "
                    f"the config already has {name}={current!r}")

    def _normalize_params(self, field_name: str) -> None:
        """Normalize a params field (mapping or pair sequence) to a
        sorted tuple of ``(name, value)`` pairs, in place."""
        params = getattr(self, field_name)
        if params is None:
            return
        if isinstance(params, Mapping):
            items = list(params.items())
        else:
            try:
                items = [(k, v) for k, v in params]
            except (TypeError, ValueError):
                raise PipelineConfigError(
                    f"{field_name} must be a mapping or a sequence of "
                    f"(name, value) pairs, got {params!r}") from None
        norm = []
        for k, v in items:
            if not isinstance(k, str) or not k:
                raise PipelineConfigError(
                    f"{field_name} keys must be non-empty strings, "
                    f"got {k!r}")
            norm.append((k, v))
        object.__setattr__(
            self, field_name,
            tuple(sorted(norm, key=lambda kv: kv[0])) or None)

    def fingerprint(self) -> Dict[str, Any]:
        """Stable mapping of the fields that determine artifact content
        (cache bookkeeping fields are deliberately excluded)."""
        out = {}
        for f in fields(self):
            # retries and profiling are execution policy, not artifact
            # content (every stage is deterministic, so a retry
            # reproduces the result, and profiling only adds timers)
            if f.name in ("use_cache", "cache_dir", "stage_retries",
                          "stage_retry_backoff", "profile"):
                continue
            out[f.name] = getattr(self, f.name)
        # a fault plan enters the fingerprint by digest: a faulted trace
        # is different content, but the plan object itself is not JSONable
        if self.fault_plan is not None:
            out["fault_plan"] = (None if self.fault_plan.is_null()
                                 else self.fault_plan.digest())
        # likewise for scenarios: digest-keyed, not object-valued
        if self.scenario is not None:
            out["scenario"] = self.scenario.digest()
        return out

    def replace(self, **changes) -> "PipelineConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)
