"""The :class:`Pipeline` orchestrator: compose stages, thread the run
context through them, time every stage, and satisfy cacheable stages
from the artifact cache when the rolling content address matches.

There is exactly one code path from application to executed benchmark —
the CLI, the public API wrappers (:func:`repro.generate_benchmark` and
friends), ScalaReplay, and the evaluation harness all build (suffixes
of) this pipeline.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from repro import obs
from repro.errors import PipelineError, ReproError
from repro.pipeline.cache import cache_key
from repro.pipeline.config import PipelineConfig
from repro.pipeline.context import PipelineResult, RunContext
from repro.pipeline.stages import (AlignStage, CompileStage, EmitStage,
                                   ResolveStage, RunStage, Stage,
                                   TraceStage)


class Pipeline:
    """An ordered composition of :class:`~repro.pipeline.stages.Stage`."""

    def __init__(self, stages: Sequence[Stage]):
        stages = list(stages)
        if not stages:
            raise PipelineError("a pipeline needs at least one stage")
        names = [s.name for s in stages]
        if len(set(names)) != len(names):
            raise PipelineError(f"duplicate stage names: {names}")
        self.stages: List[Stage] = stages

    def run(self, config: Optional[PipelineConfig] = None, *,
            context: Optional[RunContext] = None) -> PipelineResult:
        """Execute every stage in order.

        Pass either a config (a fresh context is built from it) or a
        pre-populated context (entry artifacts such as a loaded trace go
        in ``context.artifacts``).
        """
        if (config is None) == (context is None):
            raise PipelineError("pass exactly one of config or context")
        ctx = context if context is not None else RunContext(config)
        t_start = time.perf_counter()
        with obs.span("pipeline.run",
                      app=ctx.config.app or ctx.config.name):
            for stage in self.stages:
                self._run_stage(ctx, stage)
        return PipelineResult(config=ctx.config, records=ctx.records,
                              artifacts=ctx.artifacts, cache=ctx.cache,
                              seconds=time.perf_counter() - t_start)

    def _run_stage(self, ctx: RunContext, stage: Stage) -> None:
        # graceful degradation: once a simulation stage salvaged a partial
        # (crashed/hung) run, downstream stages cannot trust the artifact
        # — a crashed rank's trace prefix is not a runnable program — so
        # the rest of the pipeline is skipped, keeping the prefix and the
        # fault report as the run's outputs
        if ctx.artifacts.get("degraded"):
            ctx.record(stage.name, 0.0, "skipped",
                       "degraded upstream (salvaged prefix only)")
            return
        t0 = time.perf_counter()
        # advance the rolling content address
        parts = stage.key_parts(ctx)
        if parts is None:
            ctx.key = None
        elif ctx.key is not None:
            ctx.key = cache_key(ctx.key, stage.name, parts)

        cache = ctx.cache if ctx.config.use_cache else None
        if cache is not None and stage.cacheable and ctx.key:
            if self._run_cached_stage(ctx, stage, cache, t0):
                return
        out = self._attempt(ctx, stage)
        # stages return a detail string, or (status, detail) to override
        # the cache status (e.g. "skipped" for a pass that wasn't needed)
        status, detail = out if isinstance(out, tuple) else (None, out)
        if status is None:
            status = "off"
        ctx.record(stage.name, time.perf_counter() - t0, status, detail)

    def _run_cached_stage(self, ctx: RunContext, stage: Stage, cache,
                          t0: float) -> bool:
        """Satisfy a cacheable stage from/through the artifact cache.

        Misses are computed under the cache's per-key cross-process
        lock, with a second cache read once the lock is held: when
        several workers (a parallel sweep) reach the same missing key,
        exactly one computes the artifact while the rest block, re-read,
        and record a hit.  Returns True when the stage was fully handled
        (the non-cacheable fallthrough in :meth:`_run_stage` handles the
        rest).
        """
        text = cache.get(ctx.key, stage.suffix, record=False)
        if text is None:
            with cache.lock(ctx.key):
                text = cache.get(ctx.key, stage.suffix, record=False)
                if text is None:
                    cache.record_miss()
                    out = self._attempt(ctx, stage)
                    status, detail = (out if isinstance(out, tuple)
                                      else (None, out))
                    if status is None:
                        # machine-readable record (CI asserts on this
                        # instead of scraping the human report)
                        cache.put(ctx.key, stage.serialize(ctx),
                                  stage.suffix)
                        obs.event("cache_miss", "pipeline.cache",
                                  stage=stage.name, key=ctx.key)
                        status = "miss"
                    ctx.record(stage.name, time.perf_counter() - t0,
                               status, detail)
                    return True
        # served from cache (either immediately or after waiting out
        # another worker's computation of the same artifact)
        cache.record_hit()
        detail = stage.deserialize(ctx, text)
        obs.event("cache_hit", "pipeline.cache", stage=stage.name,
                  key=ctx.key)
        ctx.record(stage.name, time.perf_counter() - t0, "hit", detail)
        return True

    def _attempt(self, ctx: RunContext, stage: Stage):
        """Run the stage under the config's per-stage retry policy.

        A stage that raises a :class:`ReproError` is re-run up to
        ``stage_retries`` times (with exponential backoff sleeps when
        ``stage_retry_backoff`` is set); the final failure propagates.
        Non-repro exceptions are programming errors and never retried.
        """
        attempts = 1 + ctx.config.stage_retries
        for attempt in range(attempts):
            try:
                with obs.span(f"pipeline.{stage.name}", attempt=attempt):
                    return stage.run(ctx)
            except ReproError as exc:
                if attempt + 1 >= attempts:
                    raise
                obs.count("pipeline.stage_retries")
                obs.event("stage_retry", "pipeline.retry",
                          stage=stage.name, attempt=attempt,
                          error=type(exc).__name__)
                backoff = ctx.config.stage_retry_backoff
                if backoff > 0:
                    time.sleep(backoff * (2 ** attempt))


def generation_stages() -> List[Stage]:
    """The trace-to-runnable-benchmark suffix (Algorithms 1 & 2, Table 1
    emission, compilation) — what ``repro generate`` runs."""
    return [AlignStage(), ResolveStage(), EmitStage(), CompileStage()]


def full_pipeline(run: bool = True) -> Pipeline:
    """The complete Fig. 1 flow: app → trace → align → resolve → emit →
    compile (→ run)."""
    stages: List[Stage] = [TraceStage()]
    stages.extend(generation_stages())
    if run:
        stages.append(RunStage())
    return Pipeline(stages)
