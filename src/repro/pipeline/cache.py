"""Content-addressed artifact cache for pipeline stages.

Layout (under the cache root, default ``.repro-cache/``)::

    .repro-cache/
      ab/
        ab3f...e1.trace     # serialized ScalaTrace trace
        ab91...07.ncptl     # generated coNCePTuaL source (JSON envelope)
      locks/
        ab/
          ab3f...e1.lock    # per-key cross-process lock (same sharding)

Keys are SHA-256 hashes over a JSON rendering of ``(upstream key, stage
name, stage config)`` — a rolling chain, so a stage's key changes
whenever *anything* upstream of it changes (application, rank count,
problem class, platform, or any earlier stage's configuration).
Artifacts are written atomically (temp file + rename) so a crashed or
concurrent run can never leave a truncated entry behind.

Both artifacts and their lock files are sharded by the first two hex
digits of the key, so hot service traffic (many concurrent submissions
over one shared cache) fans out across 256 directories instead of
serializing directory operations on a single flat ``locks/``.  Legacy
flat *artifacts* are migrated transparently: a read that misses the
sharded location probes the legacy flat location
(``<root>/<key><suffix>``) and, on a hit, moves the artifact into its
shard atomically — accounting exactly one hit for the read, never a
miss-plus-recompute.  Lock files carry no content, so there is nothing
to migrate: :meth:`ArtifactCache.lock` only ever takes the sharded
path.  An older-version process sharing the cache would lock the flat
``locks/<key>.lock`` instead — the two can then compute the same key
concurrently, which costs duplicate work but never corruption, since
artifact writes are atomic either way.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
from typing import Any, Iterator, Optional

from repro import obs

try:  # POSIX advisory file locking; absent on some platforms
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

#: cache format version; bump to invalidate all previously cached entries
CACHE_VERSION = 1


def cache_key(*parts: Any) -> str:
    """SHA-256 content address of ``parts`` (JSON-rendered, stable)."""
    payload = json.dumps([CACHE_VERSION, list(parts)], sort_keys=True,
                         default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ArtifactCache:
    """On-disk text-artifact store with hit/miss accounting."""

    def __init__(self, root: str):
        self.root = root
        self.hits = 0
        self.misses = 0

    def key(self, *parts: Any) -> str:
        """Content address of ``parts`` (see :func:`cache_key`)."""
        return cache_key(*parts)

    def path(self, key: str, suffix: str = "") -> str:
        """Sharded on-disk location of ``key``'s artifact."""
        return os.path.join(self.root, key[:2], key + suffix)

    def legacy_path(self, key: str, suffix: str = "") -> str:
        """Pre-sharding flat location of ``key``'s artifact (read-only:
        entries found here are migrated into their shard)."""
        return os.path.join(self.root, key + suffix)

    def get(self, key: str, suffix: str = "",
            record: bool = True) -> Optional[str]:
        """The cached artifact text, or None (counted as hit/miss).

        Probes the sharded location first, then the legacy flat layout;
        a legacy hit migrates the entry into its shard so the flat
        directory drains as it is read.  However the read is satisfied,
        it accounts **exactly one** hit or miss — the double-checked
        read under :meth:`lock` must see the same view, or two racing
        clients on a legacy-layout cache would each record a miss and
        recompute the artifact.

        ``record=False`` reads without touching the hit/miss accounting
        — used by the double-checked read under :meth:`lock`, whose
        outcome is accounted for explicitly by the caller.
        """
        text = self._read(self.path(key, suffix))
        if text is None:
            text = self._read(self.legacy_path(key, suffix))
            if text is not None:
                self._migrate(key, suffix)
        if text is None:
            if record:
                self.misses += 1
                obs.count("pipeline.cache_misses")
            return None
        if record:
            self.hits += 1
            obs.count("pipeline.cache_hits")
        return text

    @staticmethod
    def _read(path: str) -> Optional[str]:
        """The file's text, or None when absent/unreadable."""
        try:
            with open(path) as fh:
                return fh.read()
        except OSError:
            return None

    def _migrate(self, key: str, suffix: str) -> None:
        """Move a legacy flat entry into its shard (atomic, best-effort).

        ``os.replace`` is atomic within the cache filesystem, so a
        concurrent migrator or reader sees either layout but never a
        truncated entry; losing the race just means the other process
        already migrated the file.
        """
        path = self.path(key, suffix)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        try:
            os.replace(self.legacy_path(key, suffix), path)
            obs.count("pipeline.cache_migrated")
        except OSError:  # pragma: no cover - lost a benign migration race
            pass

    def record_hit(self) -> None:
        """Account one cache hit (for reads done with ``record=False``)."""
        self.hits += 1
        obs.count("pipeline.cache_hits")

    def record_miss(self) -> None:
        """Account one cache miss (for reads done with ``record=False``)."""
        self.misses += 1
        obs.count("pipeline.cache_misses")

    @contextlib.contextmanager
    def lock(self, key: str) -> Iterator[None]:
        """Cross-process advisory lock on ``key``.

        Serializes the *computation* of one artifact across concurrent
        pipeline runs (e.g. parallel sweep workers, concurrent service
        jobs): the first worker to reach a missing key computes it while
        the others block here, re-check the cache, and hit.  Lock files
        live under ``<root>/locks/<key[:2]>/`` — sharded like the
        artifacts themselves, so hot traffic does not serialize
        directory operations on one flat ``locks/`` directory.  On
        platforms without ``fcntl`` the lock degrades to a no-op —
        writes are still safe (atomic rename), only duplicate work is
        possible.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            yield
            return
        lock_dir = os.path.join(self.root, "locks", key[:2])
        os.makedirs(lock_dir, exist_ok=True)
        lock_path = os.path.join(lock_dir, key + ".lock")
        with open(lock_path, "w") as fh:
            fcntl.flock(fh, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(fh, fcntl.LOCK_UN)

    def put(self, key: str, text: str, suffix: str = "") -> str:
        """Store ``text`` under ``key`` atomically; returns the path."""
        path = self.path(key, suffix)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   prefix=".tmp-" + key[:8])
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(text)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def stats(self) -> str:
        """One-line hit/miss summary for reports."""
        return f"{self.hits} hit(s), {self.misses} miss(es)"
