"""Content-addressed artifact cache for pipeline stages.

Layout (under the cache root, default ``.repro-cache/``)::

    .repro-cache/
      ab/
        ab3f...e1.trace     # serialized ScalaTrace trace
        ab91...07.ncptl     # generated coNCePTuaL source (JSON envelope)

Keys are SHA-256 hashes over a JSON rendering of ``(upstream key, stage
name, stage config)`` — a rolling chain, so a stage's key changes
whenever *anything* upstream of it changes (application, rank count,
problem class, platform, or any earlier stage's configuration).
Artifacts are written atomically (temp file + rename) so a crashed or
concurrent run can never leave a truncated entry behind.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Optional

from repro import obs

#: cache format version; bump to invalidate all previously cached entries
CACHE_VERSION = 1


def cache_key(*parts: Any) -> str:
    """SHA-256 content address of ``parts`` (JSON-rendered, stable)."""
    payload = json.dumps([CACHE_VERSION, list(parts)], sort_keys=True,
                         default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ArtifactCache:
    """On-disk text-artifact store with hit/miss accounting."""

    def __init__(self, root: str):
        self.root = root
        self.hits = 0
        self.misses = 0

    def key(self, *parts: Any) -> str:
        return cache_key(*parts)

    def path(self, key: str, suffix: str = "") -> str:
        return os.path.join(self.root, key[:2], key + suffix)

    def get(self, key: str, suffix: str = "") -> Optional[str]:
        """The cached artifact text, or None (counted as hit/miss)."""
        path = self.path(key, suffix)
        try:
            with open(path) as fh:
                text = fh.read()
        except OSError:
            self.misses += 1
            obs.count("pipeline.cache_misses")
            return None
        self.hits += 1
        obs.count("pipeline.cache_hits")
        return text

    def put(self, key: str, text: str, suffix: str = "") -> str:
        """Store ``text`` under ``key`` atomically; returns the path."""
        path = self.path(key, suffix)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   prefix=".tmp-" + key[:8])
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(text)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def stats(self) -> str:
        return f"{self.hits} hit(s), {self.misses} miss(es)"
