"""repro.pipeline — the unified orchestration layer for the Fig. 1 flow.

One ``Stage``/``Pipeline`` abstraction drives application → ScalaTrace →
generator → coNCePTuaL → execution everywhere (CLI, public API,
ScalaReplay, the evaluation harness), with a typed
:class:`PipelineConfig`, a :class:`RunContext` threaded through every
stage, and a content-addressed :class:`ArtifactCache` for the expensive
serializable artifacts (traces and generated sources).

Quick start::

    from repro.pipeline import PipelineConfig, full_pipeline

    config = PipelineConfig(app="lu", nranks=8, use_cache=True)
    result = full_pipeline().run(config)
    print(result.report())      # per-stage timing + cache hits
    print(result.source)        # the generated benchmark
"""

from repro.pipeline.cache import ArtifactCache, cache_key
from repro.pipeline.config import PipelineConfig
from repro.pipeline.context import (PipelineResult, RunContext,
                                    StageRecord)
from repro.pipeline.core import (Pipeline, full_pipeline,
                                 generation_stages)
from repro.pipeline.stages import (AlignStage, CompileStage, EmitStage,
                                   ReplayStage, ResolveStage, RunStage,
                                   Stage, TraceStage)

__all__ = [
    "AlignStage",
    "ArtifactCache",
    "CompileStage",
    "EmitStage",
    "Pipeline",
    "PipelineConfig",
    "PipelineResult",
    "ReplayStage",
    "ResolveStage",
    "RunContext",
    "RunStage",
    "Stage",
    "StageRecord",
    "TraceStage",
    "cache_key",
    "full_pipeline",
    "generation_stages",
]
