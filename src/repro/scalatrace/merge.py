"""Inter-rank (radix) trace merging.

At MPI_Finalize time ScalaTrace combines the per-rank compressed traces
into one global trace whose RSDs carry rank *sets* (§3.1).  We reproduce
that with a binary merge tree: traces are merged pairwise, aligning the
two node sequences with an LCS over structural signatures.

Nodes that align merge by unioning their rank sets and re-expressing
parameter differences as closed-form :class:`~repro.util.expr.ParamExpr`
(e.g. a ring's ``dest = rank+1 mod N``) when possible, falling back to
per-rank tables — never discarding information.  Nodes that do not align
are interleaved in an order preserving both inputs' program orders, each
keeping its own rank set (this is how e.g. "rank 0 sends, ranks 1..N-1
receive" coexists inside one merged loop body).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.scalatrace.rsd import EventNode, LoopNode, Node, Trace
from repro.util.rankset import RankSet

_PARAM_FIELDS = ("peer", "size", "tag", "root")


def _try_merge_nodes(a: Node, b: Node,
                     comm_table: Dict[int, Tuple[int, ...]]) -> Optional[Node]:
    """Merged node covering both rank sets, or None if incompatible."""
    if isinstance(a, EventNode) and isinstance(b, EventNode):
        if a.signature() != b.signature() or a.instances != b.instances:
            return None
        comm_ranks = comm_table.get(a.comm_id)
        comm_size = len(comm_ranks) if comm_ranks else None
        index = {w: i for i, w in enumerate(comm_ranks)} if comm_ranks else {}
        a_cranks = [index.get(r, r) for r in a.ranks]
        b_cranks = [index.get(r, r) for r in b.ranks]
        merged = {}
        for name in _PARAM_FIELDS:
            fa, fb = getattr(a, name), getattr(b, name)
            if (fa is None) != (fb is None):
                return None
            if fa is None:
                merged[name] = None
                continue
            # merge in communicator-rank space (peers are comm-relative);
            # always succeeds (irregular variation falls back to the
            # lossless per-rank map)
            merged[name] = fa.merge_ranks(RankSet(a_cranks), fb,
                                          RankSet(b_cranks), comm_size)
        time_first = a.time_first.copy()
        time_first.merge(b.time_first)
        time_rest = a.time_rest.copy()
        time_rest.merge(b.time_rest)
        return EventNode(a.op, a.callsite, a.comm_id, a.ranks | b.ranks,
                         a.instances, merged["peer"], merged["size"],
                         merged["tag"], merged["root"], a.wait_offsets,
                         time_first, time_rest)
    if isinstance(a, LoopNode) and isinstance(b, LoopNode):
        if a.count != b.count:
            return None
        # bodies merge as an order-preserving supersequence: nodes present
        # on only one side keep their own rank sets (this is how "rank 0
        # sends, interior ranks receive then send" coexists in one loop).
        # Require at least one genuinely shared node, though — otherwise
        # any two equal-count loops would merge, and those spurious
        # matches displace collective alignment in the outer LCS.
        body = merge_node_lists(a.body, b.body, comm_table)
        if len(body) == len(a.body) + len(b.body):
            return None
        return LoopNode(a.count, body, a.ranks | b.ranks)
    return None


def _match_weight(node: Node) -> int:
    """Alignment priority of a successful match.

    Collectives dominate: when matching a point-to-point pair conflicts in
    order with matching a collective pair, the collective must win — this
    is how the merge realizes Algorithm 1's guarantee that one logical
    collective becomes one RSD.  Loops inherit the weight of their
    contents (they may carry collectives inside)."""
    if isinstance(node, EventNode):
        from repro.mpi.hooks import COLLECTIVE_OPS
        return 10_000 if node.op in COLLECTIVE_OPS else 1
    return sum(_match_weight(n) for n in node.body)


def _lcs_pairs(xs: List[Node], ys: List[Node],
               comm_table) -> List[Tuple[int, int, Node]]:
    """Maximum-weight common subsequence of mergeable nodes; returns
    matched index pairs with their pre-computed merged node."""
    n, m = len(xs), len(ys)
    merged_cache: Dict[Tuple[int, int], Optional[Node]] = {}

    def mergeable(i, j):
        key = (i, j)
        if key not in merged_cache:
            merged_cache[key] = _try_merge_nodes(xs[i], ys[j], comm_table)
        return merged_cache[key]

    # weighted LCS DP
    dp = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(n - 1, -1, -1):
        for j in range(m - 1, -1, -1):
            best = max(dp[i + 1][j], dp[i][j + 1])
            node = mergeable(i, j)
            if node is not None:
                best = max(best, dp[i + 1][j + 1] + _match_weight(node))
            dp[i][j] = best
    pairs = []
    i = j = 0
    while i < n and j < m:
        node = mergeable(i, j)
        if node is not None and \
                dp[i][j] == dp[i + 1][j + 1] + _match_weight(node):
            pairs.append((i, j, node))
            i += 1
            j += 1
        elif dp[i + 1][j] >= dp[i][j + 1]:
            i += 1
        else:
            j += 1
    obs.count("scalatrace.lcs_alignments", len(pairs))
    return pairs


def merge_node_lists(xs: List[Node], ys: List[Node],
                     comm_table) -> List[Node]:
    """Order-preserving merge (shortest common supersequence around the
    LCS of mergeable nodes)."""
    pairs = _lcs_pairs(xs, ys, comm_table)
    out: List[Node] = []
    xi = yi = 0
    for i, j, merged in pairs:
        out.extend(xs[xi:i])
        out.extend(ys[yi:j])
        out.append(merged)
        xi, yi = i + 1, j + 1
    out.extend(xs[xi:])
    out.extend(ys[yi:])
    return out


def merge_traces(traces: List[Trace]) -> Trace:
    """Binary (radix-tree) merge of per-rank traces into a global trace."""
    if not traces:
        raise ValueError("no traces to merge")
    world_size = traces[0].world_size
    comm_table = {}
    for t in traces:
        comm_table.update(t.comm_table)
    level = list(traces)
    with obs.span("scalatrace.merge", traces=len(traces)):
        depth = 0
        while len(level) > 1:
            depth += 1
            nxt = []
            for i in range(0, len(level) - 1, 2):
                nodes = merge_node_lists(level[i].nodes, level[i + 1].nodes,
                                         comm_table)
                nxt.append(Trace(world_size, nodes, comm_table))
                obs.count("scalatrace.pair_merges", 1)
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        obs.count("scalatrace.merge_depth", depth)
    result = level[0]
    result.comm_table = comm_table
    return result
