"""Inter-rank (radix) trace merging.

At MPI_Finalize time ScalaTrace combines the per-rank compressed traces
into one global trace whose RSDs carry rank *sets* (§3.1).  We reproduce
that with a binary merge tree: traces are merged pairwise, aligning the
two node sequences with an LCS over structural signatures.

Nodes that align merge by unioning their rank sets and re-expressing
parameter differences as closed-form :class:`~repro.util.expr.ParamExpr`
(e.g. a ring's ``dest = rank+1 mod N``) when possible, falling back to
per-rank tables — never discarding information.  Nodes that do not align
are interleaved in an order preserving both inputs' program orders, each
keeping its own rank set (this is how e.g. "rank 0 sends, ranks 1..N-1
receive" coexists inside one merged loop body).

Two throughput mechanisms sit on top of the pairwise LCS merge:

* an **identical-sequence fast path** — in the common SPMD case every
  rank records the same call structure, so the pairwise merge is gated
  by a rolling Rabin hash over rank-agnostic node fingerprints
  (:attr:`~repro.scalatrace.rsd.Node.mfp`) and, once structural identity
  is confirmed exactly, spliced position-by-position without running the
  O(n·m) LCS DP.  The splice is only taken when the diagonal alignment
  is *provably* what the DP would pick (see :func:`_diagonal_safe`), so
  output bytes never depend on which path ran;
* a **streaming accumulator** (:class:`TraceMergeAccumulator`) — a
  binomial binary counter over per-rank node lists that keeps at most
  ``log2(P)+1`` partial merges live while producing the exact same merge
  association tree as the level-order pairwise reduction it replaced.
  Ranks can be fed (in rank order) as they finish and their queues
  dropped immediately, which is what bounds the tracer's peak memory.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.scalatrace.rsd import EventNode, LoopNode, Node, Trace
from repro.util.rankset import RankSet

_PARAM_FIELDS = ("peer", "size", "tag", "root")

#: Process-wide toggle for the identical-sequence fast path; flipped by
#: :func:`set_merge_fastpath` (benchmarks and the byte-identity
#: regression tests use it to time/compare the pure-LCS baseline).
_FASTPATH = True


def set_merge_fastpath(enabled: bool) -> bool:
    """Enable/disable the identical-sequence merge fast path.

    Returns the previous setting so callers can restore it in a
    ``try/finally``.  The fast path never changes merge output — this
    exists so baselines and regression tests can exercise the LCS path
    on inputs the splice would otherwise shortcut."""
    global _FASTPATH
    prev = _FASTPATH
    _FASTPATH = bool(enabled)
    return prev


def _try_merge_nodes(a: Node, b: Node,
                     comm_table: Dict[int, Tuple[int, ...]]) -> Optional[Node]:
    """Merged node covering both rank sets, or None if incompatible."""
    if isinstance(a, EventNode) and isinstance(b, EventNode):
        if a.signature() != b.signature() or a.instances != b.instances:
            return None
        comm_ranks = comm_table.get(a.comm_id)
        comm_size = len(comm_ranks) if comm_ranks else None
        index = {w: i for i, w in enumerate(comm_ranks)} if comm_ranks else {}
        a_cranks = [index.get(r, r) for r in a.ranks]
        b_cranks = [index.get(r, r) for r in b.ranks]
        merged = {}
        for name in _PARAM_FIELDS:
            fa, fb = getattr(a, name), getattr(b, name)
            if (fa is None) != (fb is None):
                return None
            if fa is None:
                merged[name] = None
                continue
            # merge in communicator-rank space (peers are comm-relative);
            # always succeeds (irregular variation falls back to the
            # lossless per-rank map)
            merged[name] = fa.merge_ranks(RankSet(a_cranks), fb,
                                          RankSet(b_cranks), comm_size)
        time_first = a.time_first.copy()
        time_first.merge(b.time_first)
        time_rest = a.time_rest.copy()
        time_rest.merge(b.time_rest)
        return EventNode(a.op, a.callsite, a.comm_id, a.ranks | b.ranks,
                         a.instances, merged["peer"], merged["size"],
                         merged["tag"], merged["root"], a.wait_offsets,
                         time_first, time_rest)
    if isinstance(a, LoopNode) and isinstance(b, LoopNode):
        if a.count != b.count:
            return None
        # bodies merge as an order-preserving supersequence: nodes present
        # on only one side keep their own rank sets (this is how "rank 0
        # sends, interior ranks receive then send" coexists in one loop).
        # Require at least one genuinely shared node, though — otherwise
        # any two equal-count loops would merge, and those spurious
        # matches displace collective alignment in the outer LCS.
        body = merge_node_lists(a.body, b.body, comm_table)
        if len(body) == len(a.body) + len(b.body):
            return None
        return LoopNode(a.count, body, a.ranks | b.ranks)
    return None


def _match_weight(node: Node) -> int:
    """Alignment priority of a successful match.

    Collectives dominate: when matching a point-to-point pair conflicts in
    order with matching a collective pair, the collective must win — this
    is how the merge realizes Algorithm 1's guarantee that one logical
    collective becomes one RSD.  Loops inherit the weight of their
    contents (they may carry collectives inside)."""
    if isinstance(node, EventNode):
        from repro.mpi.hooks import COLLECTIVE_OPS
        return 10_000 if node.op in COLLECTIVE_OPS else 1
    return sum(_match_weight(n) for n in node.body)


def _seq_mfp(nodes: List[Node]) -> int:
    """Rolling Rabin hash of a node sequence's rank-agnostic merge
    fingerprints (same field as the compressor's window hashes)."""
    from repro.scalatrace.rsd import FP_BASE, FP_MOD
    h = 0
    for n in nodes:
        h = (h * FP_BASE + n.mfp) % FP_MOD
    return h


def _identical_structure(a: Node, b: Node) -> bool:
    """Exact structural identity as the merge fast path requires it.

    For events this is precisely the precondition under which
    :func:`_try_merge_nodes` succeeds unconditionally (``merge_ranks``
    never fails): same signature, same instance count, same parameter
    presence pattern.  For loops: same count, same body length, and
    pairwise identical bodies.  Fingerprints got us here cheaply; this
    walk is what makes the fast path collision-proof."""
    if isinstance(a, EventNode):
        return (isinstance(b, EventNode)
                and a.sig == b.sig
                and a.instances == b.instances
                and (a.peer is None) == (b.peer is None)
                and (a.size is None) == (b.size is None)
                and (a.tag is None) == (b.tag is None)
                and (a.root is None) == (b.root is None))
    if not isinstance(b, LoopNode):
        return False
    assert isinstance(a, LoopNode)
    return (a.count == b.count
            and len(a.body) == len(b.body)
            and all(_identical_structure(x, y)
                    for x, y in zip(a.body, b.body)))


def _event_keys(node: Node) -> set:
    """(signature, instances) of every event in a node's subtree."""
    keys = set()
    stack = [node]
    while stack:
        n = stack.pop()
        if isinstance(n, EventNode):
            keys.add((n.sig, n.instances))
        else:
            stack.extend(n.body)
    return keys


def _diagonal_safe(nodes: List[Node]) -> bool:
    """True when the all-diagonal alignment of ``nodes`` against a
    structurally identical copy is provably the alignment the weighted
    LCS DP picks — the condition for the splice to be byte-identical.

    Event↔event cross matches are weight-conserving (the merged node
    weighs exactly what each side weighs), so any alignment built from
    them totals at most the diagonal's weight, and the traceback's
    match-first tie-break then yields the diagonal.  The only way an
    off-diagonal alignment can *out-weigh* the diagonal is a loop↔loop
    cross merge, whose supersequence body can weigh more than either
    side.  Such a merge needs equal counts and at least one shared body
    node — so the fast path is safe whenever no two distinct loops in
    the list have equal counts and overlapping event sets.  Compressed
    SPMD traces almost never trip this (distinct phases use distinct
    call sites); when they do we conservatively fall back to the DP."""
    loops = [n for n in nodes if isinstance(n, LoopNode)]
    if len(loops) < 2:
        return True
    by_count: Dict[int, List[LoopNode]] = {}
    for n in loops:
        by_count.setdefault(n.count, []).append(n)
    for group in by_count.values():
        if len(group) < 2:
            continue
        keysets = [_event_keys(n) for n in group]
        for i in range(len(keysets)):
            for j in range(i + 1, len(keysets)):
                if keysets[i] & keysets[j]:
                    return False
    return True


def _splice_identical(xs: List[Node], ys: List[Node],
                      comm_table) -> Optional[List[Node]]:
    """Position-wise merge of structurally identical sequences; None if
    any pair refuses (cannot happen per `_identical_structure`'s
    contract, kept as a defensive fallback to the DP)."""
    out: List[Node] = []
    for x, y in zip(xs, ys):
        merged = _try_merge_nodes(x, y, comm_table)
        if merged is None:
            return None
        out.append(merged)
    return out


def _lcs_pairs(xs: List[Node], ys: List[Node],
               comm_table) -> List[Tuple[int, int, Node]]:
    """Maximum-weight common subsequence of mergeable nodes; returns
    matched index pairs with their pre-computed merged node."""
    n, m = len(xs), len(ys)
    obs.count("scalatrace.lcs_cells", n * m)
    merged_cache: Dict[Tuple[int, int], Optional[Node]] = {}

    def mergeable(i, j):
        key = (i, j)
        if key not in merged_cache:
            merged_cache[key] = _try_merge_nodes(xs[i], ys[j], comm_table)
        return merged_cache[key]

    # weighted LCS DP
    dp = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(n - 1, -1, -1):
        for j in range(m - 1, -1, -1):
            best = max(dp[i + 1][j], dp[i][j + 1])
            node = mergeable(i, j)
            if node is not None:
                best = max(best, dp[i + 1][j + 1] + _match_weight(node))
            dp[i][j] = best
    pairs = []
    i = j = 0
    while i < n and j < m:
        node = mergeable(i, j)
        if node is not None and \
                dp[i][j] == dp[i + 1][j + 1] + _match_weight(node):
            pairs.append((i, j, node))
            i += 1
            j += 1
        elif dp[i + 1][j] >= dp[i][j + 1]:
            i += 1
        else:
            j += 1
    obs.count("scalatrace.lcs_alignments", len(pairs))
    return pairs


def merge_node_lists(xs: List[Node], ys: List[Node],
                     comm_table) -> List[Node]:
    """Order-preserving merge (shortest common supersequence around the
    LCS of mergeable nodes).

    Identical-sequence fast path: when both sides have the same length
    and the same rolling merge fingerprint, an exact structural walk
    confirms pairwise identity and the sequences are spliced
    position-by-position, skipping the O(n·m) DP.  Gated further by
    :func:`_diagonal_safe` so the splice is byte-identical to what the
    DP's traceback would produce; any doubt falls through to the DP."""
    if _FASTPATH and xs and len(xs) == len(ys) \
            and _seq_mfp(xs) == _seq_mfp(ys) \
            and all(_identical_structure(x, y) for x, y in zip(xs, ys)) \
            and _diagonal_safe(xs):
        out = _splice_identical(xs, ys, comm_table)
        if out is not None:
            obs.count("scalatrace.merge_fastpath_hits", 1)
            return out
    pairs = _lcs_pairs(xs, ys, comm_table)
    out: List[Node] = []
    xi = yi = 0
    for i, j, merged in pairs:
        out.extend(xs[xi:i])
        out.extend(ys[yi:j])
        out.append(merged)
        xi, yi = i + 1, j + 1
    out.extend(xs[xi:])
    out.extend(ys[yi:])
    return out


class TraceMergeAccumulator:
    """Streaming binary-counter merge of per-rank node lists.

    Feed node lists one rank at a time, **in rank order**, and read the
    merged result off :meth:`result`.  Internally this is a binomial
    binary counter: singleton lists merge into span-2 partials, equal
    span partials merge on arrival, so at most ``log2(P)+1`` partial
    merges are ever live — the seam that lets the tracer drop each
    rank's compression queue the moment that rank finalizes, instead of
    holding all P per-rank traces until run end.

    Byte-identity contract: finalizing the counter by folding the
    remaining partials smallest-first produces *exactly* the merge
    association tree of the level-order pairwise reduction this class
    replaced (the tie-off of an incomplete binary tree is the same
    either way; ``tests/scalatrace/test_merge.py`` pins this against a
    reference reduction on every app preset), so results are
    byte-identical to the pre-streaming merge for any rank count.
    """

    def __init__(self, world_size: Optional[int] = None,
                 comm_table: Optional[Dict[int, Tuple[int, ...]]] = None):
        self.world_size = world_size
        #: comm_id -> ordered world ranks; grows as rank tables arrive.
        #: Any comm referenced by a fed node list must already be
        #: present (callers feed each rank's table alongside its nodes).
        self.comm_table: Dict[int, Tuple[int, ...]] = dict(comm_table or {})
        #: (span, nodes) partial merges, largest span first.
        self._partials: List[Tuple[int, List[Node]]] = []
        #: How many per-rank lists have been fed.
        self.fed = 0

    def add(self, trace: Trace) -> None:
        """Feed one per-rank trace (nodes + comm table)."""
        if self.world_size is None:
            self.world_size = trace.world_size
        self.comm_table.update(trace.comm_table)
        self.add_nodes(trace.nodes)

    def add_nodes(self, nodes: List[Node],
                  comm_table: Optional[Dict[int, Tuple[int, ...]]] = None
                  ) -> None:
        """Feed one rank's node list (the Trace-free seam the streaming
        tracer uses); merges equal-span partials immediately."""
        if comm_table:
            self.comm_table.update(comm_table)
        span = 1
        while self._partials and self._partials[-1][0] == span:
            _, prev = self._partials.pop()
            nodes = merge_node_lists(prev, nodes, self.comm_table)
            obs.count("scalatrace.pair_merges", 1)
            span *= 2
        self._partials.append((span, nodes))
        self.fed += 1

    def live_node_count(self) -> int:
        """Nodes currently held across all partial merges (the term the
        tracer samples into ``scalatrace.nodes_live_peak``)."""
        from repro.scalatrace.rsd import count_nodes
        return sum(count_nodes(nodes) for _, nodes in self._partials)

    def result(self) -> Trace:
        """Finalize: fold remaining partials smallest-first (earlier
        ranks stay the left operand) and return the merged trace."""
        if not self._partials:
            raise ValueError("no traces to merge")
        obs.count("scalatrace.merge_depth", (self.fed - 1).bit_length())
        span, nodes = self._partials[-1]
        for pspan, prev in reversed(self._partials[:-1]):
            nodes = merge_node_lists(prev, nodes, self.comm_table)
            obs.count("scalatrace.pair_merges", 1)
            span += pspan
        self._partials = [(span, nodes)]
        if self.world_size is None:
            raise ValueError("accumulator was never told a world size")
        return Trace(self.world_size, nodes, self.comm_table)


def merge_traces(traces: List[Trace]) -> Trace:
    """Binary (radix-tree) merge of per-rank traces into a global trace.

    Implemented on :class:`TraceMergeAccumulator`; output is
    byte-identical to the level-order pairwise reduction."""
    if not traces:
        raise ValueError("no traces to merge")
    world_size = traces[0].world_size
    comm_table: Dict[int, Tuple[int, ...]] = {}
    for t in traces:
        comm_table.update(t.comm_table)
    with obs.span("scalatrace.merge", traces=len(traces)):
        if len(traces) == 1:
            obs.count("scalatrace.merge_depth", 0)
            result = traces[0]
        else:
            acc = TraceMergeAccumulator(world_size, comm_table)
            for t in traces:
                acc.add_nodes(t.nodes)
            result = acc.result()
    result.comm_table = comm_table
    return result
