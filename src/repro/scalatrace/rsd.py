"""RSD/PRSD trace data model (ScalaTrace's compressed representation).

An application trace is a sequence of nodes:

* :class:`EventNode` — one MPI call site.  Covers many *instances* (loop
  iterations) and many *ranks*; parameters that vary are captured without
  loss by :class:`ParamField`.
* :class:`LoopNode` — a Power-RSD: ``count`` repetitions of a nested node
  sequence, discovered by on-the-fly loop compression.

The two mechanisms of compression that keep the trace near-constant size
(the paper's §3.1) are visible directly in the model: loop folding grows
``count`` instead of the node list, and inter-rank merging grows the
:class:`~repro.util.rankset.RankSet` (plus a closed-form
:class:`~repro.util.expr.ParamExpr` such as "peer = rank+1 mod N") instead
of duplicating nodes.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import TraceError
from repro.util.expr import ParamExpr
from repro.util.histogram import TimeHistogram
from repro.util.rankset import RankSet
from repro.util.valueseq import ValueSeq


class ParamField:
    """A per-event parameter that may vary across loop iterations and/or
    across ranks, stored losslessly in the most compact available form.

    Exactly one representation is active:

    * ``seq``  — a :class:`ValueSeq` of per-iteration values, identical on
      every participating rank (covers the single-rank case trivially);
    * ``expr`` — a :class:`ParamExpr` giving a per-rank value that is
      constant across iterations (e.g. ``rank+1 mod N``);
    * ``rank_map`` — rank → :class:`ValueSeq`, the fully general lossless
      fallback for parameters that vary per rank *and* per iteration in a
      pattern with no closed form (e.g. CG's butterfly partners,
      ``rank XOR 2^k``).  Trace size then grows with the rank count for
      this one RSD — the price of losslessness for irregular patterns.

    Ranks in ``expr`` and ``rank_map`` are *communicator* ranks.
    """

    __slots__ = ("seq", "expr", "rank_map")

    def __init__(self, seq: Optional[ValueSeq] = None,
                 expr: Optional[ParamExpr] = None,
                 rank_map: Optional[Dict[int, ValueSeq]] = None):
        if sum(x is not None for x in (seq, expr, rank_map)) != 1:
            raise TraceError(
                "ParamField needs exactly one of seq/expr/rank_map")
        self.seq = seq
        self.expr = expr
        self.rank_map = rank_map

    @classmethod
    def of(cls, value) -> "ParamField":
        return cls(seq=ValueSeq.constant(value, 1))

    @classmethod
    def from_seq(cls, seq: ValueSeq) -> "ParamField":
        return cls(seq=seq)

    @classmethod
    def from_expr(cls, expr: ParamExpr) -> "ParamField":
        return cls(expr=expr)

    # -- queries ------------------------------------------------------------
    def is_constant(self) -> bool:
        if self.seq is not None:
            return self.seq.is_constant()
        if self.expr is not None:
            return self.expr.is_constant()
        return False

    def constant_value(self):
        if self.seq is not None:
            return self.seq.value
        if self.expr is not None:
            return self.expr.constant_value()
        raise TraceError("rank_map fields have no single constant value")

    @staticmethod
    def _seq_at(seq: ValueSeq, instance: int):
        if seq.is_constant():
            return seq.value
        return seq[instance]

    def value_at(self, rank: int, instance: int):
        """Concrete value for a given (communicator) rank and instance."""
        if self.seq is not None:
            return self._seq_at(self.seq, instance)
        if self.expr is not None:
            return self.expr.evaluate(rank)
        try:
            return self._seq_at(self.rank_map[rank], instance)
        except KeyError:
            raise TraceError(f"rank {rank} missing from rank_map") from None

    def instances(self) -> Optional[int]:
        """Number of recorded instances, or None for expr fields (which are
        instance-count agnostic)."""
        if self.seq is not None and not self.seq.is_constant():
            return len(self.seq)
        if self.rank_map is not None:
            lens = {len(s) for s in self.rank_map.values()
                    if not s.is_constant()}
            if lens:
                return max(lens)
        return None

    # -- composition ---------------------------------------------------------
    @staticmethod
    def _expanded(seq: ValueSeq, count: int) -> ValueSeq:
        return (ValueSeq.constant(seq.value, count) if seq.is_constant()
                else seq)

    def concat(self, other: "ParamField", my_count: int,
               other_count: int) -> Optional["ParamField"]:
        """Field covering my instances followed by ``other``'s (loop
        folding; counts are per-rank instance counts).  Returns None if
        the fields cannot combine (e.g. differing expressions)."""
        if self.seq is not None and other.seq is not None:
            a = self._expanded(self.seq, my_count)
            b = self._expanded(other.seq, other_count)
            return ParamField(seq=a.concat(b))
        if self.expr is not None and other.expr is not None \
                and self.expr == other.expr:
            return ParamField(expr=self.expr)
        if self.rank_map is not None and other.rank_map is not None \
                and set(self.rank_map) == set(other.rank_map):
            merged = {}
            for r, s in self.rank_map.items():
                merged[r] = self._expanded(s, my_count).concat(
                    self._expanded(other.rank_map[r], other_count))
            return ParamField(rank_map=merged)
        return None

    def _seq_for(self, rank: int) -> ValueSeq:
        if self.seq is not None:
            return self.seq
        if self.expr is not None:
            return ValueSeq.constant(self.expr.evaluate(rank), 1)
        return self.rank_map[rank]

    @staticmethod
    def _constant_samples(field: "ParamField", ranks) -> Optional[list]:
        """(rank, int) samples if the field is constant-per-rank with
        integer values on every given rank; else None."""
        out = []
        for r in ranks:
            s = field._seq_for(r)
            if not s.is_constant():
                return None
            v = s.value
            if not isinstance(v, int):
                return None
            out.append((r, v))
        return out

    def merge_ranks(self, my_ranks: RankSet, other: "ParamField",
                    other_ranks: RankSet,
                    comm_size: Optional[int]) -> "ParamField":
        """Field covering both rank sets (inter-rank merge).  Always
        succeeds: closed forms are preferred; failing that, the lossless
        per-rank ``rank_map`` fallback is used."""
        if self.seq is not None and other.seq is not None \
                and self.seq == other.seq:
            return ParamField(seq=self.seq)
        a = self._constant_samples(self, my_ranks)
        b = self._constant_samples(other, other_ranks)
        if a is not None and b is not None:
            return ParamField(expr=ParamExpr.infer(a + b, comm_size))
        m = {r: self._seq_for(r) for r in my_ranks}
        m.update({r: other._seq_for(r) for r in other_ranks})
        # compact: identical sequences everywhere collapse back to seq
        seqs = list(m.values())
        if all(s == seqs[0] for s in seqs[1:]):
            return ParamField(seq=seqs[0])
        return ParamField(rank_map=m)

    # -- identity ---------------------------------------------------------------
    def _key(self):
        if self.seq is not None:
            return ("seq", tuple(self.seq.runs))
        if self.expr is not None:
            return ("expr", self.expr._key())
        return ("map", tuple(sorted(
            (r, tuple(s.runs)) for r, s in self.rank_map.items())))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ParamField):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def serialize(self) -> str:
        if self.seq is not None:
            return "Q" + self.seq.serialize()
        if self.expr is not None:
            return "E" + self.expr.serialize()
        return "M" + ";".join(
            f"{r}={s.serialize()}"
            for r, s in sorted(self.rank_map.items()))

    @classmethod
    def parse(cls, text: str) -> "ParamField":
        if text.startswith("Q"):
            return cls(seq=ValueSeq.parse(text[1:]))
        if text.startswith("E"):
            return cls(expr=ParamExpr.parse(text[1:]))
        if text.startswith("M"):
            m = {}
            for part in text[1:].split(";"):
                r, s = part.split("=", 1)
                m[int(r)] = ValueSeq.parse(s)
            return cls(rank_map=m)
        raise TraceError(f"bad ParamField: {text!r}")

    def __repr__(self) -> str:
        return f"ParamField({self.serialize()})"


#: Modulus/base of the structural fingerprint space.  Fingerprints are
#: Rabin-style rolling hashes over node structure, kept in a prime field
#: so :class:`~repro.scalatrace.compress.CompressionQueue` can compare a
#: whole window of nodes with one subtraction (see ``docs/PERFORMANCE.md``).
FP_MOD = (1 << 61) - 1
FP_BASE = 1_000_003


class Node:
    """Base class of trace nodes.

    ``fp`` is a structural *fingerprint*: a stable hash of exactly the
    fields :func:`~repro.scalatrace.compress.nodes_match` inspects (call
    site identity, rank set, loop shape — never per-iteration parameters
    or timing).  Two nodes that match always share a fingerprint, so
    ``fp`` inequality disproves a match in O(1); equality is confirmed
    structurally before any fold, keeping compression output independent
    of hash collisions.  Nodes are never structurally mutated after
    construction, so the fingerprint is computed once in ``__init__``.

    ``mfp`` is the *merge* fingerprint: like ``fp`` but rank-agnostic
    (and count/instance-agnostic), so the same call structure recorded on
    two different ranks hashes identically.  The inter-rank merge uses a
    rolling hash over ``mfp`` to gate its identical-sequence fast path;
    as with ``fp``, equality is always confirmed structurally before it
    changes behaviour, so collisions cannot alter merge output.
    """

    __slots__ = ("ranks", "fp", "mfp")

    def iter_events(self) -> Iterator["EventNode"]:
        raise NotImplementedError

    def event_instances(self, rank: int) -> int:
        """Number of concrete MPI events this node expands to on ``rank``."""
        raise NotImplementedError


class EventNode(Node):
    """One MPI call site (an RSD).

    ``instances`` is the per-rank repetition count (identical across the
    rank set — nodes with differing counts are never merged).

    Timing follows ScalaTrace's path-aware summarization (§3.1: "the time
    spent in the first iteration generally differs significantly from the
    times spent in subsequent iterations"): ``time_first`` holds the
    computation delta preceding each rank's *first* instance of this
    event, ``time_rest`` the deltas of all subsequent instances.  The
    ``time`` property exposes the merged aggregate.
    """

    __slots__ = ("op", "callsite", "comm_id", "instances", "peer", "size",
                 "tag", "root", "wait_offsets", "time_first", "time_rest",
                 "sig")

    def __init__(self, op: str, callsite, comm_id: int, ranks: RankSet,
                 instances: int = 1,
                 peer: Optional[ParamField] = None,
                 size: Optional[ParamField] = None,
                 tag: Optional[ParamField] = None,
                 root: Optional[ParamField] = None,
                 wait_offsets: Optional[Tuple[int, ...]] = None,
                 time_first: Optional[TimeHistogram] = None,
                 time_rest: Optional[TimeHistogram] = None):
        self.op = op
        self.callsite = callsite
        self.comm_id = comm_id
        self.ranks = ranks
        self.instances = instances
        self.peer = peer
        self.size = size
        self.tag = tag
        self.root = root
        self.wait_offsets = wait_offsets
        self.time_first = (time_first if time_first is not None
                           else TimeHistogram())
        self.time_rest = (time_rest if time_rest is not None
                          else TimeHistogram())
        self.sig = ("event", op, callsite, comm_id, wait_offsets)
        self.fp = hash(("event", op, callsite, comm_id, wait_offsets,
                        ranks)) % FP_MOD
        # Rank/instance-agnostic: two ranks recording the same call site
        # get the same merge fingerprint (instances are compared exactly
        # by the merge's structural-identity walk, not hashed here, so
        # in-place instance bumps in the compressor can't stale it).
        self.mfp = hash(self.sig) % FP_MOD

    @property
    def time(self) -> TimeHistogram:
        """Aggregate of first-instance and subsequent-instance deltas."""
        merged = self.time_first.copy()
        merged.merge(self.time_rest)
        return merged

    def sample_count(self) -> int:
        """Total recorded delta samples (== concrete instances covered)."""
        return self.time_first.count + self.time_rest.count

    def first_period(self) -> Optional[int]:
        """Per-rank instance stride at which first-iteration samples
        occur: instance k is a loop-entry first iff k % period == 0.
        None when there are no first samples or the counts are uneven."""
        nr = max(len(self.ranks), 1)
        firsts = self.time_first.count // nr
        total = self.sample_count() // nr
        if firsts <= 0 or total <= 0 or total % firsts:
            return None
        return total // firsts

    def signature(self) -> tuple:
        """Structural identity used to decide whether two nodes *could* be
        the same call site (params may still differ and be merged).
        Cached at construction — every identity field is immutable."""
        return self.sig

    def iter_events(self) -> Iterator["EventNode"]:
        yield self

    def event_instances(self, rank: int) -> int:
        return self.instances if rank in self.ranks else 0

    def param_value(self, field_name: str, rank: int, instance: int):
        field: Optional[ParamField] = getattr(self, field_name)
        if field is None:
            return None
        return field.value_at(rank, instance)

    def copy(self) -> "EventNode":
        return EventNode(self.op, self.callsite, self.comm_id, self.ranks,
                         self.instances, self.peer, self.size, self.tag,
                         self.root, self.wait_offsets,
                         self.time_first.copy(), self.time_rest.copy())

    def __repr__(self) -> str:
        return (f"EventNode({self.op}, ranks={self.ranks.serialize()}, "
                f"x{self.instances})")


class LoopNode(Node):
    """A Power-RSD: ``count`` repetitions of ``body``.

    ``body_fp`` is the rolling fingerprint of the body sequence in the
    same field the :class:`~repro.scalatrace.compress.CompressionQueue`
    uses for its tail windows, so "does this loop's body equal that
    w-node tail?" is a single integer comparison.
    """

    __slots__ = ("count", "body", "body_fp")

    def __init__(self, count: int, body: List[Node], ranks: RankSet):
        if count < 1:
            raise TraceError("loop count must be >= 1")
        self.count = count
        self.body = list(body)
        self.ranks = ranks
        h = 0
        hm = 0
        for node in self.body:
            h = (h * FP_BASE + node.fp) % FP_MOD
            hm = (hm * FP_BASE + node.mfp) % FP_MOD
        self.body_fp = h
        self.fp = hash(("loop", count, ranks, len(self.body),
                        h)) % FP_MOD
        # Count excluded on purpose: ``bump_count`` (the hot streaming
        # absorb path) must stay a single-hash refresh of ``fp``; the
        # merge fast path compares counts exactly in its identity walk.
        self.mfp = hash(("loop", len(self.body), hm)) % FP_MOD

    def bump_count(self, delta: int) -> None:
        """Increase the iteration count in place, refreshing the cached
        whole-node fingerprint (``body_fp`` is count-independent and
        stays valid).

        Only the compression queue may call this, and only on loops it
        built itself — in-place absorption is what keeps streaming
        compression O(window) per event instead of rebuilding the loop's
        node tree for every absorbed iteration.
        """
        self.count += delta
        self.fp = hash(("loop", self.count, self.ranks, len(self.body),
                        self.body_fp)) % FP_MOD

    def signature(self) -> tuple:
        return ("loop", self.count, tuple(n.signature() for n in self.body))

    def iter_events(self) -> Iterator[EventNode]:
        for node in self.body:
            yield from node.iter_events()

    def event_instances(self, rank: int) -> int:
        if rank not in self.ranks:
            return 0
        return sum(n.event_instances(rank) for n in self.body) * self.count

    def __repr__(self) -> str:
        return f"LoopNode(x{self.count}, |body|={len(self.body)})"


def count_nodes(nodes: List[Node]) -> int:
    """Total number of nodes in a forest, loop bodies included.

    This is the unit the streaming pipeline's memory accounting is
    expressed in (``scalatrace.nodes_live_peak``): live *nodes*, not raw
    events, are what a bounded-memory tracer is allowed to hold."""
    total = 0
    for n in nodes:
        total += 1
        if isinstance(n, LoopNode):
            total += count_nodes(n.body)
    return total


class Trace:
    """A complete (possibly multi-rank) compressed trace."""

    def __init__(self, world_size: int, nodes: Optional[List[Node]] = None,
                 comm_table: Optional[Dict[int, Tuple[int, ...]]] = None):
        self.world_size = world_size
        self.nodes: List[Node] = nodes if nodes is not None else []
        #: comm_id -> ordered world ranks
        self.comm_table: Dict[int, Tuple[int, ...]] = comm_table or {
            0: tuple(range(world_size))}

    def comm_ranks(self, comm_id: int) -> Tuple[int, ...]:
        try:
            return self.comm_table[comm_id]
        except KeyError:
            raise TraceError(f"unknown communicator {comm_id}") from None

    def node_count(self) -> int:
        """Total node count (a proxy for trace size; the compression
        benchmarks assert this stays near-constant as ranks/iterations
        grow)."""
        return count_nodes(self.nodes)

    def event_count(self, rank: Optional[int] = None) -> int:
        """Number of concrete MPI events (decompressed) for one rank or
        summed over all ranks."""
        ranks = range(self.world_size) if rank is None else [rank]
        total = 0
        for r in ranks:
            total += self._count_rank(self.nodes, r)
        return total

    def _count_rank(self, nodes, rank) -> int:
        total = 0
        for n in nodes:
            if rank not in n.ranks:
                continue
            if isinstance(n, EventNode):
                total += n.instances
            else:
                total += self._count_rank(n.body, rank) * n.count
        return total

    def expr_rank(self, comm_id: int, world_rank: int) -> int:
        """The rank value a ParamExpr should be evaluated with: expressions
        are inferred in *communicator* rank space (peers are comm-relative),
        so world ranks must be translated first."""
        ranks = self.comm_ranks(comm_id)
        try:
            return ranks.index(world_rank)
        except ValueError:
            raise TraceError(
                f"rank {world_rank} not in communicator {comm_id}") from None

    def iter_rank(self, rank: int) -> Iterator["ConcreteEvent"]:
        """Decompress this rank's event stream (in program order)."""
        counters: Dict[int, int] = {}
        yield from _expand(self, self.nodes, rank, counters)

    def __repr__(self) -> str:
        return (f"Trace(world={self.world_size}, nodes={self.node_count()}, "
                f"events={self.event_count()})")


class ConcreteEvent:
    """A fully decompressed per-rank event, as used by replay, statistics,
    and the generator's traversal algorithms."""

    __slots__ = ("rank", "op", "comm_id", "peer", "size", "tag", "root",
                 "wait_offsets", "node", "instance")

    def __init__(self, rank, op, comm_id, peer, size, tag, root,
                 wait_offsets, node, instance):
        self.rank = rank
        self.op = op
        self.comm_id = comm_id
        self.peer = peer
        self.size = size
        self.tag = tag
        self.root = root
        self.wait_offsets = wait_offsets
        self.node = node
        self.instance = instance

    def key(self) -> tuple:
        """Semantic identity (ignores which node produced the event)."""
        return (self.rank, self.op, self.comm_id, self.peer, self.size,
                self.tag, self.root, self.wait_offsets)

    def __repr__(self) -> str:
        return (f"ConcreteEvent(rank={self.rank}, {self.op}, "
                f"peer={self.peer}, size={self.size})")


def _expand(trace: Trace, nodes: List[Node], rank: int,
            counters: Dict[int, int]) -> Iterator[ConcreteEvent]:
    for node in nodes:
        if rank not in node.ranks:
            continue
        if isinstance(node, EventNode):
            erank = trace.expr_rank(node.comm_id, rank)
            for _ in range(node.instances):
                k = counters.get(id(node), 0)
                counters[id(node)] = k + 1
                yield ConcreteEvent(
                    rank, node.op, node.comm_id,
                    node.param_value("peer", erank, k),
                    node.param_value("size", erank, k),
                    node.param_value("tag", erank, k),
                    node.param_value("root", erank, k),
                    node.wait_offsets, node, k)
        else:
            for _ in range(node.count):
                yield from _expand(trace, node.body, rank, counters)
