"""On-the-fly intra-rank loop compression (RSD → PRSD folding).

This is ScalaTrace's core compression step (§3.1): as events stream in,
repeated tails of the trace queue are folded into :class:`LoopNode`\\ s so
that a 1000-iteration communication loop occupies a handful of nodes
instead of thousands.  Three rewrite rules run to fixpoint after every
append:

* **coalesce** — two adjacent loops with matching bodies merge their
  iteration counts;
* **absorb**  — a loop followed by one more copy of its body increments
  its count;
* **fold**    — two adjacent copies of a w-node window become a loop with
  count 2.

Two nodes "match" when they are the same call site (op, stack signature,
communicator, wait structure); parameters that differ per iteration are
concatenated into :class:`~repro.scalatrace.rsd.ParamField` sequences, so
folding is always lossless.
"""

from __future__ import annotations

from typing import List, Optional

from repro import obs
from repro.mpi.hooks import COLLECTIVE_OPS
from repro.scalatrace.rsd import EventNode, LoopNode, Node, ParamField
from repro.util.histogram import TimeHistogram
from repro.util.rankset import RankSet


def _contains_collective(node: Node) -> bool:
    if isinstance(node, EventNode):
        return node.op in COLLECTIVE_OPS
    return any(_contains_collective(n) for n in node.body)

#: Maximum repeated-window width considered when folding.  Loop bodies in
#: real codes (and in the NPB suite) are far narrower than this.
DEFAULT_MAX_WINDOW = 32

_PARAM_FIELDS = ("peer", "size", "tag", "root")


def nodes_match(a: Node, b: Node) -> bool:
    """Structural compatibility for folding (parameters may differ, rank
    sets must agree — trivially true inside a per-rank queue, essential
    when recompressing a merged multi-rank trace)."""
    if a.ranks != b.ranks:
        return False
    if isinstance(a, EventNode) and isinstance(b, EventNode):
        return a.signature() == b.signature()
    if isinstance(a, LoopNode) and isinstance(b, LoopNode):
        if a.count != b.count or len(a.body) != len(b.body):
            return False
        return all(nodes_match(x, y) for x, y in zip(a.body, b.body))
    return False


def _segments_match(xs: List[Node], ys: List[Node]) -> bool:
    return len(xs) == len(ys) and all(
        nodes_match(x, y) for x, y in zip(xs, ys))


def _merge_events(a: EventNode, b: EventNode,
                  separate_entries: bool) -> Optional[EventNode]:
    """Node representing all instances of ``a`` followed by all of ``b``.

    Time histograms sum over ranks, so per-rank instance counts divide by
    the rank-set size (1 inside a per-rank queue).

    §3.1 path-aware timing: when the two copies are consecutive
    iterations of the *same* loop entry (``separate_entries=False``),
    ``b``'s first-iteration samples become subsequent-iteration samples;
    when each copy was its own loop entry (the copies live inside sibling
    inner loops being folded by an outer loop), both firsts stay firsts.
    """
    ca = a.sample_count() // max(len(a.ranks), 1)
    cb = b.sample_count() // max(len(b.ranks), 1)
    merged = {}
    for name in _PARAM_FIELDS:
        fa, fb = getattr(a, name), getattr(b, name)
        if (fa is None) != (fb is None):
            return None
        if fa is None:
            merged[name] = None
            continue
        combined = fa.concat(fb, ca, cb)
        if combined is None:
            return None
        merged[name] = combined
    time_first = a.time_first.copy()
    time_rest = a.time_rest.copy()
    if separate_entries:
        time_first.merge(b.time_first)
    else:
        time_rest.merge(b.time_first)
    time_rest.merge(b.time_rest)
    return EventNode(a.op, a.callsite, a.comm_id, a.ranks, a.instances,
                     merged["peer"], merged["size"], merged["tag"],
                     merged["root"], a.wait_offsets, time_first, time_rest)


def _merge_sequence(xs: List[Node], ys: List[Node],
                    separate_entries: bool = False) -> Optional[List[Node]]:
    out = []
    for x, y in zip(xs, ys):
        if isinstance(x, EventNode):
            m = _merge_events(x, y, separate_entries)
        else:
            # copies of a nested loop are distinct entries of that loop
            inner = _merge_sequence(x.body, y.body, separate_entries=True)
            m = (LoopNode(x.count, inner, x.ranks)
                 if inner is not None and x.count == y.count else None)
        if m is None:
            return None
        out.append(m)
    return out


class CompressionQueue:
    """The per-rank trace queue with fixpoint tail compression.

    ``fold_collectives=False`` keeps windows containing collective events
    out of loop folds; Algorithm 1's rebuild uses this so that logical
    collectives occupy structurally identical positions on every rank
    before the global (multi-rank) recompression pass runs.
    """

    def __init__(self, rank: int, max_window: int = DEFAULT_MAX_WINDOW,
                 fold_collectives: bool = True):
        self.rank = rank
        self.ranks = RankSet.single(rank)
        self.nodes: List[Node] = []
        self.max_window = max_window
        self.fold_collectives = fold_collectives

    def append_event(self, op: str, callsite, comm_id: int,
                     peer=None, size=None, tag=None, root=None,
                     wait_offsets=None, delta_t: float = 0.0) -> None:
        time_first = TimeHistogram()
        time_first.add(max(delta_t, 0.0))
        node = EventNode(
            op, callsite, comm_id, self.ranks, instances=1,
            peer=ParamField.of(peer) if peer is not None else None,
            size=ParamField.of(size) if size is not None else None,
            tag=ParamField.of(tag) if tag is not None else None,
            root=ParamField.of(root) if root is not None else None,
            wait_offsets=wait_offsets, time_first=time_first)
        self.append_node(node)

    def append_node(self, node: Node) -> None:
        self.nodes.append(node)
        self.compress_tail()

    def _foldable(self, nodes: List[Node]) -> bool:
        if self.fold_collectives:
            return True
        return not any(_contains_collective(n) for n in nodes)

    def compress_tail(self) -> None:
        """Apply coalesce/absorb/fold until no rule fires."""
        q = self.nodes
        changed = True
        while changed:
            changed = (self._try_coalesce(q) or self._try_absorb(q)
                       or self._try_fold(q))

    # -- rules --------------------------------------------------------------
    def _try_coalesce(self, q: List[Node]) -> bool:
        if len(q) < 2:
            return False
        a, b = q[-2], q[-1]
        if not (isinstance(a, LoopNode) and isinstance(b, LoopNode)):
            return False
        if a.ranks != b.ranks or len(a.body) != len(b.body):
            return False
        if not all(nodes_match(x, y) for x, y in zip(a.body, b.body)):
            return False
        merged_body = _merge_sequence(a.body, b.body)
        if merged_body is None:
            return False
        q[-2:] = [LoopNode(a.count + b.count, merged_body, a.ranks)]
        obs.count("scalatrace.nodes_folded", 1)
        return True

    def _try_absorb(self, q: List[Node]) -> bool:
        for w in range(1, min(self.max_window, len(q) - 1) + 1):
            prev = q[-w - 1]
            if not isinstance(prev, LoopNode) or len(prev.body) != w:
                continue
            tail = q[-w:]
            if not _segments_match(prev.body, tail):
                continue
            if not self._foldable(tail):
                continue
            merged_body = _merge_sequence(prev.body, tail)
            if merged_body is None:
                continue
            q[-w - 1:] = [LoopNode(prev.count + 1, merged_body, prev.ranks)]
            obs.count("scalatrace.nodes_folded", w)
            return True
        return False

    def _try_fold(self, q: List[Node]) -> bool:
        for w in range(1, min(self.max_window, len(q) // 2) + 1):
            first, second = q[-2 * w:-w], q[-w:]
            if not _segments_match(first, second):
                continue
            if not self._foldable(second):
                continue
            merged_body = _merge_sequence(first, second)
            if merged_body is None:
                continue
            ranks = first[0].ranks
            for n in first[1:]:
                ranks = ranks | n.ranks
            q[-2 * w:] = [LoopNode(2, merged_body, ranks)]
            obs.count("scalatrace.nodes_folded", 2 * w - 1)
            return True
        return False


def compress_node_list(nodes: List[Node]) -> List[Node]:
    """Recompress a (possibly multi-rank) node sequence.

    Used after inter-rank merging to fold structures that only became
    foldable once rank sets were unified — the final step of Algorithm 1's
    output-queue compression (§4.3: "we apply ScalaTrace's loop
    compression algorithm to the output RSD queue").
    """
    with obs.span("scalatrace.compress", nodes=len(nodes)):
        queue = CompressionQueue(rank=0)
        queue.nodes = []
        for node in nodes:
            if isinstance(node, LoopNode):
                node = LoopNode(node.count, _compress_inner(node.body),
                                node.ranks)
            queue.append_node(node)
        return queue.nodes


def _compress_inner(nodes: List[Node]) -> List[Node]:
    """Recursive body recompression without re-entering the outer span."""
    queue = CompressionQueue(rank=0)
    queue.nodes = []
    for node in nodes:
        if isinstance(node, LoopNode):
            node = LoopNode(node.count, _compress_inner(node.body),
                            node.ranks)
        queue.append_node(node)
    return queue.nodes
