"""On-the-fly intra-rank loop compression (RSD → PRSD folding).

This is ScalaTrace's core compression step (§3.1): as events stream in,
repeated tails of the trace queue are folded into :class:`LoopNode`\\ s so
that a 1000-iteration communication loop occupies a handful of nodes
instead of thousands.  Three rewrite rules run to fixpoint after every
append:

* **coalesce** — two adjacent loops with matching bodies merge their
  iteration counts;
* **absorb**  — a loop followed by one more copy of its body increments
  its count;
* **fold**    — two adjacent copies of a w-node window become a loop with
  count 2.

Two nodes "match" when they are the same call site (op, stack signature,
communicator, wait structure); parameters that differ per iteration are
concatenated into :class:`~repro.scalatrace.rsd.ParamField` sequences, so
folding is always lossless.
"""

from __future__ import annotations

from typing import List, Optional

from repro import obs
from repro.mpi.hooks import COLLECTIVE_OPS
from repro.scalatrace.rsd import (FP_BASE, FP_MOD, EventNode, LoopNode, Node,
                                  ParamField, count_nodes)
from repro.util.histogram import TimeHistogram
from repro.util.rankset import RankSet
from repro.util.valueseq import ValueSeq


def _contains_collective(node: Node) -> bool:
    if isinstance(node, EventNode):
        return node.op in COLLECTIVE_OPS
    return any(_contains_collective(n) for n in node.body)

#: Maximum repeated-window width considered when folding.  Loop bodies in
#: real codes (and in the NPB suite) are far narrower than this.
DEFAULT_MAX_WINDOW = 32

_PARAM_FIELDS = ("peer", "size", "tag", "root")

#: FP_BASE ** k mod FP_MOD, extended on demand (shared by every queue —
#: powers depend only on the window width).
_FP_POWS = [1]


def _fp_pow(k: int) -> int:
    while len(_FP_POWS) <= k:
        _FP_POWS.append((_FP_POWS[-1] * FP_BASE) % FP_MOD)
    return _FP_POWS[k]


#: Outcomes of the fused match-and-plan walk over a candidate fold window.
_NO_MATCH, _INPLACE, _SLOW = 0, 1, 2


def _pair_plan(x: Node, y: Node) -> int:
    """Structural compatibility for folding, fused with the in-place
    merge capability check so the hot path walks each window once.

    Returns ``_NO_MATCH`` when the nodes are not the same call-site
    structure (parameters may differ, rank sets must agree — trivially
    true inside a per-rank queue, essential when recompressing a merged
    multi-rank trace); ``_INPLACE`` when they match and every parameter
    field can be merged by mutation; ``_SLOW`` when they match but the
    merge must go through the rebuilding :func:`_merge_sequence` (which
    may still refuse, e.g. differing expressions).

    The cached fingerprint covers exactly the identity fields compared
    below, so ``fp`` inequality settles the common (non-matching) case
    in O(1); the structural comparison then guards against hash
    collisions, keeping the fold decision — and therefore compression
    output — exact.
    """
    if x.fp != y.fp or x.ranks != y.ranks:
        return _NO_MATCH
    if isinstance(x, EventNode):
        if not isinstance(y, EventNode) or x.sig != y.sig:
            return _NO_MATCH
        if x.sample_count() == 0 or y.sample_count() == 0:
            return _SLOW   # zero-sample expansion; rebuild handles it
        return _INPLACE if _fields_can_merge(x, y) else _SLOW
    if not isinstance(y, LoopNode) or x.count != y.count \
            or len(x.body) != len(y.body):
        return _NO_MATCH
    plan = _INPLACE
    for xb, yb in zip(x.body, y.body):
        p = _pair_plan(xb, yb)
        if p == _NO_MATCH:
            return _NO_MATCH
        if p == _SLOW:
            plan = _SLOW
    return plan


def _segments_plan(xs: List[Node], ys: List[Node]) -> int:
    """Fold ``_pair_plan`` over equal-length segments."""
    plan = _INPLACE
    for x, y in zip(xs, ys):
        p = _pair_plan(x, y)
        if p == _NO_MATCH:
            return _NO_MATCH
        if p == _SLOW:
            plan = _SLOW
    return plan


def nodes_match(a: Node, b: Node) -> bool:
    """Public structural-match predicate (parameters may differ)."""
    return _pair_plan(a, b) != _NO_MATCH


def _segments_match(xs: List[Node], ys: List[Node]) -> bool:
    return len(xs) == len(ys) and _segments_plan(xs, ys) != _NO_MATCH


def _merge_events(a: EventNode, b: EventNode,
                  separate_entries: bool) -> Optional[EventNode]:
    """Node representing all instances of ``a`` followed by all of ``b``.

    Time histograms sum over ranks, so per-rank instance counts divide by
    the rank-set size (1 inside a per-rank queue).

    §3.1 path-aware timing: when the two copies are consecutive
    iterations of the *same* loop entry (``separate_entries=False``),
    ``b``'s first-iteration samples become subsequent-iteration samples;
    when each copy was its own loop entry (the copies live inside sibling
    inner loops being folded by an outer loop), both firsts stay firsts.
    """
    ca = a.sample_count() // max(len(a.ranks), 1)
    cb = b.sample_count() // max(len(b.ranks), 1)
    merged = {}
    for name in _PARAM_FIELDS:
        fa, fb = getattr(a, name), getattr(b, name)
        if (fa is None) != (fb is None):
            return None
        if fa is None:
            merged[name] = None
            continue
        combined = fa.concat(fb, ca, cb)
        if combined is None:
            return None
        merged[name] = combined
    time_first = a.time_first.copy()
    time_rest = a.time_rest.copy()
    if separate_entries:
        time_first.merge(b.time_first)
    else:
        time_rest.merge(b.time_first)
    time_rest.merge(b.time_rest)
    return EventNode(a.op, a.callsite, a.comm_id, a.ranks, a.instances,
                     merged["peer"], merged["size"], merged["tag"],
                     merged["root"], a.wait_offsets, time_first, time_rest)


def _merge_sequence(xs: List[Node], ys: List[Node],
                    separate_entries: bool = False) -> Optional[List[Node]]:
    out = []
    for x, y in zip(xs, ys):
        if isinstance(x, EventNode):
            m = _merge_events(x, y, separate_entries)
        else:
            # copies of a nested loop are distinct entries of that loop
            inner = _merge_sequence(x.body, y.body, separate_entries=True)
            m = (LoopNode(x.count, inner, x.ranks)
                 if inner is not None and x.count == y.count else None)
        if m is None:
            return None
        out.append(m)
    return out


# -- in-place absorption fast path -------------------------------------------
#
# ``_merge_sequence`` rebuilds the entire merged node tree — new EventNodes,
# new ValueSeqs, copied histograms — on *every* absorbed iteration, which
# makes streaming a K-iteration loop O(K · body) in allocations.  When the
# surviving loop node was built by this queue itself (so its whole subtree
# is freshly constructed and aliased nowhere else), the same result can be
# produced by mutating it: append the new per-iteration parameter values,
# merge the timing samples, and bump the loop count.  The functions below
# mirror ``_merge_events``/``_merge_sequence`` exactly — same expansion of
# constant sequences, same first/rest histogram routing — so the folded
# output is byte-identical; they just skip the reconstruction.

def _fields_can_merge(a: EventNode, b: EventNode) -> bool:
    """Would ``_merge_events(a, b, ...)`` succeed, and can it be done by
    mutation?  (Params only — the structural match is established by the
    caller; zero-length sequences are deferred to the slow path.)"""
    for name in _PARAM_FIELDS:
        fa, fb = getattr(a, name), getattr(b, name)
        if fa is None and fb is None:
            continue
        if fa is None or fb is None:
            return False
        if fa.seq is not None and fb.seq is not None:
            if fa.seq.length == 0 or fb.seq.length == 0:
                return False   # degenerate; take the slow path
            continue
        if fa.expr is not None and fb.expr is not None and fa.expr == fb.expr:
            continue
        if fa.rank_map is not None and fb.rank_map is not None \
                and set(fa.rank_map) == set(fb.rank_map):
            if any(s.length == 0 for s in fa.rank_map.values()) or \
                    any(s.length == 0 for s in fb.rank_map.values()):
                return False
            continue
        return False
    return True


def _seq_extend(xs: ValueSeq, ys: ValueSeq, ca: int, cb: int) -> None:
    """In-place equivalent of
    ``_expanded(xs, ca).concat(_expanded(ys, cb))`` (both non-empty)."""
    runs = xs.runs
    if len(runs) == 1 and xs.length != ca:
        runs[0] = (runs[0][0], ca)
        xs.length = ca
    truns = ys.runs
    if len(truns) == 1:
        v = truns[0][0]
        last = runs[-1]
        if last[0] == v:
            runs[-1] = (v, last[1] + cb)
        else:
            runs.append((v, cb))
        xs.length += cb
    else:
        for v, c in truns:
            last = runs[-1]
            if last[0] == v:
                runs[-1] = (v, last[1] + c)
            else:
                runs.append((v, c))
        xs.length += ys.length


def _seq_push(seq: ValueSeq, value, ca: int) -> None:
    """In-place equivalent of ``_seq_extend`` with a single fresh value
    (``cb == 1``) — the replay-cursor absorb step."""
    runs = seq.runs
    if len(runs) == 1 and seq.length != ca:
        runs[0] = (runs[0][0], ca)
        seq.length = ca
    last = runs[-1]
    if last[0] == value:
        runs[-1] = (value, last[1] + 1)
    else:
        runs.append((value, 1))
    seq.length += 1


def _field_extend(fx: ParamField, fy: ParamField, ca: int, cb: int) -> None:
    if fx.seq is not None:
        _seq_extend(fx.seq, fy.seq, ca, cb)
    elif fx.rank_map is not None:
        for r, s in fx.rank_map.items():
            _seq_extend(s, fy.rank_map[r], ca, cb)
    # expr fields: equal by validation, nothing to append


def _merge_events_inplace(x: EventNode, y: EventNode,
                          separate_entries: bool) -> None:
    nr = len(x.ranks) or 1
    ca = x.sample_count() // nr
    cb = y.sample_count() // nr
    if x.peer is not None:
        _field_extend(x.peer, y.peer, ca, cb)
    if x.size is not None:
        _field_extend(x.size, y.size, ca, cb)
    if x.tag is not None:
        _field_extend(x.tag, y.tag, ca, cb)
    if x.root is not None:
        _field_extend(x.root, y.root, ca, cb)
    if separate_entries:
        x.time_first.merge(y.time_first)
    else:
        x.time_rest.merge(y.time_first)
    x.time_rest.merge(y.time_rest)


def _merge_sequence_inplace(xs: List[Node], ys: List[Node],
                            separate_entries: bool = False) -> None:
    for x, y in zip(xs, ys):
        if isinstance(x, EventNode):
            _merge_events_inplace(x, y, separate_entries)
        else:
            # nested loop copies are distinct entries of that loop; the
            # count stays (checked equal by the structural match)
            _merge_sequence_inplace(x.body, y.body, separate_entries=True)


class CompressionQueue:
    """The per-rank trace queue with fixpoint tail compression.

    ``fold_collectives=False`` keeps windows containing collective events
    out of loop folds; Algorithm 1's rebuild uses this so that logical
    collectives occupy structurally identical positions on every rank
    before the global (multi-rank) recompression pass runs.

    The queue keeps a rolling fingerprint table alongside ``nodes``:
    ``_prefix[i]`` is the Rabin hash of ``nodes[:i]`` over node
    fingerprints, so the hash of any tail window is one multiply-subtract
    and the absorb/fold window searches compare *one integer per
    candidate width* instead of structurally walking up to
    ``max_window`` nodes.  A fingerprint hit is still confirmed by
    the structural walk before anything is merged, so the folded
    output is byte-identical to the unfingerprinted algorithm.

    On top of that sits the *replay cursor*, the streaming steady-state
    fast path.  Once the tail is a queue-built loop whose flat event body
    the incoming stream keeps replaying, each iteration's events are
    matched field-by-field against the body and buffered as raw values;
    when a full copy of the body has arrived, it is absorbed by mutating
    the loop directly — no :class:`EventNode`, histogram, or parameter
    object is ever constructed for the absorbed iteration.  The cursor
    engages only after a fingerprint precheck proves that *no* rewrite
    rule could fire on any intermediate queue state it skips (any hash
    coincidence declines the cursor), so the compressed output is
    byte-identical to the rule-at-a-time algorithm.  External reads go
    through the :attr:`nodes` property, which first materialises any
    partially buffered iteration.
    """

    def __init__(self, rank: int, max_window: int = DEFAULT_MAX_WINDOW,
                 fold_collectives: bool = True):
        self.rank = rank
        self.ranks = RankSet.single(rank)
        self._nodes: List[Node] = []
        self.max_window = max_window
        self.fold_collectives = fold_collectives
        self._prefix: List[int] = [0]   # _prefix[i] = fp-hash of nodes[:i]
        #: ids of nodes this queue built itself (always still in
        #: ``nodes`` — ids are discarded on removal, so no stale-id reuse).
        #: Their subtrees are freshly constructed and aliased nowhere else,
        #: which licenses the in-place fold/absorb/coalesce fast paths;
        #: nodes arriving through :meth:`append_node` are never mutated.
        self._owned: set = set()
        # replay-cursor state: the tail loop being replayed, the per-body
        # match specs, window width, position, and the buffered raw rows
        self._cloop = None
        self._cbody: list = []
        self._cw = 0
        self._cpos = 0
        self._pending: list = []
        self._no_engage = None   # memo of the last state that failed engage
        _fp_pow(max_window + 1)   # pre-extend for direct indexing

    @property
    def nodes(self) -> List[Node]:
        """The compressed node list.  Materialises any loop iteration the
        replay cursor is still buffering, so external readers always see
        the exact state the rule-at-a-time algorithm would have."""
        if self._cloop is not None:
            self._flush_pending()
        return self._nodes

    def live_node_count(self) -> int:
        """Nodes this queue currently holds: compressed output plus any
        rows the replay cursor is still buffering.  Unlike :attr:`nodes`
        this never flushes the cursor, so the streaming tracer can
        sample its memory high-water mark without perturbing state."""
        return count_nodes(self._nodes) + len(self._pending)

    # -- fingerprint table ---------------------------------------------------
    def _push_fp(self, node: Node) -> None:
        self._prefix.append(
            (self._prefix[-1] * FP_BASE + node.fp) % FP_MOD)

    def _window_fp(self, a: int, b: int) -> int:
        """Hash of ``nodes[a:b]``, O(1) from the prefix table."""
        pref = self._prefix
        return (pref[b] - pref[a] * _fp_pow(b - a)) % FP_MOD

    def _replace_tail(self, width: int, node: Node) -> None:
        """Substitute ``nodes[-width:]`` with ``node`` (a loop this queue
        just built), keeping the fingerprint table and ownership in step."""
        q = self._nodes
        for old in q[-width:]:
            self._owned.discard(id(old))
        del q[-width:]
        del self._prefix[len(q) + 1:]
        q.append(node)
        self._owned.add(id(node))
        self._push_fp(node)

    def _drop_tail_keep(self, width: int) -> None:
        """Drop ``nodes[-width:]`` after their content was merged *into*
        the (mutated) node just before them, whose fingerprint changed —
        refresh its prefix entry."""
        q = self._nodes
        for old in q[-width:]:
            self._owned.discard(id(old))
        del q[-width:]
        del self._prefix[len(q):]
        self._push_fp(q[-1])

    def append_event(self, op: str, callsite, comm_id: int,
                     peer=None, size=None, tag=None, root=None,
                     wait_offsets=None, delta_t: float = 0.0) -> None:
        if self._cloop is not None:
            spec = self._cbody[self._cpos]
            if (op == spec[0] and callsite == spec[1] and comm_id == spec[2]
                    and wait_offsets == spec[3]
                    and (peer is None) == spec[4]
                    and (size is None) == spec[5]
                    and (tag is None) == spec[6]
                    and (root is None) == spec[7]):
                self._pending.append((peer, size, tag, root, delta_t))
                self._cpos += 1
                if self._cpos == self._cw:
                    self._apply_cursor_window()
                return
            self._flush_pending()   # replay broke: materialise, disengage
        node = self._make_event(op, callsite, comm_id, peer, size, tag,
                                root, wait_offsets, delta_t)
        self._owned.add(id(node))   # built here: eligible for in-place fold
        self.append_node(node)
        self._try_engage()

    def _make_event(self, op, callsite, comm_id, peer, size, tag, root,
                    wait_offsets, delta_t) -> EventNode:
        time_first = TimeHistogram()
        time_first.add(max(delta_t, 0.0))
        return EventNode(
            op, callsite, comm_id, self.ranks, instances=1,
            peer=ParamField.of(peer) if peer is not None else None,
            size=ParamField.of(size) if size is not None else None,
            tag=ParamField.of(tag) if tag is not None else None,
            root=ParamField.of(root) if root is not None else None,
            wait_offsets=wait_offsets, time_first=time_first)

    def append_node(self, node: Node) -> None:
        if self._cloop is not None:
            self._flush_pending()
        self._nodes.append(node)
        self._push_fp(node)
        self.compress_tail()

    def _foldable(self, nodes: List[Node]) -> bool:
        if self.fold_collectives:
            return True
        return not any(_contains_collective(n) for n in nodes)

    def compress_tail(self) -> None:
        """Apply coalesce/absorb/fold until no rule fires."""
        q = self._nodes
        changed = True
        while changed:
            changed = (self._try_coalesce(q) or self._try_absorb(q)
                       or self._try_fold(q))

    # -- replay cursor -------------------------------------------------------
    def _try_engage(self) -> None:
        """Arm the replay cursor when the queue tail is a queue-built loop
        with a flat, seq-parameter event body that the stream may keep
        replaying — and the fingerprint precheck proves no rewrite rule
        could fire on any intermediate state the cursor would skip."""
        q = self._nodes
        if not q:
            return
        loop = q[-1]
        if not isinstance(loop, LoopNode) or id(loop) not in self._owned:
            return
        body = loop.body
        if len(body) > self.max_window:
            return   # absorb could never fire on this window
        state = (id(loop), loop.fp, len(q), self._prefix[-1])
        if state == self._no_engage:
            return
        ranks = self.ranks
        specs = []
        for e in body:
            if not isinstance(e, EventNode) or e.ranks != ranks \
                    or e.sample_count() == 0:
                self._no_engage = state
                return
            for f in (e.peer, e.size, e.tag, e.root):
                if f is not None and (f.seq is None or f.seq.length == 0):
                    self._no_engage = state
                    return
            specs.append((e.op, e.callsite, e.comm_id, e.wait_offsets,
                          e.peer is None, e.size is None, e.tag is None,
                          e.root is None))
        if not self._foldable(body) or not self._cursor_precheck(loop):
            self._no_engage = state
            return
        self._cloop = loop
        self._cbody = specs
        self._cw = len(body)
        self._cpos = 0

    def _cursor_precheck(self, loop: LoopNode) -> bool:
        """True when no rewrite rule can fire on any queue state
        ``nodes + body[:k]`` for ``0 < k < len(body)`` — the states the
        cursor skips while buffering a replayed iteration.

        Conservative in the safe direction: rules fire only on window-
        fingerprint equality, so checking every candidate window hash
        (coalesce never applies — the hypothetical tail is an event)
        and declining on *any* coincidence bounds rule firing from
        above.  A decline merely falls back to the rule-at-a-time path.
        """
        q = self._nodes
        body = loop.body
        n0 = len(q)
        w = len(body)
        mw = self.max_window
        pows = _FP_POWS
        hp = list(self._prefix)
        for j in range(w - 1):
            hp.append((hp[-1] * FP_BASE + body[j].fp) % FP_MOD)
        for k in range(1, w):
            n = n0 + k
            top = hp[n]
            # absorb: a loop strictly before the tail loop could claim a
            # window ending in the buffered events (widths <= k end on
            # events/our loop and cannot fire: shown in _try_absorb)
            for wp in range(k + 1, min(mw, n - 1) + 1):
                pi = n - wp - 1
                if pi < 0:
                    break
                if pi >= n0 - 1:
                    continue
                prev = q[pi]
                if isinstance(prev, LoopNode) and len(prev.body) == wp \
                        and prev.body_fp == (top - hp[n - wp] * pows[wp]) \
                        % FP_MOD:
                    return False
            # fold: any repeated adjacent window in the hypothetical tail
            for wp in range(1, min(mw, n // 2) + 1):
                pw = pows[wp]
                mid = hp[n - wp]
                if (mid - hp[n - 2 * wp] * pw) % FP_MOD == \
                        (top - mid * pw) % FP_MOD:
                    return False
        return True

    def _apply_cursor_window(self) -> None:
        """Absorb one fully buffered body replay into the cursor loop —
        the in-place equivalent of appending each buffered event and
        letting ``_try_absorb`` fire on the last one."""
        loop = self._cloop
        body = loop.body
        for e, row in zip(body, self._pending):
            ca = e.sample_count()   # per-rank: single-rank queue
            f = e.peer
            if f is not None:
                _seq_push(f.seq, row[0], ca)
            f = e.size
            if f is not None:
                _seq_push(f.seq, row[1], ca)
            f = e.tag
            if f is not None:
                _seq_push(f.seq, row[2], ca)
            f = e.root
            if f is not None:
                _seq_push(f.seq, row[3], ca)
            dt = row[4]
            e.time_rest.add(dt if dt > 0.0 else 0.0)
        self._pending.clear()
        self._cpos = 0
        loop.bump_count(1)
        pref = self._prefix
        pref[-1] = (pref[-2] * FP_BASE + loop.fp) % FP_MOD
        obs.count("scalatrace.nodes_folded", self._cw)
        nq = len(self._nodes)
        self.compress_tail()
        if len(self._nodes) == nq and self._nodes[-1] is loop:
            # shape unchanged; only the loop's fingerprint moved — the
            # precheck must be re-proved against the new count
            if not self._cursor_precheck(loop):
                self._cloop = None
        else:
            self._cloop = None
            self._try_engage()

    def _flush_pending(self) -> None:
        """Disengage the cursor, materialising any buffered rows as real
        nodes through the normal append path (the precheck guarantees the
        rules stay quiescent while they land)."""
        self._cloop = None
        rows = self._pending
        if not rows:
            return
        specs = self._cbody
        self._pending = []
        self._cpos = 0
        for spec, row in zip(specs, rows):
            node = self._make_event(spec[0], spec[1], spec[2], row[0],
                                    row[1], row[2], row[3], spec[3], row[4])
            self._owned.add(id(node))
            self.append_node(node)

    # -- rules --------------------------------------------------------------
    #
    # Each rule gates on a fingerprint first, confirms structurally via
    # ``_segments_plan`` (one fused walk that also decides in-place
    # eligibility), then merges — by mutation when the surviving node was
    # built by this queue, by reconstruction otherwise.  Both merge paths
    # produce identical node values.

    def _try_coalesce(self, q: List[Node]) -> bool:
        if len(q) < 2:
            return False
        a, b = q[-2], q[-1]
        if not (isinstance(a, LoopNode) and isinstance(b, LoopNode)):
            return False
        # fingerprint gate: matching bodies share a body_fp (counts may
        # differ, so whole-node fps cannot be compared here)
        if a.body_fp != b.body_fp:
            return False
        if a.ranks != b.ranks or len(a.body) != len(b.body):
            return False
        plan = _segments_plan(a.body, b.body)
        if plan == _NO_MATCH:
            return False
        if plan == _INPLACE and id(a) in self._owned:
            _merge_sequence_inplace(a.body, b.body)
            a.bump_count(b.count)
            self._drop_tail_keep(1)
            obs.count("scalatrace.nodes_folded", 1)
            return True
        merged_body = _merge_sequence(a.body, b.body)
        if merged_body is None:
            return False
        self._replace_tail(
            2, LoopNode(a.count + b.count, merged_body, a.ranks))
        obs.count("scalatrace.nodes_folded", 1)
        return True

    def _try_absorb(self, q: List[Node]) -> bool:
        n = len(q)
        pref = self._prefix
        pows = _FP_POWS
        for w in range(1, min(self.max_window, n - 1) + 1):
            prev = q[-w - 1]
            if not isinstance(prev, LoopNode) or len(prev.body) != w:
                continue
            # fingerprint gate: one integer compare per candidate width
            if prev.body_fp != (pref[n] - pref[n - w] * pows[w]) % FP_MOD:
                continue
            tail = q[-w:]
            plan = _segments_plan(prev.body, tail)
            if plan == _NO_MATCH:
                continue
            if not self._foldable(tail):
                continue
            if plan == _INPLACE and id(prev) in self._owned:
                _merge_sequence_inplace(prev.body, tail)
                prev.bump_count(1)
                self._drop_tail_keep(w)
                obs.count("scalatrace.nodes_folded", w)
                return True
            merged_body = _merge_sequence(prev.body, tail)
            if merged_body is None:
                continue
            self._replace_tail(
                w + 1, LoopNode(prev.count + 1, merged_body, prev.ranks))
            obs.count("scalatrace.nodes_folded", w)
            return True
        return False

    def _try_fold(self, q: List[Node]) -> bool:
        n = len(q)
        pref = self._prefix
        pows = _FP_POWS
        top = pref[n]
        for w in range(1, min(self.max_window, n // 2) + 1):
            # fingerprint gate: one integer compare per candidate width
            mid = pref[n - w]
            pw = pows[w]
            if (mid - pref[n - 2 * w] * pw) % FP_MOD != \
                    (top - mid * pw) % FP_MOD:
                continue
            first, second = q[-2 * w:-w], q[-w:]
            plan = _segments_plan(first, second)
            if plan == _NO_MATCH:
                continue
            if not self._foldable(second):
                continue
            ranks = first[0].ranks
            for node in first[1:]:
                ranks = ranks | node.ranks
            owned = self._owned
            if plan == _INPLACE and all(id(x) in owned for x in first):
                _merge_sequence_inplace(first, second)
                self._replace_tail(2 * w, LoopNode(2, first, ranks))
                obs.count("scalatrace.nodes_folded", 2 * w - 1)
                return True
            merged_body = _merge_sequence(first, second)
            if merged_body is None:
                continue
            self._replace_tail(2 * w, LoopNode(2, merged_body, ranks))
            obs.count("scalatrace.nodes_folded", 2 * w - 1)
            return True
        return False


def compress_node_list(nodes: List[Node]) -> List[Node]:
    """Recompress a (possibly multi-rank) node sequence.

    Used after inter-rank merging to fold structures that only became
    foldable once rank sets were unified — the final step of Algorithm 1's
    output-queue compression (§4.3: "we apply ScalaTrace's loop
    compression algorithm to the output RSD queue").
    """
    with obs.span("scalatrace.compress", nodes=len(nodes)):
        queue = CompressionQueue(rank=0)
        for node in nodes:
            if isinstance(node, LoopNode):
                node = LoopNode(node.count, _compress_inner(node.body),
                                node.ranks)
            queue.append_node(node)
        return queue.nodes


def _compress_inner(nodes: List[Node]) -> List[Node]:
    """Recursive body recompression without re-entering the outer span."""
    queue = CompressionQueue(rank=0)
    for node in nodes:
        if isinstance(node, LoopNode):
            node = LoopNode(node.count, _compress_inner(node.body),
                            node.ranks)
        queue.append_node(node)
    return queue.nodes
