"""The ScalaTrace PMPI hook: lossless, compressed communication tracing.

Attach a :class:`ScalaTraceHook` to :func:`repro.mpi.run_spmd` and, when
the run ends, read the merged global trace off ``hook.trace``::

    tracer = ScalaTraceHook()
    run_spmd(app, nranks=16, hooks=[tracer])
    trace = tracer.trace          # compressed, all ranks

The whole path is streaming and bounded-memory.  Per rank, events flow
straight through on-the-fly loop compression (raw events are never
retained; the live set is the compression window plus compressed
output); computation time (the gap since the previous MPI call on that
rank, §3.1) is folded into per-event histograms.  The moment a rank
calls ``Finalize`` its compressed node list is handed — in rank order —
to a :class:`~repro.scalatrace.merge.TraceMergeAccumulator` and the
rank's queue is dropped, so at any instant the tracer holds the
not-yet-finalized queues plus at most ``log2(P)+1`` partial merges,
never all P per-rank traces at once.  The merged result is
byte-identical to the collect-then-merge tracer this replaced.

A hook traces exactly one run: reattaching it raises unless
:meth:`ScalaTraceHook.reset` is called first.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.errors import TraceError
from repro.mpi.hooks import MPIEvent, MPIHook, WAIT_OPS
from repro.scalatrace.compress import CompressionQueue, DEFAULT_MAX_WINDOW
from repro.scalatrace.merge import TraceMergeAccumulator
from repro.scalatrace.rsd import Node, Trace, count_nodes


def ingest_event(queue: CompressionQueue, last_end: Dict[int, float],
                 event: MPIEvent) -> None:
    """Feed one :class:`MPIEvent` into a compression queue.

    The single place the event→RSD parameter dispatch lives; the hook
    uses it per event, and test/benchmark harnesses that drive queues
    directly (without a :class:`~repro.mpi.world.World`) reuse it so
    their traces match the hook's byte-for-byte."""
    delta = event.t_start - last_end.get(event.rank, 0.0)
    last_end[event.rank] = event.t_end

    op = event.op
    peer = size = tag = root = None
    offsets = None
    if op in ("Send", "Isend", "Recv", "Irecv"):
        peer = event.peer
        tag = event.tag
        size = event.nbytes
    elif op in WAIT_OPS:
        offsets = event.wait_offsets
    else:  # collectives (incl. Comm_split/Comm_dup/Finalize)
        size = event.nbytes
        if event.root is not None:
            root = event.root
    queue.append_event(op, event.callsite, event.comm.id,
                       peer=peer, size=size, tag=tag, root=root,
                       wait_offsets=offsets, delta_t=delta)


class ScalaTraceHook(MPIHook):
    """Interposition hook producing a compressed global :class:`Trace`."""

    def __init__(self, max_window: int = DEFAULT_MAX_WINDOW):
        self.max_window = max_window
        self.trace: Optional[Trace] = None
        self._reset_run_state()

    def _reset_run_state(self) -> None:
        self._queues: Dict[int, CompressionQueue] = {}
        self._last_end: Dict[int, float] = {}
        self._acc = TraceMergeAccumulator()
        #: Ranks that finalized out of order, parked until every lower
        #: rank has been fed (the accumulator consumes in rank order so
        #: its association tree matches the pairwise reduction exactly).
        self._parked: Dict[int, List[Node]] = {}
        self._next_rank = 0
        self._finished = False
        #: Raw MPI events ingested (→ ``scalatrace.events_in``).
        self.events_in = 0
        #: High-water mark of live nodes across queues, parked lists and
        #: merge partials (→ ``scalatrace.nodes_live_peak``).  Sampled
        #: at rank-flush points, where the set peaks.
        self.nodes_live_peak = 0

    def reset(self) -> None:
        """Discard all run state (including ``trace``) so this hook can
        be attached to another :func:`~repro.mpi.world.run_spmd` run."""
        self.trace = None
        self._reset_run_state()

    def _guard(self) -> None:
        if self._finished:
            raise TraceError(
                "ScalaTraceHook already traced a run; call reset() before "
                "attaching it to another run_spmd")

    def on_event(self, event: MPIEvent) -> None:
        self._guard()
        rank = event.rank
        if rank < self._next_rank or rank in self._parked:
            raise TraceError(
                f"rank {rank} issued an MPI call after Finalize")
        queue = self._queues.get(rank)
        if queue is None:
            queue = CompressionQueue(rank, self.max_window)
            self._queues[rank] = queue
        comm = event.comm
        if comm.id not in self._acc.comm_table:
            self._acc.comm_table[comm.id] = comm.world_ranks
        self.events_in += 1
        ingest_event(queue, self._last_end, event)
        if event.op == "Finalize":
            self._flush_rank(rank)

    # -- streaming flush ----------------------------------------------------
    def _flush_rank(self, rank: int) -> None:
        """Materialize one rank's compressed nodes, drop its queue, and
        feed the accumulator once every lower rank has been fed."""
        queue = self._queues.pop(rank, None)
        self._last_end.pop(rank, None)
        self._parked[rank] = queue.nodes if queue is not None else []
        self._sample_live()
        while self._next_rank in self._parked:
            self._acc.add_nodes(self._parked.pop(self._next_rank))
            self._next_rank += 1

    def _sample_live(self) -> None:
        live = (self._acc.live_node_count()
                + sum(count_nodes(nodes) for nodes in self._parked.values())
                + sum(q.live_node_count() for q in self._queues.values()))
        if live > self.nodes_live_peak:
            self.nodes_live_peak = live

    # -- finalization -------------------------------------------------------
    def finalize_trace(self, world_size: int,
                       comm_table: Optional[Dict[int, Tuple[int, ...]]] = None
                       ) -> Trace:
        """Flush any not-yet-finalized ranks (crashed/salvaged runs),
        merge, and return the global trace.  ``comm_table``, when given
        (the registry's full table), replaces the event-derived one on
        the result — membership for any comm actually referenced by
        nodes is identical either way, so merge decisions don't change.

        Public so harnesses that drive :meth:`on_event` directly (e.g.
        ``benchmarks/bench_trace_scale.py``) can finish without a World.
        """
        self._guard()
        for rank in range(world_size):
            if rank >= self._next_rank and rank not in self._parked:
                self._flush_rank(rank)
        if self._parked:
            raise TraceError(
                f"traced ranks {sorted(self._parked)} are outside "
                f"world size {world_size}")
        self._finished = True
        obs.count("scalatrace.events_in", self.events_in)
        obs.count("scalatrace.nodes_live_peak", self.nodes_live_peak)
        self._acc.world_size = world_size
        with obs.span("scalatrace.merge", traces=world_size):
            trace = self._acc.result()
        if comm_table is not None:
            trace.comm_table = dict(comm_table)
        self.trace = trace
        return trace

    def on_run_end(self, world) -> None:
        comm_table = {c.id: c.world_ranks for c in world.registry.all_comms()}
        self.finalize_trace(world.size, comm_table)
