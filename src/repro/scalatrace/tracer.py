"""The ScalaTrace PMPI hook: lossless, compressed communication tracing.

Attach a :class:`ScalaTraceHook` to :func:`repro.mpi.run_spmd` and, when
the run ends, read the merged global trace off ``hook.trace``::

    tracer = ScalaTraceHook()
    run_spmd(app, nranks=16, hooks=[tracer])
    trace = tracer.trace          # compressed, all ranks

Per rank, events stream through on-the-fly loop compression; computation
time (the gap since the previous MPI call on that rank, §3.1) is folded
into per-event histograms; at the end of the run the per-rank traces are
radix-merged into one global trace.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.mpi.hooks import MPIEvent, MPIHook, WAIT_OPS
from repro.scalatrace.compress import CompressionQueue, DEFAULT_MAX_WINDOW
from repro.scalatrace.merge import merge_traces
from repro.scalatrace.rsd import Trace


class ScalaTraceHook(MPIHook):
    """Interposition hook producing a compressed global :class:`Trace`."""

    def __init__(self, max_window: int = DEFAULT_MAX_WINDOW):
        self.max_window = max_window
        self._queues: Dict[int, CompressionQueue] = {}
        self._last_end: Dict[int, float] = {}
        self.trace: Optional[Trace] = None

    def on_event(self, event: MPIEvent) -> None:
        rank = event.rank
        queue = self._queues.get(rank)
        if queue is None:
            queue = CompressionQueue(rank, self.max_window)
            self._queues[rank] = queue
        delta = event.t_start - self._last_end.get(rank, 0.0)
        self._last_end[rank] = event.t_end

        op = event.op
        peer = size = tag = root = None
        offsets = None
        if op in ("Send", "Isend", "Recv", "Irecv"):
            peer = event.peer
            tag = event.tag
            size = event.nbytes
        elif op in WAIT_OPS:
            offsets = event.wait_offsets
        else:  # collectives (incl. Comm_split/Comm_dup/Finalize)
            size = event.nbytes
            if event.root is not None:
                root = event.root
        queue.append_event(op, event.callsite, event.comm.id,
                           peer=peer, size=size, tag=tag, root=root,
                           wait_offsets=offsets, delta_t=delta)

    def on_run_end(self, world) -> None:
        comm_table = {c.id: c.world_ranks for c in world.registry.all_comms()}
        per_rank = []
        for rank in range(world.size):
            queue = self._queues.get(rank)
            nodes = queue.nodes if queue is not None else []
            per_rank.append(Trace(world.size, nodes, dict(comm_table)))
        self.trace = merge_traces(per_rank)
