"""ScalaTrace reproduction: lossless pattern-compressed communication
tracing with RSD/PRSD structure, inter-rank merging, and histogram timing."""

from repro.scalatrace.compress import CompressionQueue, nodes_match
from repro.scalatrace.merge import (TraceMergeAccumulator, merge_node_lists,
                                    merge_traces, set_merge_fastpath)
from repro.scalatrace.rsd import (ConcreteEvent, EventNode, LoopNode, Node,
                                  ParamField, Trace, count_nodes)
from repro.scalatrace.serialize import (dump_trace, dumps_trace,
                                        iter_trace_lines, load_trace,
                                        loads_trace)
from repro.scalatrace.tracer import ScalaTraceHook, ingest_event

__all__ = [
    "CompressionQueue",
    "ConcreteEvent",
    "EventNode",
    "LoopNode",
    "Node",
    "ParamField",
    "ScalaTraceHook",
    "Trace",
    "TraceMergeAccumulator",
    "count_nodes",
    "dump_trace",
    "dumps_trace",
    "ingest_event",
    "iter_trace_lines",
    "load_trace",
    "loads_trace",
    "merge_node_lists",
    "merge_traces",
    "nodes_match",
    "set_merge_fastpath",
]
