"""ScalaTrace reproduction: lossless pattern-compressed communication
tracing with RSD/PRSD structure, inter-rank merging, and histogram timing."""

from repro.scalatrace.compress import CompressionQueue, nodes_match
from repro.scalatrace.merge import merge_node_lists, merge_traces
from repro.scalatrace.rsd import (ConcreteEvent, EventNode, LoopNode, Node,
                                  ParamField, Trace)
from repro.scalatrace.tracer import ScalaTraceHook

__all__ = [
    "CompressionQueue",
    "ConcreteEvent",
    "EventNode",
    "LoopNode",
    "Node",
    "ParamField",
    "ScalaTraceHook",
    "Trace",
    "merge_node_lists",
    "merge_traces",
    "nodes_match",
]
