"""Text serialization of compressed traces.

The on-disk format is line-oriented and human-inspectable, mirroring how
ScalaTrace traces are shipped to the (offline) benchmark generator on a
standalone workstation (§5.1).  Example::

    SCALATRACE 1
    world 4
    comm 0 0:3
    nodes {
    loop 100 ranks=0:3 {
    event Isend ranks=0:3 comm=0 inst=1 peer=ER1%4 size=Q1024 tag=Q0 time=... cs=...
    }
    event Finalize ranks=0:3 comm=0 inst=1 size=Q0 time=... cs=...
    }

Every field round-trips exactly (rank sets, parameter expressions, value
sequences, timing histograms, call-site signatures).

Both directions stream: :func:`iter_trace_lines` yields the file line by
line (the writer holds one line plus a loop-nesting stack, never the
whole text), and the parser consumes any line iterator — including a
lazily read file handle — so loading never materialises the file either.
"""

from __future__ import annotations

import io
from typing import Iterable, Iterator, List, Optional, TextIO, Union

from repro import obs
from repro.errors import TraceError
from repro.scalatrace.rsd import EventNode, LoopNode, Node, ParamField, Trace
from repro.util.callsite import Callsite
from repro.util.histogram import TimeHistogram
from repro.util.rankset import RankSet

_MAGIC = "SCALATRACE 1"


def _quote(text: str) -> str:
    # '%' first so later escapes never double-encode; every '%' in the
    # output starts exactly one escape triple, which is what makes
    # _unquote's fixed replace order collision-free.
    return (text.replace("%", "%25")
                .replace("\\", "%5C")
                .replace("\n", "%0A")
                .replace("\r", "%0D")
                .replace("\t", "%09")
                .replace(" ", "%20"))


def _unquote(text: str) -> str:
    # Exact reverse order; '%25' last, since it is the only replacement
    # that reintroduces a literal '%'.
    return (text.replace("%20", " ")
                .replace("%09", "\t")
                .replace("%0D", "\r")
                .replace("%0A", "\n")
                .replace("%5C", "\\")
                .replace("%25", "%"))


def _node_lines(nodes: List[Node]) -> Iterator[str]:
    for node in nodes:
        if isinstance(node, LoopNode):
            yield f"loop {node.count} ranks={node.ranks.serialize()} {{"
            yield from _node_lines(node.body)
            yield "}"
        else:
            parts = [f"event {node.op}",
                     f"ranks={node.ranks.serialize()}",
                     f"comm={node.comm_id}",
                     f"inst={node.instances}"]
            for name in ("peer", "size", "tag", "root"):
                field: Optional[ParamField] = getattr(node, name)
                if field is not None:
                    parts.append(f"{name}={_quote(field.serialize())}")
            if node.wait_offsets is not None:
                off = ",".join(str(o) for o in node.wait_offsets) or "-"
                parts.append(f"offsets={off}")
            parts.append(f"tfirst={_quote(node.time_first.serialize())}")
            parts.append(f"time={_quote(node.time_rest.serialize())}")
            if node.callsite is not None:
                parts.append(f"cs={_quote(node.callsite.serialize())}")
            yield " ".join(parts)


def iter_trace_lines(trace: Trace) -> Iterator[str]:
    """Yield ``trace``'s serialized form one line at a time (newlines
    excluded).  Joining with ``"\\n"`` plus a trailing newline is
    byte-identical to :func:`dumps_trace`."""
    yield _MAGIC
    yield f"world {trace.world_size}"
    for cid in sorted(trace.comm_table):
        ranks = trace.comm_table[cid]
        body = ",".join(str(r) for r in ranks) if ranks else "-"
        yield f"comm {cid} {body}"
    yield "nodes {"
    yield from _node_lines(trace.nodes)
    yield "}"


def dump_trace(trace: Trace, out: Union[TextIO, str]) -> None:
    """Write ``trace`` to a file path or text stream, one line at a time
    (constant memory in the trace's text size)."""
    if isinstance(out, str):
        with open(out, "w") as fh:
            dump_trace(trace, fh)
        return
    for line in iter_trace_lines(trace):
        out.write(line + "\n")


def dumps_trace(trace: Trace) -> str:
    buf = io.StringIO()
    dump_trace(trace, buf)
    return buf.getvalue()


class _Parser:
    """Incremental line parser: pulls from any string iterator (list,
    generator, or a lazily read file handle) and never looks ahead more
    than one line."""

    def __init__(self, lines: Iterable[str]):
        self._lines = iter(lines)
        self.consumed = 0

    def next_line(self) -> str:
        for raw in self._lines:
            self.consumed += 1
            line = raw.strip()
            if line:
                return line
        raise TraceError("unexpected end of trace file")

    def parse_nodes(self) -> List[Node]:
        nodes: List[Node] = []
        while True:
            line = self.next_line()
            if line == "}":
                return nodes
            if line.startswith("loop "):
                head = line[:-1].strip()  # strip trailing '{'
                bits = head.split()
                count = int(bits[1])
                ranks = RankSet.parse(self._kv(bits, "ranks"))
                body = self.parse_nodes()
                nodes.append(LoopNode(count, body, ranks))
            elif line.startswith("event "):
                nodes.append(self._parse_event(line))
            else:
                raise TraceError(f"bad trace line: {line!r}")

    @staticmethod
    def _kv(bits: List[str], key: str, default: str = None) -> str:
        prefix = key + "="
        for b in bits:
            if b.startswith(prefix):
                return b[len(prefix):]
        if default is not None:
            return default
        raise TraceError(f"missing field {key!r}")

    def _parse_event(self, line: str) -> EventNode:
        bits = line.split()
        op = bits[1]
        ranks = RankSet.parse(self._kv(bits, "ranks"))
        comm_id = int(self._kv(bits, "comm"))
        instances = int(self._kv(bits, "inst"))
        fields = {}
        for name in ("peer", "size", "tag", "root"):
            raw = self._kv(bits, name, default="\0")
            fields[name] = (None if raw == "\0"
                            else ParamField.parse(_unquote(raw)))
        off_raw = self._kv(bits, "offsets", default="\0")
        if off_raw == "\0":
            offsets = None
        elif off_raw == "-":
            offsets = ()
        else:
            offsets = tuple(int(x) for x in off_raw.split(","))
        time_first = TimeHistogram.parse(
            _unquote(self._kv(bits, "tfirst", default="-")))
        time_rest = TimeHistogram.parse(_unquote(self._kv(bits, "time")))
        cs_raw = self._kv(bits, "cs", default="\0")
        callsite = None if cs_raw == "\0" else Callsite.parse(_unquote(cs_raw))
        return EventNode(op, callsite, comm_id, ranks, instances,
                         fields["peer"], fields["size"], fields["tag"],
                         fields["root"], offsets, time_first, time_rest)


def load_trace(source: Union[TextIO, str]) -> Trace:
    """Read a trace from a file path, text stream, or serialized string.

    File paths and streams are consumed line by line; the whole file is
    never held in memory."""
    if isinstance(source, str):
        if "\n" in source:
            return loads_trace(source)
        with open(source) as fh:
            return _load_stream(fh)
    return _load_stream(source)


def _load_stream(stream: Iterable[str]) -> Trace:
    parser = _Parser(stream)
    with obs.span("scalatrace.parse"):
        trace = _parse_trace(parser)
        obs.count("scalatrace.parse_lines", parser.consumed)
    return trace


def _parse_trace(parser: _Parser) -> Trace:
    if parser.next_line() != _MAGIC:
        raise TraceError("not a ScalaTrace file (bad magic)")
    head = parser.next_line().split()
    if head[0] != "world":
        raise TraceError("expected 'world <n>'")
    world_size = int(head[1])
    comm_table = {}
    while True:
        line = parser.next_line()
        if line.startswith("comm "):
            _, cid, body = line.split()
            ranks = (tuple() if body == "-"
                     else tuple(int(r) for r in body.split(",")))
            comm_table[int(cid)] = ranks
        elif line == "nodes {":
            break
        else:
            raise TraceError(f"unexpected header line: {line!r}")
    nodes = parser.parse_nodes()
    return Trace(world_size, nodes, comm_table)


def loads_trace(text: str) -> Trace:
    return _load_stream(io.StringIO(text))
