"""Network performance models.

The engine asks a :class:`NetworkModel` for every timing quantity it needs;
swapping models changes the simulated platform without touching application
code — our analogue of the paper running the same generated benchmark on
Blue Gene/L and on the ARC Ethernet cluster.

Three models are provided:

* :class:`SimpleModel` — latency + bandwidth only; good for unit tests
  because times are easy to compute by hand.
* :class:`LogGPModel` — adds per-message send/receive CPU overheads (o),
  a per-byte gap (G), and an eager/rendezvous protocol switch.
* :class:`CongestionModel` — extends LogGP with the two messaging-layer
  effects the paper's Fig. 7 discussion names explicitly: an extra memory
  copy for *unexpected* messages (those arriving before the matching
  receive is posted) and finite receive-buffer *flow control* that stalls
  senders when unexpected data accumulates faster than it drains.
"""

from __future__ import annotations

import math
from typing import Dict, Optional


def _log2ceil(p: int) -> int:
    return max(1, math.ceil(math.log2(p))) if p > 1 else 0


class NetworkModel:
    """Interface consumed by the engine.  All times in seconds."""

    #: messages at or below this size use the eager protocol
    eager_threshold: int = 16 * 1024
    #: receive-side buffer space for unexpected eager data (bytes);
    #: ``None`` disables flow control entirely
    unexpected_capacity: Optional[int] = None

    def send_overhead(self, nbytes: int) -> float:
        """CPU time the sender spends posting a message."""
        raise NotImplementedError

    def recv_overhead(self, nbytes: int) -> float:
        """CPU time the receiver spends completing a matched message."""
        raise NotImplementedError

    def transit_time(self, nbytes: int) -> float:
        """Wire time from injection to arrival (latency + serialization)."""
        raise NotImplementedError

    def min_latency(self) -> float:
        """Lower bound on any message's transit; used by the engine's
        conservative wildcard-matching horizon."""
        return self.transit_time(0)

    #: model the receiver's ejection link as a serial resource: messages
    #: to the same destination queue for the wire (absolute-time effect —
    #: overlapping bursts stretch, paced traffic does not)
    wire_queueing: bool = False
    #: a sender whose message would sit in the destination's ejection
    #: queue longer than this (seconds) is stalled by flow control;
    #: None disables the check
    backlog_stall_threshold: Optional[float] = None

    def eject_time(self, nbytes: int) -> float:
        """Serialization time on the receiver's ejection link."""
        return self.transit_time(nbytes) - self.transit_time(0)

    #: receiver-stack overload modeling (commodity Ethernet/TCP): each
    #: destination's protocol stack is a leaky bucket that drains at
    #: ``overload_drain_rate`` bytes/s.  Arriving eager bytes fill it;
    #: computation gaps let it recover.  Once the standing backlog
    #: exceeds ``overload_capacity`` bytes, every further send to that
    #: destination pays ``overload_penalty`` seconds of sender backoff —
    #: the deterministic stand-in for TCP flow control and retransmission
    #: under sustained overload (the paper's Fig. 7 discussion).
    #: ``overload_drain_rate`` of None disables the mechanism.
    overload_drain_rate: Optional[float] = None
    overload_capacity: int = 0
    overload_penalty: float = 0.0

    def unexpected_copy(self, nbytes: int) -> float:
        """Extra receiver time to copy an unexpected message out of the
        unexpected-message queue.  Zero unless the model supports it."""
        return 0.0

    def stall_penalty(self, nbytes: int) -> float:
        """Extra latency paid by a sender that was stalled by flow control
        and must be resumed."""
        return 0.0

    def collective_cost(self, key: str, group_size: int, nbytes: int) -> float:
        """Cost of a collective with per-rank payload ``nbytes``.

        Uses standard tree/ring algorithm shapes expressed in terms of the
        model's own latency/bandwidth quantities.
        """
        p = group_size
        if p <= 1:
            return self.send_overhead(nbytes) + self.recv_overhead(nbytes)
        lat = self.transit_time(0) + self.send_overhead(0) + self.recv_overhead(0)
        per_byte = (self.transit_time(nbytes) - self.transit_time(0)) / max(nbytes, 1)
        stages = _log2ceil(p)
        n = nbytes
        if key in ("barrier", "finalize"):
            return stages * lat
        if key in ("bcast", "multicast"):
            return stages * (lat + n * per_byte)
        if key == "reduce":
            return stages * (lat + n * per_byte + n * _REDUCE_GAMMA)
        if key == "allreduce":
            return 2 * stages * (lat + n * per_byte + n * _REDUCE_GAMMA)
        if key in ("gather", "scatter"):
            return stages * lat + (p - 1) * n * per_byte
        if key in ("allgather", "reduce_scatter"):
            return stages * lat + (p - 1) * n * per_byte
        if key == "alltoall":
            return (p - 1) * (lat / 4 + n * per_byte)
        raise ValueError(f"unknown collective cost key: {key}")


#: per-byte arithmetic cost applied by reduction collectives
_REDUCE_GAMMA = 2e-10


class SimpleModel(NetworkModel):
    """Pure latency/bandwidth; zero CPU overheads; no protocol effects."""

    def __init__(self, latency: float = 1e-6, bandwidth: float = 1e9):
        if latency < 0 or bandwidth <= 0:
            raise ValueError("latency must be >= 0 and bandwidth > 0")
        self.latency = latency
        self.bandwidth = bandwidth
        self.eager_threshold = 1 << 62  # everything eager

    def send_overhead(self, nbytes: int) -> float:
        return 0.0

    def recv_overhead(self, nbytes: int) -> float:
        return 0.0

    def transit_time(self, nbytes: int) -> float:
        return self.latency + nbytes / self.bandwidth


class LogGPModel(NetworkModel):
    """LogGP-style parameterization with an eager/rendezvous switch.

    Defaults approximate a Blue Gene/L-class torus: few-microsecond
    latency, ~150 MB/s per link, light CPU overheads.
    """

    def __init__(self, latency: float = 3e-6, bandwidth: float = 150e6,
                 overhead: float = 1e-6, eager_threshold: int = 16 * 1024):
        self.latency = latency
        self.bandwidth = bandwidth
        self.overhead = overhead
        self.eager_threshold = eager_threshold

    def send_overhead(self, nbytes: int) -> float:
        return self.overhead

    def recv_overhead(self, nbytes: int) -> float:
        return self.overhead

    def transit_time(self, nbytes: int) -> float:
        return self.latency + nbytes / self.bandwidth


class CongestionModel(LogGPModel):
    """LogGP plus unexpected-message copies and finite-buffer flow control.

    Defaults approximate a commodity Ethernet cluster (the paper's ARC):
    tens-of-microseconds latency, ~100 MB/s, and a receive-side unexpected
    buffer small enough that a compute-starved stencil code (Fig. 7's BT at
    0% compute) overruns it and pays stalls.
    """

    wire_queueing = True

    def __init__(self, latency: float = 3e-5, bandwidth: float = 100e6,
                 overhead: float = 2e-6, eager_threshold: int = 64 * 1024,
                 unexpected_capacity: int = 256 * 1024,
                 copy_bandwidth: float = 400e6,
                 stall_latency: float = 1.5e-4,
                 backlog_stall_threshold: float = 1e-3,
                 overload_drain_rate: Optional[float] = 30e6,
                 overload_capacity: int = 64 * 1024,
                 overload_penalty: float = 5e-4):
        super().__init__(latency, bandwidth, overhead, eager_threshold)
        self.unexpected_capacity = unexpected_capacity
        self.copy_bandwidth = copy_bandwidth
        self.stall_latency = stall_latency
        self.backlog_stall_threshold = backlog_stall_threshold
        self.overload_drain_rate = overload_drain_rate
        self.overload_capacity = overload_capacity
        self.overload_penalty = overload_penalty

    def unexpected_copy(self, nbytes: int) -> float:
        # fixed queue-management cost plus the extra memcpy
        return 1e-6 + nbytes / self.copy_bandwidth

    def stall_penalty(self, nbytes: int) -> float:
        return self.stall_latency


def arc_model(**overrides) -> "CongestionModel":
    """The paper's ARC Ethernet cluster regime (§5.1/§5.4): commodity
    GigE whose receiver stacks saturate under BT's message rate once
    computation no longer paces the senders.  Calibrated so the Fig. 7
    acceleration sweep reproduces its published shape (sublinear gains,
    minimum near 10–30% compute, rising cost toward 0%)."""
    params = dict(overload_drain_rate=25e6, overload_capacity=32 * 1024,
                  overload_penalty=1.5e-3)
    params.update(overrides)
    return CongestionModel(**params)


#: Named platform presets used by the CLI, apps, and benchmarks.
PLATFORMS: Dict[str, object] = {
    "simple": SimpleModel,
    "bluegene": LogGPModel,
    "ethernet": CongestionModel,
    "arc": arc_model,
}


def make_model(name: str, **kwargs) -> NetworkModel:
    """Instantiate a named platform preset."""
    try:
        cls = PLATFORMS[name]
    except KeyError:
        raise ValueError(
            f"unknown platform {name!r}; choose from {sorted(PLATFORMS)}"
        ) from None
    return cls(**kwargs)
