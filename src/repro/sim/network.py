"""Network performance models: endpoint protocol costs + wire fabrics.

The engine asks a :class:`NetworkModel` for every timing quantity it needs;
swapping models changes the simulated platform without touching application
code — our analogue of the paper running the same generated benchmark on
Blue Gene/L and on the ARC Ethernet cluster.

A model is a composition of two orthogonal layers:

* a :class:`ProtocolModel` — everything *endpoint-side*: per-message
  send/receive CPU overheads, the eager/rendezvous protocol switch,
  unexpected-message copies, finite-buffer flow control, and receiver
  stack overload.  These are properties of the MPI/messaging software,
  not of the wires.
* a :class:`Fabric` — everything *wire-side*: transit latency and
  serialization.  :class:`FlatFabric` is the classic single-number
  fabric (every pair of ranks is one latency + bandwidth away);
  :class:`repro.topology.RoutedFabric` routes messages hop by hop over
  a real topology graph (torus, fat-tree) with per-link contention.

Three flat-fabric presets are provided (all byte-identical to the
pre-split monolithic models — pinned by the goldens in
``tests/sim/golden/flat_fabric.json``):

* :class:`SimpleModel` — latency + bandwidth only; good for unit tests
  because times are easy to compute by hand.
* :class:`LogGPModel` — adds per-message send/receive CPU overheads (o),
  a per-byte gap (G), and an eager/rendezvous protocol switch.
* :class:`CongestionModel` — extends LogGP with the two messaging-layer
  effects the paper's Fig. 7 discussion names explicitly: an extra memory
  copy for *unexpected* messages (those arriving before the matching
  receive is posted) and finite receive-buffer *flow control* that stalls
  senders when unexpected data accumulates faster than it drains.
"""

from __future__ import annotations

import inspect
import math
from typing import Callable, Dict, Optional, Tuple


def _log2ceil(p: int) -> int:
    return max(1, math.ceil(math.log2(p))) if p > 1 else 0


class ProtocolModel:
    """Endpoint-side messaging-layer costs, independent of the fabric.

    Captures what the MPI library and NIC driver charge per message:
    CPU overheads, the eager threshold, the unexpected-message copy,
    flow-control stalls, and the leaky-bucket receiver-overload model.
    A single :class:`ProtocolModel` can be composed with any
    :class:`Fabric` (flat or routed) without changing meaning.
    """

    def __init__(self,
                 send_overhead: float = 0.0,
                 recv_overhead: float = 0.0,
                 eager_threshold: int = 16 * 1024,
                 unexpected_capacity: Optional[int] = None,
                 copy_overhead: float = 0.0,
                 copy_bandwidth: Optional[float] = None,
                 stall_latency: float = 0.0,
                 backlog_stall_threshold: Optional[float] = None,
                 overload_drain_rate: Optional[float] = None,
                 overload_capacity: int = 0,
                 overload_penalty: float = 0.0,
                 wire_queueing: bool = False):
        if send_overhead < 0 or recv_overhead < 0:
            raise ValueError("overheads must be >= 0")
        self.send_overhead = send_overhead
        self.recv_overhead = recv_overhead
        self.eager_threshold = eager_threshold
        self.unexpected_capacity = unexpected_capacity
        self.copy_overhead = copy_overhead
        self.copy_bandwidth = copy_bandwidth
        self.stall_latency = stall_latency
        self.backlog_stall_threshold = backlog_stall_threshold
        self.overload_drain_rate = overload_drain_rate
        self.overload_capacity = overload_capacity
        self.overload_penalty = overload_penalty
        self.wire_queueing = wire_queueing

    def send_cost(self, nbytes: int) -> float:
        """CPU time the sender spends posting a message."""
        return self.send_overhead

    def recv_cost(self, nbytes: int) -> float:
        """CPU time the receiver spends completing a matched message."""
        return self.recv_overhead

    def unexpected_copy(self, nbytes: int) -> float:
        """Extra receiver time to copy an unexpected message out of the
        unexpected-message queue (zero when the model has no copy cost)."""
        if self.copy_bandwidth is None:
            return 0.0
        return self.copy_overhead + nbytes / self.copy_bandwidth

    def stall_penalty(self, nbytes: int) -> float:
        """Extra latency paid by a sender resumed after a flow-control
        stall."""
        return self.stall_latency


class Fabric:
    """Wire-timing half of a network model.

    A fabric answers "how long does the wire take" questions; it knows
    nothing about MPI protocols.  The optional ``src``/``dst`` arguments
    let routed fabrics price a specific rank pair; flat fabrics ignore
    them (every pair is equidistant).
    """

    #: True when messages traverse named links that can contend (the
    #: engine then folds sends through the per-link FIFO machinery)
    routed = False

    def transit_time(self, nbytes: int, src: Optional[int] = None,
                     dst: Optional[int] = None) -> float:
        """Uncontended wire time from injection to arrival."""
        raise NotImplementedError

    def min_latency(self) -> float:
        """Lower bound on any message's transit (safety-horizon input)."""
        return self.transit_time(0)

    def eject_time(self, nbytes: int) -> float:
        """Serialization time on the receiver's ejection link."""
        return self.transit_time(nbytes) - self.transit_time(0)


class FlatFabric(Fabric):
    """The classic single-number fabric: one latency, one bandwidth,
    every rank pair equidistant, contention only on the per-destination
    ejection link (when the composed protocol enables wire queueing)."""

    def __init__(self, latency: float = 1e-6, bandwidth: float = 1e9):
        if latency < 0 or bandwidth <= 0:
            raise ValueError("latency must be >= 0 and bandwidth > 0")
        self.latency = latency
        self.bandwidth = bandwidth

    def transit_time(self, nbytes: int, src: Optional[int] = None,
                     dst: Optional[int] = None) -> float:
        """Latency plus serialization at the flat bandwidth."""
        return self.latency + nbytes / self.bandwidth


class NetworkModel:
    """Interface consumed by the engine.  All times in seconds.

    A :class:`NetworkModel` composes a :class:`ProtocolModel` (endpoint
    costs) with a :class:`Fabric` (wire timing) and exposes the flat
    query surface the engine's hot path reads.  The endpoint knobs are
    mirrored onto instance attributes at construction so the engine
    never pays an extra indirection per message.
    """

    #: True when the fabric routes over named, contended links
    routed = False

    #: messages at or below this size use the eager protocol
    eager_threshold: int = 16 * 1024
    #: receive-side buffer space for unexpected eager data (bytes);
    #: ``None`` disables flow control entirely
    unexpected_capacity: Optional[int] = None
    #: model the receiver's ejection link as a serial resource: messages
    #: to the same destination queue for the wire (absolute-time effect —
    #: overlapping bursts stretch, paced traffic does not)
    wire_queueing: bool = False
    #: a sender whose message would sit in the destination's ejection
    #: queue longer than this (seconds) is stalled by flow control;
    #: None disables the check
    backlog_stall_threshold: Optional[float] = None
    #: receiver-stack overload modeling (commodity Ethernet/TCP): each
    #: destination's protocol stack is a leaky bucket that drains at
    #: ``overload_drain_rate`` bytes/s.  Arriving eager bytes fill it;
    #: computation gaps let it recover.  Once the standing backlog
    #: exceeds ``overload_capacity`` bytes, every further send to that
    #: destination pays ``overload_penalty`` seconds of sender backoff —
    #: the deterministic stand-in for TCP flow control and retransmission
    #: under sustained overload (the paper's Fig. 7 discussion).
    #: ``overload_drain_rate`` of None disables the mechanism.
    overload_drain_rate: Optional[float] = None
    overload_capacity: int = 0
    overload_penalty: float = 0.0

    def __init__(self, protocol: Optional[ProtocolModel] = None,
                 fabric: Optional[Fabric] = None):
        self.protocol = protocol if protocol is not None else ProtocolModel()
        self.fabric = fabric if fabric is not None else FlatFabric()
        p = self.protocol
        self.eager_threshold = p.eager_threshold
        self.unexpected_capacity = p.unexpected_capacity
        self.wire_queueing = p.wire_queueing
        self.backlog_stall_threshold = p.backlog_stall_threshold
        self.overload_drain_rate = p.overload_drain_rate
        self.overload_capacity = p.overload_capacity
        self.overload_penalty = p.overload_penalty

    # -- protocol delegation -------------------------------------------------
    def send_overhead(self, nbytes: int) -> float:
        """CPU time the sender spends posting a message."""
        return self.protocol.send_cost(nbytes)

    def recv_overhead(self, nbytes: int) -> float:
        """CPU time the receiver spends completing a matched message."""
        return self.protocol.recv_cost(nbytes)

    def unexpected_copy(self, nbytes: int) -> float:
        """Extra receiver time to copy an unexpected message out of the
        unexpected-message queue.  Zero unless the model supports it."""
        return self.protocol.unexpected_copy(nbytes)

    def stall_penalty(self, nbytes: int) -> float:
        """Extra latency paid by a sender that was stalled by flow control
        and must be resumed."""
        return self.protocol.stall_penalty(nbytes)

    # -- fabric delegation ---------------------------------------------------
    def transit_time(self, nbytes: int, src: Optional[int] = None,
                     dst: Optional[int] = None) -> float:
        """Wire time from injection to arrival (latency + serialization)."""
        return self.fabric.transit_time(nbytes, src, dst)

    def min_latency(self) -> float:
        """Lower bound on any message's transit; used by the engine's
        conservative wildcard-matching horizon."""
        return self.fabric.min_latency()

    def eject_time(self, nbytes: int) -> float:
        """Serialization time on the receiver's ejection link."""
        return self.fabric.eject_time(nbytes)

    # -- collectives ---------------------------------------------------------
    def collective_cost(self, key: str, group_size: int, nbytes: int) -> float:
        """Cost of a collective with per-rank payload ``nbytes``.

        Uses standard tree/ring algorithm shapes expressed in terms of the
        model's own latency/bandwidth quantities.
        """
        p = group_size
        if p <= 1:
            return self.send_overhead(nbytes) + self.recv_overhead(nbytes)
        lat = self.transit_time(0) + self.send_overhead(0) + self.recv_overhead(0)
        per_byte = (self.transit_time(nbytes) - self.transit_time(0)) / max(nbytes, 1)
        stages = _log2ceil(p)
        n = nbytes
        if key in ("barrier", "finalize"):
            return stages * lat
        if key in ("bcast", "multicast"):
            return stages * (lat + n * per_byte)
        if key == "reduce":
            return stages * (lat + n * per_byte + n * _REDUCE_GAMMA)
        if key == "allreduce":
            return 2 * stages * (lat + n * per_byte + n * _REDUCE_GAMMA)
        if key in ("gather", "scatter"):
            return stages * lat + (p - 1) * n * per_byte
        if key in ("allgather", "reduce_scatter"):
            return stages * lat + (p - 1) * n * per_byte
        if key == "alltoall":
            return (p - 1) * (lat / 4 + n * per_byte)
        raise ValueError(f"unknown collective cost key: {key}")


#: per-byte arithmetic cost applied by reduction collectives
_REDUCE_GAMMA = 2e-10


class SimpleModel(NetworkModel):
    """Pure latency/bandwidth; zero CPU overheads; no protocol effects."""

    def __init__(self, latency: float = 1e-6, bandwidth: float = 1e9):
        if latency < 0 or bandwidth <= 0:
            raise ValueError("latency must be >= 0 and bandwidth > 0")
        super().__init__(ProtocolModel(eager_threshold=1 << 62),
                         FlatFabric(latency, bandwidth))
        self.latency = latency
        self.bandwidth = bandwidth


class LogGPModel(NetworkModel):
    """LogGP-style parameterization with an eager/rendezvous switch.

    Defaults approximate a Blue Gene/L-class torus: few-microsecond
    latency, ~150 MB/s per link, light CPU overheads.
    """

    def __init__(self, latency: float = 3e-6, bandwidth: float = 150e6,
                 overhead: float = 1e-6, eager_threshold: int = 16 * 1024,
                 protocol: Optional[ProtocolModel] = None):
        if protocol is None:
            protocol = ProtocolModel(send_overhead=overhead,
                                     recv_overhead=overhead,
                                     eager_threshold=eager_threshold)
        super().__init__(protocol, FlatFabric(latency, bandwidth))
        self.latency = latency
        self.bandwidth = bandwidth
        self.overhead = overhead


class CongestionModel(LogGPModel):
    """LogGP plus unexpected-message copies and finite-buffer flow control.

    Defaults approximate a commodity Ethernet cluster (the paper's ARC):
    tens-of-microseconds latency, ~100 MB/s, and a receive-side unexpected
    buffer small enough that a compute-starved stencil code (Fig. 7's BT at
    0% compute) overruns it and pays stalls.
    """

    wire_queueing = True

    def __init__(self, latency: float = 3e-5, bandwidth: float = 100e6,
                 overhead: float = 2e-6, eager_threshold: int = 64 * 1024,
                 unexpected_capacity: int = 256 * 1024,
                 copy_bandwidth: float = 400e6,
                 stall_latency: float = 1.5e-4,
                 backlog_stall_threshold: float = 1e-3,
                 overload_drain_rate: Optional[float] = 30e6,
                 overload_capacity: int = 64 * 1024,
                 overload_penalty: float = 5e-4):
        protocol = ProtocolModel(
            send_overhead=overhead, recv_overhead=overhead,
            eager_threshold=eager_threshold,
            unexpected_capacity=unexpected_capacity,
            # fixed queue-management cost plus the extra memcpy
            copy_overhead=1e-6, copy_bandwidth=copy_bandwidth,
            stall_latency=stall_latency,
            backlog_stall_threshold=backlog_stall_threshold,
            overload_drain_rate=overload_drain_rate,
            overload_capacity=overload_capacity,
            overload_penalty=overload_penalty,
            wire_queueing=True)
        super().__init__(latency, bandwidth, overhead, eager_threshold,
                         protocol=protocol)
        self.copy_bandwidth = copy_bandwidth
        self.stall_latency = stall_latency


def arc_model(**overrides) -> "CongestionModel":
    """The paper's ARC Ethernet cluster regime (§5.1/§5.4): commodity
    GigE whose receiver stacks saturate under BT's message rate once
    computation no longer paces the senders.  Calibrated so the Fig. 7
    acceleration sweep reproduces its published shape (sublinear gains,
    minimum near 10–30% compute, rising cost toward 0%)."""
    params = dict(overload_drain_rate=25e6, overload_capacity=32 * 1024,
                  overload_penalty=1.5e-3)
    params.update(overrides)
    return CongestionModel(**params)


#: ``arc_model`` forwards its ``**overrides`` verbatim; advertise the
#: wrapped constructor so signature introspection sees the real params
arc_model.param_source = CongestionModel  # type: ignore[attr-defined]


#: Named platform presets used by the CLI, apps, and benchmarks.
PLATFORMS: Dict[str, Callable[..., NetworkModel]] = {
    "simple": SimpleModel,
    "bluegene": LogGPModel,
    "ethernet": CongestionModel,
    "arc": arc_model,
}


def preset_params(name: str) -> Tuple[str, ...]:
    """Keyword parameters accepted by the named platform preset.

    Presets that forward ``**kwargs`` (like :func:`arc_model`) advertise
    the constructor they wrap via a ``param_source`` attribute.
    """
    try:
        ctor = PLATFORMS[name]
    except KeyError:
        raise ValueError(
            f"unknown platform {name!r}; choose from {sorted(PLATFORMS)}"
        ) from None
    target = getattr(ctor, "param_source", ctor)
    sig = inspect.signature(target)
    return tuple(
        p.name for p in sig.parameters.values()
        if p.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD,
                      inspect.Parameter.KEYWORD_ONLY)
        and p.name not in ("self", "protocol"))


def validate_platform_params(name: str, keys) -> None:
    """Raise :class:`ValueError` naming the preset and its accepted
    parameters when any of ``keys`` is not a constructor parameter."""
    accepted = preset_params(name)
    bad = sorted(k for k in keys if k not in accepted)
    if bad:
        raise ValueError(
            f"platform {name!r} does not accept parameter(s) {bad}; "
            f"accepted parameters: {sorted(accepted)}")


def make_model(name: str, **kwargs) -> NetworkModel:
    """Instantiate a named platform preset.

    Unknown names and unknown/invalid constructor parameters both raise
    a :class:`ValueError` naming the preset and what it accepts, so a
    typo in ``run_platform_params`` fails with a readable message
    instead of a raw ``TypeError`` from deep inside a worker process.
    """
    try:
        cls = PLATFORMS[name]
    except KeyError:
        raise ValueError(
            f"unknown platform {name!r}; choose from {sorted(PLATFORMS)}"
        ) from None
    validate_platform_params(name, kwargs)
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise ValueError(
            f"bad parameters for platform {name!r}: {exc}; accepted "
            f"parameters: {sorted(preset_params(name))}") from None
