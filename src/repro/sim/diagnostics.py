"""Structured deadlock diagnostics for the simulator.

When every live rank is blocked, the engine used to raise a bare
exception with a prose description.  Algorithm 2 of the paper exists
precisely because wait-for cycles are the interesting object, so the
engine now builds a :class:`DeadlockDiagnostic`: per-rank blocked-op
records with explicit *waits-on* edges, plus one concrete wait-for cycle
extracted from that graph (when one exists).  The diagnostic rides on
:class:`~repro.errors.SimDeadlockError` and inside salvaged fault
reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class BlockedOp:
    """One blocked rank: what it is stuck on and whom it needs."""

    rank: int
    kind: str                     #: waitall | waitany | collective
    detail: str                   #: human description of the blocked op
    waits_on: Tuple[int, ...]     #: ranks whose progress could unblock it

    def to_dict(self) -> Dict[str, Any]:
        return {"rank": self.rank, "kind": self.kind,
                "detail": self.detail, "waits_on": list(self.waits_on)}


@dataclass
class DeadlockDiagnostic:
    """The wait-for structure of a hung (or starved) simulation."""

    blocked: Dict[int, BlockedOp] = field(default_factory=dict)
    #: one wait-for cycle (rank sequence, first rank not repeated);
    #: empty when the hang is starvation (waiting on crashed/lost peers)
    #: rather than a true cycle
    cycle: Tuple[int, ...] = ()
    crashed: Tuple[int, ...] = ()
    time: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {"blocked": {r: b.to_dict()
                            for r, b in sorted(self.blocked.items())},
                "cycle": list(self.cycle),
                "crashed": list(self.crashed),
                "time": self.time}

    def render(self, indent: str = "") -> str:
        lines = [f"{indent}deadlock diagnostic "
                 f"(t={self.time * 1e6:.1f} us):"]
        for rank in sorted(self.blocked):
            b = self.blocked[rank]
            waits = ", ".join(map(str, b.waits_on)) or "nobody"
            lines.append(f"{indent}  rank {rank}: {b.kind} — {b.detail} "
                         f"(waits on {waits})")
        if self.cycle:
            arrow = " -> ".join(map(str, self.cycle + self.cycle[:1]))
            lines.append(f"{indent}  wait-for cycle: {arrow}")
        elif self.crashed:
            lines.append(f"{indent}  no cycle: ranks starved by crashed "
                         f"ranks {list(self.crashed)}")
        return "\n".join(lines)


def find_cycle(edges: Dict[int, Tuple[int, ...]]) -> Tuple[int, ...]:
    """One cycle in the wait-for graph, deterministically.

    ``edges`` maps a blocked rank to the (sorted) ranks it waits on;
    edges to ranks outside the graph are ignored (a rank waiting only on
    crashed peers has no live outgoing edge).  DFS roots and neighbours
    are visited in ascending rank order, so equal graphs always yield
    the same cycle.  The cycle is normalized to start at its smallest
    rank.  Returns ``()`` when the graph is acyclic.
    """
    WHITE, GREY, BLACK = 0, 1, 2
    color = {r: WHITE for r in edges}
    parent: Dict[int, Optional[int]] = {}

    def dfs(root: int) -> Tuple[int, ...]:
        stack: List[Tuple[int, int]] = [(root, 0)]
        color[root] = GREY
        parent[root] = None
        while stack:
            node, idx = stack.pop()
            nbrs = [n for n in edges[node] if n in color]
            if idx < len(nbrs):
                stack.append((node, idx + 1))
                nxt = nbrs[idx]
                if color[nxt] == GREY:
                    # walk parents back from node to nxt
                    cyc = [node]
                    cur = parent[node]
                    while cur is not None and cur != nxt:
                        cyc.append(cur)
                        cur = parent[cur]
                    if node != nxt:
                        cyc.append(nxt)
                    cyc.reverse()
                    k = cyc.index(min(cyc))
                    return tuple(cyc[k:] + cyc[:k])
                if color[nxt] == WHITE:
                    color[nxt] = GREY
                    parent[nxt] = node
                    stack.append((nxt, 0))
            else:
                color[node] = BLACK
        return ()

    for root in sorted(edges):
        if color[root] == WHITE:
            cyc = dfs(root)
            if cyc:
                return cyc
    return ()
