"""Matching layer of the engine core: channels, candidates, commits.

This module owns the *which message pairs with which receive* half of
the simulator, split out of the monolithic engine:

* per-``(src, dst, comm)`` FIFO **channels** of in-flight messages
  (matched entries are tombstoned in place and purged from heads);
* pending-receive queues **indexed** per ``(dst, src, comm)`` plus a
  per-``(dst, comm)`` wildcard queue, walked in post order;
* fixed **arrival estimates** cached on each message at send time
  (every input — inject time, fixed arrival, fault delay, throttle
  stall — is immutable once the message is in a channel, so the
  float arithmetic runs once, in the same operation order as the
  original per-query computation: bit-identical by construction);
* a per-``(dst, comm)`` **wildcard candidate heap** of channel heads
  ordered by the scalar tie-break tuple ``(est, src, seq)``, used by
  the batch executor to answer ANY_SOURCE/ANY_TAG queries in O(log n)
  instead of scanning every live channel.  Rendezvous heads (whose
  estimate depends on the receive post time) are counted per
  ``(dst, comm)``; any query that could involve one — or a
  tag-selective wildcard — falls back to the reference scan.

The candidate heap is bookkeeping only: both engine modes maintain it,
but only the batch drain reads it.  The scalar drain keeps the
reference scan (`candidates_for` + ``min``), which is what the
Hypothesis equivalence suite compares the heap against.
"""

from __future__ import annotations

import heapq
from collections import deque
from operator import attrgetter
from typing import Dict, List, Optional, Tuple

from repro.sim.ops import ANY_SOURCE, ANY_TAG
from repro.sim.requests import Status

_seq_of = attrgetter("seq")

__all__ = ["_Message", "_PendingRecv", "_purge_head", "arrival_est",
           "MatchIndex", "drain_batch"]


class _Message:
    __slots__ = ("seq", "src", "dst", "tag", "comm_id", "nbytes", "post_time",
                 "inject_time", "protocol", "throttled", "charged", "sreq",
                 "arrival", "matched", "fault_delay", "est", "rdv_ready",
                 "rdv_transit")

    def __init__(self, seq, src, dst, tag, comm_id, nbytes, post_time,
                 inject_time, protocol, throttled, charged, sreq,
                 arrival=None, fault_delay=0.0):
        self.seq = seq                # per-engine, allocated in post order
        self.src = src
        self.dst = dst
        self.tag = tag
        self.comm_id = comm_id
        self.nbytes = nbytes
        self.post_time = post_time
        self.inject_time = inject_time
        self.protocol = protocol      # "eager" or "rdv"
        self.throttled = throttled
        self.charged = charged        # counted against dst's unexpected buffer
        self.sreq = sreq
        self.arrival = arrival        # fixed arrival (wire-queued eager)
        self.matched = False          # tombstone: matched, awaiting purge
        self.fault_delay = fault_delay  # injected retransmit/reorder delay
        # cached arrival estimate (set by the engine at send time):
        # eager messages have a fixed ``est``; rendezvous messages carry
        # the (handshake-ready, transit) pair and are estimated per query
        self.est: Optional[float] = None
        self.rdv_ready = 0.0
        self.rdv_transit = 0.0


class _PendingRecv:
    __slots__ = ("seq", "rank", "src", "tag", "comm_id", "post_time", "rreq",
                 "matched")

    def __init__(self, seq, rank, src, tag, comm_id, post_time, rreq):
        self.seq = seq                # per-engine, allocated in post order
        self.rank = rank
        self.src = src
        self.tag = tag
        self.comm_id = comm_id
        self.post_time = post_time
        self.rreq = rreq
        self.matched = False          # tombstone: matched, awaiting purge


def _purge_head(dq: deque) -> None:
    """Drop matched entries from the front of a queue (tombstone purge)."""
    while dq and dq[0].matched:
        dq.popleft()


def arrival_est(msg: _Message, recv_post: float) -> float:
    """Estimated data-arrival time of ``msg`` for a receive posted at
    ``recv_post``.

    Reads the estimate cached at send time.  Eager estimates are fixed;
    rendezvous data moves once both sides are ready, so the handshake
    time folds in the receive post time per query.  The cached values
    were computed with the exact operation order of the original
    per-query arithmetic, so results are bit-identical.
    """
    est = msg.est
    if est is not None:
        return est
    return max(msg.rdv_ready, recv_post) + msg.rdv_transit


class MatchIndex:
    """Channel and pending-receive state with wildcard candidate heaps."""

    __slots__ = ("channels", "chan_live", "channels_by_dst",
                 "srcs_by_dst_comm", "pending_recvs", "pending_live",
                 "recv_index", "wild_index", "unexpected_bytes",
                 "cand_heap", "head_seq", "head_rdv", "rdv_heads",
                 "head_tag", "head_tag_count", "comms_by_dst",
                 "directed_live", "wild_live", "defer_version",
                 "defer_memo", "wild_seen")

    def __init__(self) -> None:
        # (src, dst, comm_id) -> deque of _Message in send order (matched
        # messages are tombstoned in place and purged from the head)
        self.channels: Dict[Tuple[int, int, int], deque] = {}
        # live (unmatched) message count per channel key
        self.chan_live: Dict[Tuple[int, int, int], int] = {}
        # dst -> set of channel keys with unmatched messages
        self.channels_by_dst: Dict[int, set] = {}
        # (dst, comm_id) -> set of srcs with unmatched messages
        self.srcs_by_dst_comm: Dict[Tuple[int, int], set] = {}
        # dst -> deque of _PendingRecv in post order (tombstoned)
        self.pending_recvs: Dict[int, deque] = {}
        # live (unmatched) pending-receive count per dst
        self.pending_live: Dict[int, int] = {}
        # (dst, src, comm_id) -> deque of directed _PendingRecv, post order
        self.recv_index: Dict[Tuple[int, int, int], deque] = {}
        # (dst, comm_id) -> deque of ANY_SOURCE _PendingRecv, post order
        self.wild_index: Dict[Tuple[int, int], deque] = {}
        self.unexpected_bytes: Dict[int, int] = {}
        # -- wildcard candidate heap ------------------------------------
        # (dst, comm_id) -> heap of (est, src, seq, msg) entries, one per
        # *registered channel head*; stale entries (head moved on) are
        # dropped lazily on pop by comparing seq against head_seq
        self.cand_heap: Dict[Tuple[int, int], List[tuple]] = {}
        # channel key -> seq of the currently registered head message
        self.head_seq: Dict[Tuple[int, int, int], int] = {}
        # channel key -> True when the registered head is rendezvous
        self.head_rdv: Dict[Tuple[int, int, int], bool] = {}
        # (dst, comm_id) -> number of live channels with a rdv head;
        # nonzero forces the reference scan (rdv estimates depend on the
        # receive post time, so a fixed-key heap cannot order them)
        self.rdv_heads: Dict[Tuple[int, int], int] = {}
        # channel key -> tag of the currently registered head message
        self.head_tag: Dict[Tuple[int, int, int], int] = {}
        # (dst, comm_id) -> {tag: registered-head count}: when every
        # live head carries the queried tag, each channel's head IS its
        # first tag-compatible message, so the candidate heap answers
        # tag-selective wildcards too (the common single-tag case)
        self.head_tag_count: Dict[Tuple[int, int], Dict[int, int]] = {}
        # dst -> set of comm ids with live (unmatched) messages
        self.comms_by_dst: Dict[int, set] = {}
        # dst -> live directed / wildcard pending-receive counts, letting
        # drain_buckets skip bucket classes that cannot contribute
        self.directed_live: Dict[int, int] = {}
        self.wild_live: Dict[int, int] = {}
        # -- deferral memo ----------------------------------------------
        # dst -> version, bumped by every event that can change what a
        # drain at dst would do: any head (re)registration on one of its
        # channels (covers new channels, new comms, head tag/rdv flips —
        # mid-channel appends never move a head) and any pending-receive
        # add or retire at dst
        self.defer_version: Dict[int, int] = {}
        # dst -> (est, version, tag) recorded when a non-relaxed batch
        # drain reduced to a single wildcard bucket answered by the
        # candidate heap and deferred on the horizon.  While the version
        # holds, a re-drain would rediscover the same candidate with the
        # same fixed est, so the whole walk collapses to one horizon
        # check (rank clocks only advance, so the horizon creeps up
        # toward est; the memo dies on the first structural change).
        # One structural change is survivable: a fresh eager head whose
        # est is no earlier than the memoed candidate's and whose tag
        # still satisfies the recorded query cannot change the defer
        # decision — the heap only gained a no-better entry — so
        # ``_set_head`` keeps the memo alive across it.
        self.defer_memo: Dict[int, Tuple[float, int, int]] = {}
        # dsts that have ever posted an ANY_SOURCE receive.  Candidate
        # heaps only answer wildcard queries, so all head bookkeeping
        # (heap pushes, head seq/tag/rdv counts) is skipped for purely
        # directed receivers and activated retroactively — by
        # registering every live channel head — on the first wildcard
        # post (:meth:`_activate_wild`)
        self.wild_seen: set = set()

    def seed(self, nranks: int) -> None:
        for i in range(nranks):
            self.pending_recvs[i] = deque()
            self.pending_live[i] = 0
            self.unexpected_bytes[i] = 0
            self.channels_by_dst[i] = set()
            self.comms_by_dst[i] = set()
            self.directed_live[i] = 0
            self.wild_live[i] = 0
            self.defer_version[i] = 0

    # -- head registration --------------------------------------------------
    def _activate_wild(self, dst: int) -> None:
        """First ANY_SOURCE receive at ``dst``: bring the candidate-head
        bookkeeping up to date by registering the current head of every
        live channel (nothing was tracked while ``dst`` was purely
        directed).  Registration order is a set walk, but the heap is
        keyed by the full ``(est, src, seq)`` tuple, so pop order — the
        only thing read — is order-independent."""
        self.wild_seen.add(dst)
        for key in self.channels_by_dst[dst]:
            chan = self.channels[key]
            _purge_head(chan)
            self._set_head(key, (dst, key[2]), chan[0])

    def _set_head(self, key, dc, msg: Optional[_Message]) -> None:
        """Register ``msg`` as the new head of channel ``key`` (or clear
        the registration when the channel went dead)."""
        dst = dc[0]
        memo = self.defer_memo.get(dst)
        if memo is None:
            self.defer_version[dst] += 1
        elif (msg is not None
              and memo[1] == self.defer_version[dst]
              and msg.est is not None and msg.est >= memo[0]
              and (memo[2] == ANY_TAG or msg.tag == memo[2])):
            # a fresh eager head that arrives no earlier than the
            # deferred candidate and still matches the recorded query:
            # the re-drain's decision cannot change, keep the memo
            pass
        else:
            self.defer_version[dst] += 1
            del self.defer_memo[dst]
        if msg is None:
            old_tag = self.head_tag.pop(key, None)
            if old_tag is not None:
                tc = self.head_tag_count[dc]
                n = tc[old_tag] - 1
                if n:
                    tc[old_tag] = n
                else:
                    del tc[old_tag]
            self.head_seq.pop(key, None)
            if self.head_rdv.get(key, False):
                self.rdv_heads[dc] -= 1
                self.head_rdv[key] = False
            return
        tag = msg.tag
        old_tag = self.head_tag.get(key)
        if old_tag != tag:
            # successive heads usually carry the same tag, in which case
            # the count decrement/increment would cancel — skip both
            self.head_tag[key] = tag
            tc = self.head_tag_count.get(dc)
            if tc is None:
                tc = self.head_tag_count[dc] = {}
            tc[tag] = tc.get(tag, 0) + 1
            if old_tag is not None:
                n = tc[old_tag] - 1
                if n:
                    tc[old_tag] = n
                else:
                    del tc[old_tag]
        old_rdv = self.head_rdv.get(key, False)
        self.head_seq[key] = msg.seq
        est = msg.est
        new_rdv = est is None
        if new_rdv != old_rdv:
            if new_rdv:
                self.rdv_heads[dc] = self.rdv_heads.get(dc, 0) + 1
            else:
                self.rdv_heads[dc] -= 1
            self.head_rdv[key] = new_rdv
        if not new_rdv:
            heap = self.cand_heap.get(dc)
            if heap is None:
                heap = self.cand_heap[dc] = []
            heapq.heappush(heap, (est, msg.src, msg.seq, msg))

    def best_candidate(self, dst: int, comm_id: int) -> Optional[_Message]:
        """Earliest-arriving wildcard candidate by ``(est, src, seq)``.

        Only valid when every live channel head for ``(dst, comm_id)``
        is eager (``rdv_heads`` is zero) and the receive is ANY_TAG —
        then the heap minimum equals the reference scan's ``min`` over
        per-channel heads, because the entry key is exactly the scan's
        tie-break tuple and seqs are unique.  Returns None when no live
        channel exists.
        """
        heap = self.cand_heap.get((dst, comm_id))
        if not heap:
            return None
        head_seq = self.head_seq
        while heap:
            entry = heap[0]
            msg = entry[3]
            if msg.matched or head_seq.get(
                    (msg.src, dst, comm_id)) != entry[2]:
                heapq.heappop(heap)  # stale: head moved on
                continue
            return msg
        return None

    # -- message side -------------------------------------------------------
    def add_message(self, msg: _Message) -> None:
        key = (msg.src, msg.dst, msg.comm_id)
        chan = self.channels.get(key)
        if chan is None:
            chan = self.channels[key] = deque()
            self.chan_live[key] = 0
        chan.append(msg)
        live = self.chan_live[key] + 1
        self.chan_live[key] = live
        self.channels_by_dst[msg.dst].add(key)
        dc = (msg.dst, msg.comm_id)
        srcs = self.srcs_by_dst_comm.get(dc)
        if srcs is None:
            srcs = self.srcs_by_dst_comm[dc] = set()
        if not srcs:
            self.comms_by_dst[msg.dst].add(msg.comm_id)
        srcs.add(msg.src)
        if live == 1 and msg.dst in self.wild_seen:
            # the channel was dead, so this message is its first
            # unmatched entry: the new head
            self._set_head(key, dc, msg)

    def retire_message(self, msg: _Message) -> None:
        """Tombstone a matched message and update channel bookkeeping.

        Mid-queue entries are purged lazily once they reach a queue
        head; the candidate-head registration moves to the next live
        head (the deque front after the purge) when the committed
        message was the head.
        """
        msg.matched = True
        key = (msg.src, msg.dst, msg.comm_id)
        live = self.chan_live[key] - 1
        self.chan_live[key] = live
        chan = self.channels[key]
        tracked = msg.dst in self.wild_seen
        was_head = tracked and self.head_seq.get(key) == msg.seq
        _purge_head(chan)
        dc = (msg.dst, msg.comm_id)
        if not live:
            self.channels_by_dst[msg.dst].discard(key)
            srcs = self.srcs_by_dst_comm.get(dc)
            if srcs is not None:
                srcs.discard(msg.src)
                if not srcs:
                    self.comms_by_dst[msg.dst].discard(msg.comm_id)
            if was_head:
                self._set_head(key, dc, None)
        elif was_head:
            # live > 0 guarantees the purge stopped at an unmatched
            # entry, which is the earliest one: the new head
            self._set_head(key, dc, chan[0])

    # -- receive side -------------------------------------------------------
    def add_recv(self, pr: _PendingRecv) -> None:
        self.pending_recvs[pr.rank].append(pr)
        self.pending_live[pr.rank] += 1
        self.defer_version[pr.rank] += 1
        if pr.src == ANY_SOURCE:
            self.wild_live[pr.rank] += 1
            if pr.rank not in self.wild_seen:
                self._activate_wild(pr.rank)
            self.wild_index.setdefault(
                (pr.rank, pr.comm_id), deque()).append(pr)
        else:
            self.directed_live[pr.rank] += 1
            self.recv_index.setdefault(
                (pr.rank, pr.src, pr.comm_id), deque()).append(pr)

    def retire_recv(self, pr: _PendingRecv) -> None:
        pr.matched = True
        self.pending_live[pr.rank] -= 1
        self.defer_version[pr.rank] += 1
        if pr.src == ANY_SOURCE:
            self.wild_live[pr.rank] -= 1
        else:
            self.directed_live[pr.rank] -= 1
        _purge_head(self.pending_recvs[pr.rank])

    def has_compatible_recv(self, dst: int, src: int, tag: int,
                            comm_id: int) -> bool:
        directed = self.recv_index.get((dst, src, comm_id))
        if directed:
            _purge_head(directed)
            for pr in directed:
                if not pr.matched and pr.tag in (tag, ANY_TAG):
                    return True
        wild = self.wild_index.get((dst, comm_id))
        if wild:
            _purge_head(wild)
            for pr in wild:
                if not pr.matched and pr.tag in (tag, ANY_TAG):
                    return True
        return False

    # -- candidate enumeration ----------------------------------------------
    def first_compatible_in_channel(self, key, tag) -> Optional[_Message]:
        chan = self.channels.get(key)
        if not chan:
            return None
        _purge_head(chan)
        for msg in chan:
            if msg.matched:
                continue
            if tag == ANY_TAG or tag == msg.tag:
                return msg
        return None

    def candidates_for(self, pr: _PendingRecv) -> List[_Message]:
        """First tag-compatible unmatched message of each eligible channel."""
        out = []
        if pr.src == ANY_SOURCE:
            srcs = self.srcs_by_dst_comm.get((pr.rank, pr.comm_id))
            if not srcs:
                return out
            for src in sorted(srcs):
                msg = self.first_compatible_in_channel(
                    (src, pr.rank, pr.comm_id), pr.tag)
                if msg is not None:
                    out.append(msg)
        else:
            msg = self.first_compatible_in_channel(
                (pr.src, pr.rank, pr.comm_id), pr.tag)
            if msg is not None:
                out.append(msg)
        return out

    def drain_buckets(self, dst: int):
        """Pending receives at ``dst`` that could currently match or
        freeze, merged in post (seq) order.

        Only directed receives whose channel holds a live message and
        wildcard receives on communicators with live messages are
        considered — everything else provably cannot match during this
        drain (no new messages appear mid-drain), so the full post-order
        queue is never scanned.

        Returns ``(iterator, single_wild_comm)`` where the second item
        is the communicator id when the iteration is exactly one
        wildcard bucket (every candidate shares that comm, letting the
        batch drain stop at the first freeze), else None.  Seqs are
        unique, so the merge order is independent of bucket order.
        """
        buckets = []
        wild_only_comm = None
        if self.directed_live[dst]:
            for key in self.channels_by_dst[dst]:
                src, _, comm_id = key
                directed = self.recv_index.get((dst, src, comm_id))
                if directed:
                    _purge_head(directed)
                    if directed:
                        buckets.append(directed)
        if self.wild_live[dst]:
            for comm_id in self.comms_by_dst[dst]:
                wild = self.wild_index.get((dst, comm_id))
                if wild:
                    _purge_head(wild)
                    if wild:
                        buckets.append(wild)
                        wild_only_comm = comm_id
        if len(buckets) == 1:
            single = wild_only_comm if (
                wild_only_comm is not None
                and buckets[0] is self.wild_index.get(
                    (dst, wild_only_comm))) else None
            return iter(buckets[0]), single
        if not buckets:
            return iter(()), None
        # buckets are short in practice (one per live neighbor channel),
        # so flatten-and-sort beats heapq.merge's generator machinery;
        # seqs are unique, making the order identical
        prs: List[_PendingRecv] = []
        for b in buckets:
            prs.extend(b)
        prs.sort(key=_seq_of)
        return iter(prs), None


def drain_batch(self, dst: int, relaxed: bool) -> bool:
    """Batch-mode drain: match pending receives at ``dst``.

    Bound as ``Engine._drain`` when the engine runs in batch mode (see
    ``Engine.run``); ``self`` is the engine.  Semantics are identical
    to the reference scan in :meth:`Engine._drain` — receives scanned in
    post order, directed receives match their channel's first
    tag-compatible message, wildcard receives match their earliest
    candidate only when horizon-safe, an unsafe wildcard freezes its
    communicator — with two pure accelerations:

    * ANY_SOURCE/ANY_TAG candidates come from the per-``(dst, comm)``
      candidate heap when every live channel head is eager, instead of
      scanning every channel (`MatchIndex.best_candidate` documents the
      equivalence); tag-selective wildcards and rendezvous heads fall
      back to the reference scan;
    * when the drain walks a single wildcard bucket, the first freeze
      ends it (every remaining receive shares the frozen communicator).
    """
    m = self._match
    if not m.channels_by_dst[dst] or not m.pending_live[dst]:
        # nothing to match: no live messages or no live receives — the
        # reference drain would walk empty buckets and commit nothing
        return False
    if not relaxed:
        memo = m.defer_memo.get(dst)
        if memo is not None:
            if memo[1] == m.defer_version[dst]:
                if memo[0] > self._horizon(dst):
                    # still futile: same sole candidate, still past the
                    # horizon — re-defer without walking anything
                    self._deferred_dsts.add(dst)
                    return False
                del m.defer_memo[dst]
            else:
                del m.defer_memo[dst]
    any_progress = False
    frozen_comms: set = set()
    # the horizon is constant for the whole drain (no rank clock moves
    # while it runs), so one lazy computation serves every candidate
    hzn = None
    rdv_heads = m.rdv_heads
    srcs_by_dc = m.srcs_by_dst_comm
    tag_counts = m.head_tag_count
    best_candidate = m.best_candidate
    retire_message = m.retire_message
    retire_recv = m.retire_recv
    model = self.model
    unexpected_copy = model.unexpected_copy
    recv_overhead = model.recv_overhead
    rx_busy = self._rx_busy
    dirty_add = self._dirty.add
    unexpected = m.unexpected_bytes
    horizon = self._horizon
    it, single_wild_comm = m.drain_buckets(dst)
    for pr in it:
        if pr.matched or pr.comm_id in frozen_comms:
            continue
        if pr.src == ANY_SOURCE:
            best = None
            heap_best = False
            dc = (dst, pr.comm_id)
            if not rdv_heads.get(dc):
                if pr.tag == ANY_TAG:
                    best = best_candidate(dst, pr.comm_id)
                else:
                    # tag-selective wildcard: the heap is the reference
                    # answer when every live head carries this tag (each
                    # head is then its channel's first compatible)
                    srcs = srcs_by_dc.get(dc)
                    tc = tag_counts.get(dc)
                    if srcs and tc is not None and \
                            tc.get(pr.tag, 0) == len(srcs):
                        best = best_candidate(dst, pr.comm_id)
                if best is not None:
                    arr = best.est
                    heap_best = True
            if best is None:
                cands = m.candidates_for(pr)
                if not cands:
                    # nothing available yet; this wildcard blocks any
                    # later recv on its communicator from stealing what
                    # it might match
                    if pr.comm_id == single_wild_comm:
                        break
                    frozen_comms.add(pr.comm_id)
                    continue
                best = min(cands, key=lambda msg: (
                    arrival_est(msg, pr.post_time), msg.src, msg.seq))
                arr = arrival_est(best, pr.post_time)
            if not relaxed:
                if hzn is None:
                    hzn = horizon(dst)
                if arr > hzn:
                    self._deferred_dsts.add(dst)
                    if pr.comm_id == single_wild_comm:
                        if heap_best and not m.directed_live[dst]:
                            # sole wildcard bucket, heap-answered, no
                            # directed receives that a mid-channel
                            # message could unblock: until
                            # defer_version moves, every re-drain
                            # reduces to `arr > horizon`
                            m.defer_memo[dst] = (arr,
                                                 m.defer_version[dst],
                                                 pr.tag)
                        break
                    frozen_comms.add(pr.comm_id)
                    continue
            msg = best
        else:
            msg = m.first_compatible_in_channel(
                (pr.src, dst, pr.comm_id), pr.tag)
            if msg is None:
                continue
            arr = arrival_est(msg, pr.post_time)
        # inline commit — identical arithmetic and side-effect order to
        # the reference Engine._commit_match
        self.matches_committed += 1
        post = pr.post_time
        completion = post if post >= arr else arr
        busy = rx_busy[dst]
        if busy > completion:
            completion = busy
        if arr < post and msg.protocol == "eager":
            completion += unexpected_copy(msg.nbytes)
        completion += recv_overhead(msg.nbytes)
        rx_busy[dst] = completion
        rreq = pr.rreq
        rreq.completion = completion
        rreq.status = Status(msg.src, msg.tag, msg.nbytes)
        rreq.message = msg
        if rreq.waiter is not None:
            dirty_add(rreq.waiter)
        sreq = msg.sreq
        if sreq.completion is None:
            sreq.completion = completion
            sreq.status = Status(msg.src, msg.tag, msg.nbytes)
            if sreq.waiter is not None:
                dirty_add(sreq.waiter)
        if msg.charged:
            unexpected[dst] -= msg.nbytes
        retire_message(msg)
        retire_recv(pr)
        any_progress = True
    return any_progress
