"""Requests and statuses for nonblocking simulated communication."""

from __future__ import annotations

from typing import Optional


class Status:
    """Completion record of a receive (or send).

    ``source`` and ``tag`` report the *matched* values, which is how an
    application observes the resolution of an MPI_ANY_SOURCE wildcard.
    """

    __slots__ = ("source", "tag", "nbytes")

    def __init__(self, source: int, tag: int, nbytes: int):
        self.source = source
        self.tag = tag
        self.nbytes = nbytes

    def __repr__(self) -> str:
        return f"Status(source={self.source}, tag={self.tag}, nbytes={self.nbytes})"


class Request:
    """Handle for an in-flight nonblocking operation.

    ``completion`` is the virtual time at which the operation completes, or
    ``None`` while that time is not yet known (e.g. an unmatched receive).
    The engine owns all mutation; applications only pass requests to
    wait/test operations.
    """

    __slots__ = ("kind", "rank", "completion", "status", "message",
                 "waiter", "peer")

    def __init__(self, kind: str, rank: int):
        if kind not in ("send", "recv"):
            raise ValueError(f"bad request kind: {kind}")
        self.kind = kind
        self.rank = rank
        self.completion: Optional[float] = None
        self.status: Optional[Status] = None
        self.message = None  # the Message this request produced/consumed
        self.waiter: Optional[int] = None  # rank blocked on this request
        #: world rank of the other side (dst for sends, posted src for
        #: receives, ANY_SOURCE for wildcards); wait-for edge material
        self.peer: Optional[int] = None

    @property
    def complete(self) -> bool:
        return self.completion is not None

    def __repr__(self) -> str:
        state = f"t={self.completion:.6g}" if self.complete else "pending"
        return f"Request({self.kind}, rank={self.rank}, {state})"
