"""Scheduling layer of the engine core: clocks, readiness, wakeup.

This module owns the *when does who run next* half of the simulator,
split out of the monolithic engine (see ``docs/ARCHITECTURE.md``):

* a lazy-deletion **ready heap** of ``(clock, rank)`` entries — the
  runnable rank with the smallest virtual clock always runs next;
* a lazy-deletion **clock heap** over all non-DONE ranks powering the
  conservative wildcard safety **horizon** (minimum live clock plus the
  fabric's minimum latency);
* the **dirty set** of blocked ranks whose waited-on work completed
  since the last scheduler pass (request and collective completions
  land here instead of triggering a sweep over every rank);
* the **deferred destination set**: receivers whose wildcard match was
  horizon-unsafe and must be re-drained at the top of the next pass.

The scheduler knows nothing about messages or matching; it sees only
rank states (:class:`repro.sim.engine._RankState`) and clocks.  Both
engine modes (``scalar`` and ``batch``) share one scheduler instance —
its containers are plain heaps/sets so the batch executor can bind them
as locals in its hot loop without changing semantics.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

READY = "ready"
BLOCKED = "blocked"
DONE = "done"

_INF = float("inf")


class Scheduler:
    """Ready/clock heaps, dirty-set wakeup, and the safety horizon."""

    __slots__ = ("ranks", "ready_heap", "clock_heap", "dirty",
                 "deferred_dsts", "min_latency")

    def __init__(self, min_latency: float):
        #: bound to the engine's rank-state list at run start
        self.ranks: List = []
        #: lazy-deletion heap of (clock, rank) for READY ranks
        self.ready_heap: List[Tuple[float, int]] = []
        #: lazy-deletion heap of (clock, rank) over non-DONE ranks, one
        #: live entry per rank, powering the incremental horizon
        self.clock_heap: List[Tuple[float, int]] = []
        #: blocked ranks whose waited-on work completed since last sweep
        self.dirty: set = set()
        #: receivers with a horizon-deferred wildcard to re-drain
        self.deferred_dsts: set = set()
        self.min_latency = min_latency

    def seed(self, ranks: List) -> None:
        """Bind the rank-state list and enqueue every rank at clock 0."""
        self.ranks = ranks
        push = heapq.heappush
        for rs in ranks:
            push(self.ready_heap, (0.0, rs.rank))
            push(self.clock_heap, (0.0, rs.rank))

    def pop_ready(self) -> Optional[object]:
        """Smallest-(clock, rank) READY rank via the lazy-deletion heap.

        An entry is pushed whenever a rank becomes READY; it is stale if
        the rank has since been stepped (state changed) or was re-queued
        at a later clock.
        """
        heap = self.ready_heap
        ranks = self.ranks
        while heap:
            clock, rank = heapq.heappop(heap)
            rs = ranks[rank]
            if rs.state == READY and rs.clock == clock:
                return rs
        return None

    def pop_ready_policy(self, policy) -> Optional[object]:
        """Policy-ordered variant of :meth:`pop_ready`.

        Both executors call this instead of :meth:`pop_ready` when the
        engine runs under a non-canonical
        :class:`~repro.sim.policy.SchedulerPolicy`: all READY ranks tied
        at the smallest clock are collected (the full legal cohort —
        duplicate lazy heap entries deduplicate through the rank set),
        the policy picks one, and the rest are pushed back untouched.  A
        singleton cohort consumes no policy decision, keeping the RNG
        draw sequence identical across executors.
        """
        heap = self.ready_heap
        ranks = self.ranks
        pop = heapq.heappop
        first = None
        while heap:
            clock, rank = pop(heap)
            rs = ranks[rank]
            if rs.state == READY and rs.clock == clock:
                first = rs
                break
        if first is None:
            return None
        clock = first.clock
        ties = {first.rank}
        while heap and heap[0][0] == clock:
            _, rank = pop(heap)
            rs = ranks[rank]
            if rs.state == READY and rs.clock == clock:
                ties.add(rank)
        if len(ties) == 1:
            return first
        chosen = policy.pick_rank(sorted(ties))
        push = heapq.heappush
        for rank in ties:
            if rank != chosen:
                push(heap, (clock, rank))
        return ranks[chosen]

    def make_ready(self, rs) -> None:
        rs.state = READY
        rs.blocked_kind = None
        rs.blocked_data = None
        heapq.heappush(self.ready_heap, (rs.clock, rs.rank))

    def min_live_clock_excluding(self, exclude_rank: int) -> float:
        """Minimum clock over non-DONE ranks other than ``exclude_rank``.

        The clock heap holds exactly one entry per live rank; stale
        entries (the rank's clock advanced) are refreshed in place, DONE
        ranks are dropped, and an excluded top entry is set aside and
        pushed back — all O(log ranks) amortized per query.
        """
        heap = self.clock_heap
        ranks = self.ranks
        skipped = None
        result = _INF
        while heap:
            clock, rank = heap[0]
            rs = ranks[rank]
            if rs.state == DONE:
                heapq.heappop(heap)
                continue
            if clock != rs.clock:  # stale: clock advanced since push
                heapq.heapreplace(heap, (rs.clock, rank))
                continue
            if rank == exclude_rank:
                skipped = heapq.heappop(heap)
                continue
            result = clock
            break
        if skipped is not None:
            heapq.heappush(heap, skipped)
        return result

    def horizon(self, exclude_rank: int) -> float:
        """Earliest virtual time at which any rank other than
        ``exclude_rank`` could inject a new message."""
        return self.min_live_clock_excluding(exclude_rank) \
            + self.min_latency
