"""Discrete-event simulation kernel: operation vocabulary, network models,
and the deterministic min-clock engine."""

from repro.sim.engine import Engine
from repro.sim.network import (CongestionModel, Fabric, FlatFabric,
                               LogGPModel, NetworkModel, PLATFORMS,
                               ProtocolModel, SimpleModel, arc_model,
                               make_model, preset_params,
                               validate_platform_params)
from repro.sim.ops import (ANY_SOURCE, ANY_TAG, Collective, Compute, Op,
                           PostRecv, PostSend, Test, WaitAll, WaitAny)
from repro.sim.queueing import (CoDelDiscipline, FifoDiscipline,
                                QUEUE_DISCIPLINES, QueueDiscipline,
                                resolve_queue_discipline)
from repro.sim.requests import Request, Status

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "arc_model",
    "CoDelDiscipline",
    "Collective",
    "Compute",
    "CongestionModel",
    "Engine",
    "FifoDiscipline",
    "QUEUE_DISCIPLINES",
    "QueueDiscipline",
    "resolve_queue_discipline",
    "Fabric",
    "FlatFabric",
    "LogGPModel",
    "NetworkModel",
    "Op",
    "PLATFORMS",
    "PostRecv",
    "PostSend",
    "ProtocolModel",
    "Request",
    "SimpleModel",
    "Status",
    "Test",
    "WaitAll",
    "WaitAny",
    "make_model",
    "preset_params",
    "validate_platform_params",
]
