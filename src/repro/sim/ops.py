"""Operation vocabulary of the simulator kernel.

Rank programs are Python generator functions.  They communicate with the
engine by yielding instances of the classes below; the engine resumes the
generator with the operation's result:

==================  =============================================
op yielded          generator receives back
==================  =============================================
:class:`Compute`    ``None`` (local clock advanced)
:class:`PostSend`   a send :class:`~repro.sim.requests.Request`
:class:`PostRecv`   a recv :class:`~repro.sim.requests.Request`
:class:`WaitAll`    list of :class:`~repro.sim.requests.Status`
:class:`WaitAny`    ``(index, Status)``
:class:`Test`       ``(bool, Status or None)``
:class:`Collective` ``None`` (clock advanced to collective end)
==================  =============================================

These are deliberately lower-level than MPI: the :mod:`repro.mpi` layer
builds blocking sends/receives and the full collective zoo on top.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.sim.requests import Request

#: Wildcard source / tag values, mirroring MPI_ANY_SOURCE / MPI_ANY_TAG.
ANY_SOURCE = -1
ANY_TAG = -1


class Op:
    """Marker base class for all simulator operations."""

    __slots__ = ()


class Compute(Op):
    """Advance the issuing rank's virtual clock by ``duration`` seconds —
    the simulated equivalent of a computation phase (or a generated
    benchmark's spin loop)."""

    __slots__ = ("duration",)

    def __init__(self, duration: float):
        if duration < 0:
            raise ValueError(f"negative compute duration: {duration}")
        self.duration = duration if duration.__class__ is float \
            else float(duration)

    def __repr__(self) -> str:
        return f"Compute({self.duration:.6g})"


class PostSend(Op):
    """Post a nonblocking send of ``nbytes`` to world rank ``dst``."""

    __slots__ = ("dst", "nbytes", "tag", "comm_id")

    def __init__(self, dst: int, nbytes: int, tag: int = 0, comm_id: int = 0):
        if dst < 0:
            raise ValueError(f"bad destination: {dst}")
        if nbytes < 0:
            raise ValueError(f"negative message size: {nbytes}")
        self.dst = dst if dst.__class__ is int else int(dst)
        self.nbytes = nbytes if nbytes.__class__ is int else int(nbytes)
        self.tag = tag if tag.__class__ is int else int(tag)
        self.comm_id = comm_id if comm_id.__class__ is int else int(comm_id)

    def __repr__(self) -> str:
        return f"PostSend(dst={self.dst}, nbytes={self.nbytes}, tag={self.tag})"


class PostRecv(Op):
    """Post a nonblocking receive; ``src`` may be :data:`ANY_SOURCE` and
    ``tag`` may be :data:`ANY_TAG`."""

    __slots__ = ("src", "tag", "comm_id", "nbytes")

    def __init__(self, src: int = ANY_SOURCE, tag: int = ANY_TAG,
                 comm_id: int = 0, nbytes: int = 0):
        if src < ANY_SOURCE:
            raise ValueError(f"bad source: {src}")
        self.src = src if src.__class__ is int else int(src)
        self.tag = tag if tag.__class__ is int else int(tag)
        self.comm_id = comm_id if comm_id.__class__ is int else int(comm_id)
        # nbytes is advisory; the matched message sets the actual size
        self.nbytes = nbytes if nbytes.__class__ is int else int(nbytes)

    def __repr__(self) -> str:
        return f"PostRecv(src={self.src}, tag={self.tag})"


class WaitAll(Op):
    """Block until every request in ``requests`` completes."""

    __slots__ = ("requests",)

    def __init__(self, requests: Sequence[Request]):
        self.requests = tuple(requests)

    def __repr__(self) -> str:
        return f"WaitAll({len(self.requests)} requests)"


class WaitAny(Op):
    """Block until at least one request completes; resumes with the index
    and status of the earliest-completing one."""

    __slots__ = ("requests",)

    def __init__(self, requests: Sequence[Request]):
        if not requests:
            raise ValueError("WaitAny needs at least one request")
        self.requests = tuple(requests)

    def __repr__(self) -> str:
        return f"WaitAny({len(self.requests)} requests)"


class Test(Op):
    """Non-blocking completion check of a single request."""

    __test__ = False  # not a pytest test class
    __slots__ = ("request",)

    def __init__(self, request: Request):
        self.request = request


class Collective(Op):
    """A collective operation over an explicit world-rank group.

    ``key`` selects the cost formula in the network model (``barrier``,
    ``bcast``, ``reduce``, ``allreduce``, ``gather``, ``scatter``,
    ``allgather``, ``alltoall``, ``reduce_scatter``, ``finalize``).
    ``nbytes`` is the per-rank payload the cost formula should use.
    The engine blocks each participant until all of ``group`` arrive, then
    resumes everyone at ``max(arrival clocks) + cost``.
    """

    __slots__ = ("group", "key", "nbytes", "comm_id")

    # programs yield the same group tuple every iteration (hot path for
    # iterative collectives); memoize its sorted form by object identity.
    # The memo keeps a strong reference to the key tuple, so the identity
    # test can never hit a recycled id.  Only exact tuples are cached —
    # a list could be mutated between yields, so anything else is
    # normalized per call.
    _group_memo: Tuple[Tuple[int, ...], Tuple[int, ...]] = ((), ())

    def __init__(self, group: Tuple[int, ...], key: str, nbytes: int = 0,
                 comm_id: int = 0):
        if not group:
            raise ValueError("collective over empty group")
        if type(group) is tuple:
            memo_key, memo_sorted = Collective._group_memo
            if memo_key is group:
                self.group = memo_sorted
            else:
                srt = tuple(sorted(group))
                Collective._group_memo = (group, srt)
                self.group = srt
        else:
            self.group = tuple(sorted(group))
        self.key = key
        self.nbytes = nbytes if nbytes.__class__ is int else int(nbytes)
        self.comm_id = comm_id if comm_id.__class__ is int else int(comm_id)

    def __repr__(self) -> str:
        return (f"Collective({self.key}, |group|={len(self.group)}, "
                f"nbytes={self.nbytes})")
