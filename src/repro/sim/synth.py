"""Synthetic rank-program workloads for benchmarking and property tests.

Every builder returns fresh generator programs for :class:`~repro.sim.engine.
Engine.run`.  The mixes are chosen to stress the engine's distinct hot
paths:

* :func:`stencil_programs` — directed nearest-neighbour halo exchange
  (channel FIFO matching, waitall resumption);
* :func:`wildcard_programs` — a master draining ANY_SOURCE receives from
  many workers (wildcard safety-horizon checks, deferred matching);
* :func:`collective_programs` — repeated group collectives (arrival
  tracking, group wakeup);
* :func:`random_mix_programs` — a seeded random interleaving of all of the
  above plus WaitAny, used by the determinism regression tests.

The random mix is built from a *global* schedule precomputed with
``random.Random(seed)``, so the same seed always describes the same
programs; any difference between two runs is then attributable to the
engine, not to the workload.  Per-round tags prevent cross-round wildcard
stealing, which keeps every schedule deadlock-free by construction.
"""

from __future__ import annotations

import random
from typing import Generator, List, Tuple

from repro.sim.ops import (ANY_SOURCE, Collective, Compute, PostRecv,
                           PostSend, WaitAll, WaitAny)

__all__ = [
    "stencil_programs",
    "wildcard_programs",
    "collective_programs",
    "random_mix_programs",
]


def stencil_programs(nranks: int, iters: int = 100,
                     nbytes: int = 4096) -> List[Generator]:
    """1-D periodic halo exchange: every rank swaps with both neighbours
    each iteration, then computes.  Purely directed traffic."""

    def program(rank: int):
        left = (rank - 1) % nranks
        right = (rank + 1) % nranks
        for it in range(iters):
            s1 = yield PostSend(dst=left, nbytes=nbytes, tag=0)
            s2 = yield PostSend(dst=right, nbytes=nbytes, tag=1)
            r1 = yield PostRecv(src=right, tag=0)
            r2 = yield PostRecv(src=left, tag=1)
            yield WaitAll([s1, s2, r1, r2])
            yield Compute(1e-6)

    return [program(r) for r in range(nranks)]


def wildcard_programs(nranks: int, rounds: int = 50,
                      nbytes: int = 256) -> List[Generator]:
    """Master/worker: rank 0 posts one ANY_SOURCE receive per expected
    message; workers send staggered bursts.  Every match is a wildcard
    match and most require a safety-horizon decision."""
    if nranks < 2:
        raise ValueError("wildcard workload needs at least 2 ranks")

    def master():
        total = (nranks - 1) * rounds
        batch = nranks - 1
        done = 0
        while done < total:
            reqs = []
            for _ in range(batch):
                req = yield PostRecv(src=ANY_SOURCE, tag=0)
                reqs.append(req)
            yield WaitAll(reqs)
            done += batch
            yield Compute(5e-7)

    def worker(rank: int):
        for rnd in range(rounds):
            yield Compute(1e-6 * (1 + ((rank + rnd) % 5)))
            req = yield PostSend(dst=0, nbytes=nbytes, tag=0)
            yield WaitAll([req])

    return [master()] + [worker(r) for r in range(1, nranks)]


def collective_programs(nranks: int, iters: int = 50,
                        nbytes: int = 1024) -> List[Generator]:
    """Alternating allreduce/barrier over the full world with skewed
    compute, so arrival order varies per iteration."""
    group = tuple(range(nranks))

    def program(rank: int):
        for it in range(iters):
            yield Compute(1e-6 * (1 + (rank * 7 + it) % 4))
            key = "allreduce" if it % 2 == 0 else "barrier"
            yield Collective(group=group, key=key,
                             nbytes=nbytes if key == "allreduce" else 0)

    return [program(r) for r in range(nranks)]


# -- seeded random mix -------------------------------------------------------

def _build_schedule(nranks: int, rounds: int, seed: int) -> List[dict]:
    """Precompute a deadlock-free global round schedule.

    Each round is either a world collective or a point-to-point round
    pairing disjoint (sender, receiver) couples.  Tags equal the round
    number, so a wildcard posted in round *r* can only ever match a round
    *r* message even if ranks drift out of phase.
    """
    rng = random.Random(seed)
    schedule = []
    for rnd in range(rounds):
        if nranks >= 2 and rng.random() < 0.2:
            key = rng.choice(["barrier", "allreduce", "bcast"])
            schedule.append({"kind": "coll", "key": key,
                             "nbytes": rng.choice([0, 64, 1024])})
            continue
        ranks = list(range(nranks))
        rng.shuffle(ranks)
        npairs = rng.randint(1, max(1, nranks // 2))
        pairs = []
        for i in range(npairs):
            if 2 * i + 1 >= len(ranks):
                break
            src, dst = ranks[2 * i], ranks[2 * i + 1]
            pairs.append({
                "src": src, "dst": dst,
                "nbytes": rng.choice([0, 128, 4096, 65536]),
                "wildcard": rng.random() < 0.45,
            })
        schedule.append({
            "kind": "p2p", "pairs": pairs,
            "compute": {r: rng.random() * 2e-6 for r in range(nranks)},
            "waitany": rng.random() < 0.3,
        })
    return schedule


def random_mix_programs(nranks: int, rounds: int,
                        seed: int) -> Tuple[List[Generator], List[tuple]]:
    """Seeded random mix of directed/wildcard p2p, collectives, WaitAll
    and WaitAny.

    Returns ``(programs, log)``.  ``log`` is filled during the run with
    one entry per completed receive round — ``(rank, round, statuses)``
    tuples recording the matched source/tag/size of every receive — so a
    digest of the log pins the engine's complete observable matching
    behaviour, not just the makespan.
    """
    schedule = _build_schedule(nranks, rounds, seed)
    group = tuple(range(nranks))
    log: List[tuple] = []

    def program(rank: int):
        for rnd, spec in enumerate(schedule):
            if spec["kind"] == "coll":
                yield Collective(group=group, key=spec["key"],
                                 nbytes=spec["nbytes"])
                continue
            sends = [p for p in spec["pairs"] if p["src"] == rank]
            recvs = [p for p in spec["pairs"] if p["dst"] == rank]
            reqs = []
            for p in sends:
                req = yield PostSend(dst=p["dst"], nbytes=p["nbytes"],
                                     tag=rnd)
                reqs.append(req)
            rreqs = []
            for p in recvs:
                src = ANY_SOURCE if p["wildcard"] else p["src"]
                req = yield PostRecv(src=src, tag=rnd)
                rreqs.append(req)
            if rreqs and spec["waitany"] and len(rreqs) >= 2:
                order = []
                remaining = list(rreqs)
                while remaining:
                    idx, st = yield WaitAny(remaining)
                    order.append((st.source, st.tag, st.nbytes))
                    remaining.pop(idx)
                log.append((rank, rnd, tuple(order)))
                yield WaitAll(reqs)
            else:
                sts = yield WaitAll(reqs + rreqs)
                if rreqs:
                    log.append((rank, rnd, tuple(
                        (st.source, st.tag, st.nbytes)
                        for st in sts[len(reqs):])))
            yield Compute(spec["compute"][rank])

    return [program(r) for r in range(nranks)], log
