"""Deterministic discrete-event engine for SPMD rank programs.

Rank programs are generator coroutines yielding :mod:`repro.sim.ops`
operations.  The engine advances per-rank *virtual clocks* and matches
messages under MPI semantics:

* per-(source, destination, communicator) FIFO ("non-overtaking") order;
* tag-selective matching, with ANY_SOURCE / ANY_TAG wildcards;
* posted-receive queue scanned in post order.

Scheduling is conservative: the runnable rank with the smallest clock runs
next, and a wildcard receive is only matched once no other rank could still
produce an earlier-arriving candidate (``arrival <= horizon`` where the
horizon is the minimum over other live ranks of clock + minimum latency).
When every rank is blocked, the engine commits the earliest-arriving
deferred candidate instead (the only event that can happen next).  The
result is a bit-deterministic simulation that still exhibits honest
message races for ANY_SOURCE receives — the nondeterminism Algorithm 2 of
the paper exists to remove from *generated* benchmarks.

Timing uses the pluggable :class:`~repro.sim.network.NetworkModel`,
including eager/rendezvous protocols, unexpected-message copy costs, and
finite-buffer flow control (see the paper's Fig. 7 discussion).

The hot paths are sub-linear in the rank/queue sizes (see
``docs/PERFORMANCE.md``):

* runnable ranks sit in a lazy-deletion **ready heap** keyed by
  ``(clock, rank)`` instead of being rescanned every step;
* the wildcard safety **horizon** is answered by a lazy-deletion heap over
  live rank clocks instead of an O(ranks) sweep per check;
* pending receives are **indexed** per ``(dst, src, comm)`` plus a
  per-``(dst, comm)`` wildcard list, and :meth:`Engine._drain` walks a
  post-order merge of only the index buckets that can currently match;
* matched messages/receives are **tombstoned** and purged from queue
  heads lazily, never removed from the middle of a deque;
* blocked ranks are woken through a **dirty set** fed by request and
  collective completions, instead of sweeping every rank each pass.

All of this preserves the engine's observable behaviour bit-for-bit:
commit order, tie-breaking and timing are unchanged (pinned by the golden
tests in ``tests/sim/test_engine_determinism.py``).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from repro import obs
from repro.errors import MPIUsageError, SimDeadlockError, SimulationError
from repro.sim.diagnostics import (BlockedOp, DeadlockDiagnostic,
                                   find_cycle)
from repro.sim.network import NetworkModel
from repro.sim.ops import (ANY_SOURCE, ANY_TAG, Collective, Compute, Op,
                           PostRecv, PostSend, Test, WaitAll, WaitAny)
from repro.sim.requests import Request, Status

READY = "ready"
BLOCKED = "blocked"
DONE = "done"

_BLOCK = object()  # sentinel returned by _apply when the rank must block

_INF = float("inf")


class _Message:
    __slots__ = ("seq", "src", "dst", "tag", "comm_id", "nbytes", "post_time",
                 "inject_time", "protocol", "throttled", "charged", "sreq",
                 "arrival", "matched", "fault_delay")

    def __init__(self, seq, src, dst, tag, comm_id, nbytes, post_time,
                 inject_time, protocol, throttled, charged, sreq,
                 arrival=None, fault_delay=0.0):
        self.seq = seq                # per-engine, allocated in post order
        self.src = src
        self.dst = dst
        self.tag = tag
        self.comm_id = comm_id
        self.nbytes = nbytes
        self.post_time = post_time
        self.inject_time = inject_time
        self.protocol = protocol      # "eager" or "rdv"
        self.throttled = throttled
        self.charged = charged        # counted against dst's unexpected buffer
        self.sreq = sreq
        self.arrival = arrival        # fixed arrival (wire-queued eager)
        self.matched = False          # tombstone: matched, awaiting purge
        self.fault_delay = fault_delay  # injected retransmit/reorder delay


class _PendingRecv:
    __slots__ = ("seq", "rank", "src", "tag", "comm_id", "post_time", "rreq",
                 "matched")

    def __init__(self, seq, rank, src, tag, comm_id, post_time, rreq):
        self.seq = seq                # per-engine, allocated in post order
        self.rank = rank
        self.src = src
        self.tag = tag
        self.comm_id = comm_id
        self.post_time = post_time
        self.rreq = rreq
        self.matched = False          # tombstone: matched, awaiting purge


class _RankState:
    __slots__ = ("rank", "gen", "clock", "state", "blocked_kind",
                 "blocked_data", "pending_value", "coll_seq")

    def __init__(self, rank: int, gen: Generator):
        self.rank = rank
        self.gen = gen
        self.clock = 0.0
        self.state = READY
        self.blocked_kind: Optional[str] = None   # "waitall"|"waitany"|"collective"
        self.blocked_data = None
        self.pending_value = None
        self.coll_seq: Dict[int, int] = {}        # comm_id -> collective counter


class _CollInstance:
    __slots__ = ("key", "group", "nbytes", "arrivals", "completion")

    def __init__(self, key, group, nbytes):
        self.key = key
        self.group = group
        self.nbytes = nbytes
        self.arrivals: Dict[int, float] = {}
        self.completion: Optional[float] = None


def _purge_head(dq: deque) -> None:
    """Drop matched entries from the front of a queue (tombstone purge)."""
    while dq and dq[0].matched:
        dq.popleft()


class Engine:
    """Run a set of rank generator programs to completion in virtual time."""

    def __init__(self, nranks: int, model: NetworkModel,
                 max_steps: Optional[int] = None, faults=None):
        if nranks <= 0:
            raise ValueError("nranks must be positive")
        self.nranks = nranks
        self.model = model
        self.max_steps = max_steps
        #: the FaultInjector driving this run, if any; a null-plan
        #: injector deactivates itself so the no-fault path is untouched
        self.faults = faults
        self._faults = faults if faults is not None and faults.active \
            else None
        self._crash_at: Optional[List[float]] = None
        self.crashed_ranks: List[int] = []
        self.starved_ranks: List[int] = []
        self.diagnostic: Optional[DeadlockDiagnostic] = None
        self._ranks: List[_RankState] = []
        # (src, dst, comm_id) -> deque of _Message in send order (matched
        # messages are tombstoned in place and purged from the head)
        self._channels: Dict[Tuple[int, int, int], deque] = {}
        # live (unmatched) message count per channel key
        self._chan_live: Dict[Tuple[int, int, int], int] = {}
        # dst -> set of channel keys with unmatched messages
        self._channels_by_dst: Dict[int, set] = {}
        # (dst, comm_id) -> set of srcs with unmatched messages
        self._srcs_by_dst_comm: Dict[Tuple[int, int], set] = {}
        # dst -> deque of _PendingRecv in post order (tombstoned)
        self._pending_recvs: Dict[int, deque] = {}
        # live (unmatched) pending-receive count per dst
        self._pending_live: Dict[int, int] = {}
        # (dst, src, comm_id) -> deque of directed _PendingRecv, post order
        self._recv_index: Dict[Tuple[int, int, int], deque] = {}
        # (dst, comm_id) -> deque of ANY_SOURCE _PendingRecv, post order
        self._wild_index: Dict[Tuple[int, int], deque] = {}
        self._unexpected_bytes: Dict[int, int] = {}
        # receive-side message processing is serial: a rank's "receive
        # processor" finishes one message before starting the next, so a
        # burst arriving faster than recv_overhead can drain queues up —
        # the physical mechanism behind the paper's Fig. 7 discussion
        self._rx_busy: Dict[int, float] = {}
        # the ejection link to each rank is also serial (wire queueing):
        # simultaneous arrivals stretch, paced arrivals do not
        self._wire_free: Dict[int, float] = {}
        # routed-fabric mode: eager messages fold through every named
        # link on their route instead of just the destination's ejection
        # queue — _link_free generalizes _wire_free from per-destination
        # to per-link (see repro.topology.fabric.RoutedFabric)
        self._routed = bool(getattr(model, "routed", False))
        self._link_free: Dict[str, float] = {}
        self._link_msgs: Dict[str, int] = {}
        self._link_busy: Dict[str, float] = {}
        self._link_wait: Dict[str, float] = {}
        # leaky-bucket overload accounting: (last update time, level bytes)
        self._overload: Dict[int, Tuple[float, float]] = {}
        self.overload_events = 0
        self._coll: Dict[Tuple[int, int], _CollInstance] = {}
        self._deferred_dsts: set = set()
        self._min_latency = model.min_latency()
        # lazy-deletion scheduler heap of (clock, rank) for READY ranks
        self._ready_heap: List[Tuple[float, int]] = []
        # lazy-deletion heap of (clock, rank) over non-DONE ranks, one
        # entry per live rank, powering the incremental wildcard horizon
        self._clock_heap: List[Tuple[float, int]] = []
        # blocked ranks whose waited-on work completed since last sweep
        self._dirty: set = set()
        self._done_count = 0
        # per-engine sequence counters: two engines in one process assign
        # identical seq-based tie-breaks for identical programs
        self._msg_seq = 0
        self._pr_seq = 0
        self._ran = False
        self.steps = 0
        self.messages_sent = 0
        self.bytes_sent = 0
        self.matches_committed = 0
        self.deferred_commits = 0
        self.deadlock_checks = 0

    # -- public API --------------------------------------------------------
    def run(self, programs: Sequence[Generator]) -> float:
        """Drive ``programs`` (one generator per rank) to completion.

        Returns the simulated makespan: the maximum final rank clock.
        Raises :class:`SimDeadlockError` if the programs deadlock.  An
        :class:`Engine` instance drives exactly one run; reuse raises
        :class:`SimulationError` (stale channel/collective state would
        silently corrupt a second simulation).
        """
        if self._ran:
            raise SimulationError(
                "Engine.run() called twice on the same instance; channel "
                "and collective state is per-run — create a new Engine")
        self._ran = True
        if len(programs) != self.nranks:
            raise ValueError(
                f"expected {self.nranks} programs, got {len(programs)}")
        self._ranks = [_RankState(i, g) for i, g in enumerate(programs)]
        if self._faults is not None:
            self._crash_at = [self._faults.crash_time(i)
                              for i in range(self.nranks)]
        for i in range(self.nranks):
            self._pending_recvs[i] = deque()
            self._pending_live[i] = 0
            self._unexpected_bytes[i] = 0
            self._channels_by_dst[i] = set()
            self._rx_busy[i] = 0.0
            self._wire_free[i] = 0.0
            self._overload[i] = (0.0, 0.0)
            heapq.heappush(self._ready_heap, (0.0, i))
            heapq.heappush(self._clock_heap, (0.0, i))

        with obs.span("engine.run", nranks=self.nranks):
            try:
                while True:
                    self.steps += 1
                    if self.max_steps is not None and \
                            self.steps > self.max_steps:
                        raise SimulationError(
                            f"exceeded max_steps={self.max_steps}; "
                            f"likely livelock")
                    if self._deferred_dsts:
                        for dst in sorted(self._deferred_dsts):
                            self._deferred_dsts.discard(dst)
                            self._drain(dst, relaxed=False)
                    if self._dirty:
                        self._resume_dirty()
                    rs = self._pop_ready()
                    if rs is not None:
                        self._step(rs)
                        continue
                    if self._done_count == self.nranks:
                        break
                    # everyone blocked: try relaxed matching / resumption
                    self.deadlock_checks += 1
                    if self._relaxed_progress():
                        continue
                    if self.crashed_ranks:
                        # graceful degradation: ranks waiting on a crashed
                        # peer can never progress — record the diagnostic
                        # and end the run so its trace prefix survives
                        self._starve_blocked()
                        break
                    self._raise_deadlock()
            finally:
                self._flush_counters()
        return self.total_time

    def _flush_counters(self) -> None:
        """Publish this run's accumulated probe totals (cheap: the hot
        loop only bumps plain ints; the bus sees aggregates once)."""
        obs.count("engine.steps", self.steps)
        obs.count("engine.matches", self.matches_committed)
        obs.count("engine.deferred_commits", self.deferred_commits)
        obs.count("engine.deadlock_checks", self.deadlock_checks)
        obs.count("engine.messages_sent", self.messages_sent)
        obs.count("engine.bytes_sent", self.bytes_sent)
        obs.count("engine.overload_events", self.overload_events)
        if self._routed and self._link_msgs:
            span = self.total_time
            for name in sorted(self._link_msgs):
                obs.count(f"engine.link.{name}.msgs",
                          self._link_msgs[name])
                obs.count(f"engine.link.{name}.busy_s",
                          self._link_busy.get(name, 0.0))
                obs.count(f"engine.link.{name}.wait_s",
                          self._link_wait.get(name, 0.0))
            obs.count("engine.links_used", len(self._link_msgs))
            obs.count("engine.link_busy_s_total",
                      sum(self._link_busy.values()))
            obs.count("engine.link_wait_s_total",
                      sum(self._link_wait.values()))
            if span > 0.0:
                obs.count("engine.link_util_max",
                          max(self._link_busy.values()) / span)
        if self._faults is not None:
            for name, value in sorted(self._faults.snapshot().items()):
                obs.count(f"engine.fault.{name}", value)
            obs.count("engine.fault.crashed_ranks",
                      len(self.crashed_ranks))
            obs.count("engine.fault.starved_ranks",
                      len(self.starved_ranks))

    @property
    def total_time(self) -> float:
        return max((rs.clock for rs in self._ranks), default=0.0)

    @property
    def link_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-link contention accounting for routed fabrics.

        ``{link_name: {"msgs": count, "busy_s": occupied seconds,
        "wait_s": seconds messages queued for the link}}`` — empty for
        flat fabrics (no named links).
        """
        return {name: {"msgs": self._link_msgs[name],
                       "busy_s": self._link_busy.get(name, 0.0),
                       "wait_s": self._link_wait.get(name, 0.0)}
                for name in sorted(self._link_msgs)}

    def now(self, rank: int) -> float:
        return self._ranks[rank].clock

    # -- scheduler ----------------------------------------------------------
    def _pop_ready(self) -> Optional[_RankState]:
        """Smallest-(clock, rank) READY rank via the lazy-deletion heap.

        An entry is pushed whenever a rank becomes READY; it is stale if
        the rank has since been stepped (state changed) or was re-queued
        at a later clock.
        """
        heap = self._ready_heap
        while heap:
            clock, rank = heapq.heappop(heap)
            rs = self._ranks[rank]
            if rs.state == READY and rs.clock == clock:
                return rs
        return None

    def _make_ready(self, rs: _RankState) -> None:
        rs.state = READY
        rs.blocked_kind = None
        rs.blocked_data = None
        heapq.heappush(self._ready_heap, (rs.clock, rs.rank))

    def _min_live_clock_excluding(self, exclude_rank: int) -> float:
        """Minimum clock over non-DONE ranks other than ``exclude_rank``.

        The clock heap holds exactly one entry per live rank; stale
        entries (the rank's clock advanced) are refreshed in place, DONE
        ranks are dropped, and an excluded top entry is set aside and
        pushed back — all O(log ranks) amortized per query.
        """
        heap = self._clock_heap
        skipped = None
        result = _INF
        while heap:
            clock, rank = heap[0]
            rs = self._ranks[rank]
            if rs.state == DONE:
                heapq.heappop(heap)
                continue
            if clock != rs.clock:  # stale: clock advanced since push
                heapq.heapreplace(heap, (rs.clock, rank))
                continue
            if rank == exclude_rank:
                skipped = heapq.heappop(heap)
                continue
            result = clock
            break
        if skipped is not None:
            heapq.heappush(heap, skipped)
        return result

    # -- generator stepping -------------------------------------------------
    def _step(self, rs: _RankState) -> None:
        value = rs.pending_value
        rs.pending_value = None
        while True:
            if self._crash_at is not None and \
                    rs.clock >= self._crash_at[rs.rank]:
                self._crash_rank(rs)
                return
            self.steps += 1
            if self.max_steps is not None and self.steps > self.max_steps:
                raise SimulationError(
                    f"exceeded max_steps={self.max_steps}; likely livelock")
            try:
                op = rs.gen.send(value)
            except StopIteration:
                rs.state = DONE
                self._done_count += 1
                self._on_rank_done(rs)
                return
            value = self._apply(rs, op)
            if value is _BLOCK:
                rs.state = BLOCKED
                return

    def _apply(self, rs: _RankState, op: Op):
        if isinstance(op, Compute):
            if self._faults is not None:
                rs.clock += op.duration * \
                    self._faults.compute_factor(rs.rank)
            else:
                rs.clock += op.duration
            return None
        if isinstance(op, PostSend):
            return self._apply_send(rs, op)
        if isinstance(op, PostRecv):
            return self._apply_recv(rs, op)
        if isinstance(op, WaitAll):
            done = self._try_waitall(rs, op.requests, relaxed=False)
            if done is not None:
                return done
            rs.blocked_kind = "waitall"
            rs.blocked_data = op.requests
            self._register_waiter(rs, op.requests)
            return _BLOCK
        if isinstance(op, WaitAny):
            done = self._try_waitany(rs, op.requests, relaxed=False)
            if done is not None:
                return done
            rs.blocked_kind = "waitany"
            rs.blocked_data = op.requests
            self._register_waiter(rs, op.requests)
            return _BLOCK
        if isinstance(op, Test):
            # A test succeeds only if the operation has completed by the
            # rank's current virtual time; testing never advances the clock
            # past the completion (matching MPI_Test semantics).
            req = op.request
            if req.complete and req.completion <= rs.clock:
                return (True, req.status)
            return (False, None)
        if isinstance(op, Collective):
            return self._apply_collective(rs, op)
        raise MPIUsageError(f"rank {rs.rank} yielded non-op {op!r}")

    def _register_waiter(self, rs: _RankState, requests) -> None:
        """Route future completions of ``requests`` to the blocking rank.

        A rank blocking on WaitAny with an already-complete request goes
        straight onto the dirty set: its resumability depends on the
        safety horizon (which moves as other ranks run), not on any new
        completion, so it must be re-examined every scheduler pass.
        """
        any_complete = False
        for req in requests:
            if req.complete:
                any_complete = True
            else:
                req.waiter = rs.rank
        if any_complete and rs.blocked_kind == "waitany":
            self._dirty.add(rs.rank)

    # -- sends ----------------------------------------------------------------
    def _apply_send(self, rs: _RankState, op: PostSend) -> Request:
        if op.dst >= self.nranks:
            raise MPIUsageError(
                f"rank {rs.rank} sends to nonexistent rank {op.dst}")
        model = self.model
        req = Request("send", rs.rank)
        req.peer = op.dst
        post_time = rs.clock
        rs.clock += model.send_overhead(op.nbytes)
        inject = rs.clock
        eager = op.nbytes <= model.eager_threshold
        fate = None
        if self._faults is not None:
            fate = self._faults.send_fate(self._msg_seq)
        lost = fate is not None and fate.lost
        charged = False
        throttled = False
        arrival = None
        if eager and model.overload_drain_rate is not None:
            # leaky bucket: the destination's protocol stack drains at a
            # fixed rate; sustained offered load above it builds standing
            # backlog, and senders to an overloaded stack back off
            last_t, level = self._overload[op.dst]
            level = max(0.0, level - (inject - last_t)
                        * model.overload_drain_rate)
            if level > model.overload_capacity:
                rs.clock += model.overload_penalty
                inject = rs.clock
                self.overload_events += 1
                level = max(0.0, level - model.overload_penalty
                            * model.overload_drain_rate)
            level += op.nbytes
            self._overload[op.dst] = (inject, level)
        route_links: Tuple[str, ...] = ()
        if eager and self._routed:
            route_links, inject, arrival = self._routed_arrival(
                rs, op, inject)
        elif eager and model.wire_queueing:
            # the destination's ejection link is serial: this message's
            # data starts landing when the link frees up
            reach = inject + model.transit_time(0)
            backlog = self._wire_free[op.dst] - reach
            threshold = model.backlog_stall_threshold
            if threshold is not None and backlog > threshold:
                # flow control: the sender stalls until the destination's
                # queue drains back to the window (graduated backpressure);
                # the cost lands on the sender's clock directly
                rs.clock += (backlog - threshold
                             + model.stall_penalty(op.nbytes))
                inject = rs.clock
                reach = inject + model.transit_time(0)
            start = max(reach, self._wire_free[op.dst])
            arrival = start + model.eject_time(op.nbytes)
            self._wire_free[op.dst] = arrival
        fault_delay = 0.0
        if fate is not None and not lost:
            fault_delay = fate.delay
            if self._routed and not route_links:
                # rendezvous in routed mode: the route was not folded
                # through the links, but link-targeted degradation
                # windows still need to see which links the data crosses
                route_links = model.fabric.route(rs.rank, op.dst)
            lat_f, bw_f = self._faults.window_factors(op.dst, inject,
                                                      links=route_links)
            if lat_f != 1.0 or bw_f != 1.0:
                base = model.transit_time(0)
                extra = (lat_f - 1.0) * base + (bw_f - 1.0) * \
                    (model.transit_time(op.nbytes) - base)
                fault_delay += extra
                self._faults.delay_injected += extra
            if arrival is not None and fault_delay:
                # wire-queued eager: bake the injected delay into the
                # fixed arrival and keep the ejection link busy until
                # the late (retransmitted/degraded) copy lands
                arrival += fault_delay
                if self._routed:
                    self._link_free[route_links[-1]] = arrival
                else:
                    self._wire_free[op.dst] = arrival
                fault_delay = 0.0
            if fate.duplicate:
                # the spurious copy consumes receive-side resources
                if self._routed:
                    self._link_free[route_links[-1]] = \
                        self._link_free.get(route_links[-1], 0.0) + \
                        model.eject_time(op.nbytes)
                elif model.wire_queueing:
                    self._wire_free[op.dst] += model.eject_time(op.nbytes)
                else:
                    self._rx_busy[op.dst] += model.recv_overhead(op.nbytes)
        if eager and lost:
            # every transmission attempt dropped: the buffered send still
            # completes locally, but nothing ever arrives at the receiver
            req.completion = inject
        elif eager:
            preposted = self._has_compatible_recv(op.dst, rs.rank, op.tag,
                                                  op.comm_id)
            if not preposted:
                cap = model.unexpected_capacity
                pending = self._unexpected_bytes[op.dst]
                if cap is not None and pending + op.nbytes > cap:
                    throttled = True
                charged = True
                self._unexpected_bytes[op.dst] += op.nbytes
            if not throttled:
                req.completion = inject  # local completion, buffered send
        msg = _Message(self._msg_seq, rs.rank, op.dst, op.tag, op.comm_id,
                       op.nbytes, post_time, inject,
                       "eager" if eager else "rdv", throttled, charged, req,
                       arrival=arrival, fault_delay=fault_delay)
        self._msg_seq += 1
        req.message = msg
        if lost:
            # a rendezvous send whose message is lost never completes —
            # the sender's wait will block and (absent other progress)
            # surface as a structured deadlock/starvation diagnostic
            self.messages_sent += 1
            self.bytes_sent += op.nbytes
            return req
        key = (rs.rank, op.dst, op.comm_id)
        chan = self._channels.get(key)
        if chan is None:
            chan = self._channels[key] = deque()
            self._chan_live[key] = 0
        chan.append(msg)
        self._chan_live[key] += 1
        self._channels_by_dst[op.dst].add(key)
        self._srcs_by_dst_comm.setdefault(
            (op.dst, op.comm_id), set()).add(rs.rank)
        self.messages_sent += 1
        self.bytes_sent += op.nbytes
        self._drain(op.dst, relaxed=False)
        return req

    def _routed_arrival(self, rs: _RankState, op: PostSend,
                        inject: float) -> Tuple[Tuple[str, ...], float,
                                                float]:
        """Fold an eager message through its route's per-link FIFOs.

        Store-and-forward over named links: the message reaches link *i*
        one hop latency after clearing link *i-1*, waits for the link to
        free (FIFO), then occupies it for the serialization time.  The
        final link is the destination node's ejection link, so endpoint
        delivery serializes exactly like the flat fabric's per-
        destination wire queue.  Flow control (``backlog_stall_threshold``)
        is checked against the ejection link's standing backlog, same as
        the flat path.  Returns ``(route_links, inject, arrival)`` —
        ``inject`` may have advanced if the sender was stalled.
        """
        model = self.model
        fabric = model.fabric
        links = fabric.route(rs.rank, op.dst)
        hop = fabric.hop_latency
        ser = fabric.serialize_time(op.nbytes)
        free = self._link_free
        threshold = model.backlog_stall_threshold
        if threshold is not None:
            reach = inject + len(links) * hop
            backlog = free.get(links[-1], 0.0) - reach
            if backlog > threshold:
                # flow control: stall the sender until the destination's
                # ejection queue drains back to the window
                rs.clock += (backlog - threshold
                             + model.stall_penalty(op.nbytes))
                inject = rs.clock
        t = inject
        msgs = self._link_msgs
        busy = self._link_busy
        for link in links:
            reach = t + hop
            avail = free.get(link, 0.0)
            if avail > reach:
                self._link_wait[link] = \
                    self._link_wait.get(link, 0.0) + (avail - reach)
                start = avail
            else:
                start = reach
            t = start + ser
            free[link] = t
            msgs[link] = msgs.get(link, 0) + 1
            busy[link] = busy.get(link, 0.0) + ser
        return links, inject, t

    def _has_compatible_recv(self, dst: int, src: int, tag: int,
                             comm_id: int) -> bool:
        directed = self._recv_index.get((dst, src, comm_id))
        if directed:
            _purge_head(directed)
            for pr in directed:
                if not pr.matched and pr.tag in (tag, ANY_TAG):
                    return True
        wild = self._wild_index.get((dst, comm_id))
        if wild:
            _purge_head(wild)
            for pr in wild:
                if not pr.matched and pr.tag in (tag, ANY_TAG):
                    return True
        return False

    # -- receives ---------------------------------------------------------------
    def _apply_recv(self, rs: _RankState, op: PostRecv) -> Request:
        if op.src != ANY_SOURCE and op.src >= self.nranks:
            raise MPIUsageError(
                f"rank {rs.rank} receives from nonexistent rank {op.src}")
        req = Request("recv", rs.rank)
        req.peer = op.src
        pr = _PendingRecv(self._pr_seq, rs.rank, op.src, op.tag, op.comm_id,
                          rs.clock, req)
        self._pr_seq += 1
        self._pending_recvs[rs.rank].append(pr)
        self._pending_live[rs.rank] += 1
        if op.src == ANY_SOURCE:
            self._wild_index.setdefault(
                (rs.rank, op.comm_id), deque()).append(pr)
        else:
            self._recv_index.setdefault(
                (rs.rank, op.src, op.comm_id), deque()).append(pr)
        self._drain(rs.rank, relaxed=False)
        return req

    # -- matching ------------------------------------------------------------
    def _arrival_est(self, msg: _Message, recv_post: float) -> float:
        model = self.model
        if msg.protocol == "eager":
            t = (msg.arrival if msg.arrival is not None
                 else msg.inject_time
                 + model.transit_time(msg.nbytes, msg.src, msg.dst))
            if msg.fault_delay:
                t += msg.fault_delay
            if msg.throttled:
                t += model.stall_penalty(msg.nbytes)
            return t
        # rendezvous: data moves once both sides are ready
        handshake = msg.inject_time + self._min_latency
        if msg.fault_delay:
            handshake += msg.fault_delay
        return max(handshake, recv_post) \
            + model.transit_time(msg.nbytes, msg.src, msg.dst)

    def _first_compatible_in_channel(self, key, tag) -> Optional[_Message]:
        chan = self._channels.get(key)
        if not chan:
            return None
        _purge_head(chan)
        for msg in chan:
            if msg.matched:
                continue
            if tag == ANY_TAG or tag == msg.tag:
                return msg
        return None

    def _candidates_for(self, pr: _PendingRecv) -> List[_Message]:
        """First tag-compatible unmatched message of each eligible channel."""
        out = []
        if pr.src == ANY_SOURCE:
            srcs = self._srcs_by_dst_comm.get((pr.rank, pr.comm_id))
            if not srcs:
                return out
            for src in sorted(srcs):
                msg = self._first_compatible_in_channel(
                    (src, pr.rank, pr.comm_id), pr.tag)
                if msg is not None:
                    out.append(msg)
        else:
            msg = self._first_compatible_in_channel(
                (pr.src, pr.rank, pr.comm_id), pr.tag)
            if msg is not None:
                out.append(msg)
        return out

    def _horizon(self, exclude_rank: int) -> float:
        """Earliest virtual time at which any rank other than
        ``exclude_rank`` could inject a new message."""
        return self._min_live_clock_excluding(exclude_rank) \
            + self._min_latency

    def _drain_candidates(self, dst: int):
        """Pending receives at ``dst`` that could currently match or
        freeze, merged in post (seq) order.

        Only directed receives whose channel holds a live message and
        wildcard receives on communicators with live messages are
        considered — everything else provably cannot match during this
        drain (no new messages appear mid-drain), so the full post-order
        queue is never scanned.
        """
        buckets = []
        comms = set()
        for key in self._channels_by_dst[dst]:
            src, _, comm_id = key
            comms.add(comm_id)
            directed = self._recv_index.get((dst, src, comm_id))
            if directed:
                _purge_head(directed)
                if directed:
                    buckets.append(directed)
        for comm_id in comms:
            wild = self._wild_index.get((dst, comm_id))
            if wild:
                _purge_head(wild)
                if wild:
                    buckets.append(wild)
        if len(buckets) == 1:
            return iter(buckets[0])
        if not buckets:
            return iter(())
        return heapq.merge(*buckets, key=lambda pr: pr.seq)

    def _drain(self, dst: int, relaxed: bool) -> bool:
        """Match pending receives at ``dst`` against channel messages.

        Receives are scanned in post order.  A directed receive matches the
        first tag-compatible message in its channel immediately (FIFO order
        makes this deterministic).  A wildcard receive matches its
        earliest-arriving candidate only when that choice is *safe* (no
        other rank could still produce an earlier arrival); an unsafe (or
        not-yet-matchable) wildcard freezes matching for later receives on
        its communicator — the (src, comm) pairs it could take a message
        from — while receives on other communicators keep matching.
        Returns True if any match was committed.

        One left-to-right pass is exhaustive: committing a match only ever
        *removes* a message and a receive, so receives already passed can
        never become matchable within the same drain, and commits happen
        in strictly increasing post order.
        """
        any_progress = False
        frozen_comms: set = set()
        for pr in self._drain_candidates(dst):
            if pr.matched or pr.comm_id in frozen_comms:
                continue
            if pr.src == ANY_SOURCE:
                cands = self._candidates_for(pr)
                if not cands:
                    # nothing available yet; this wildcard blocks any
                    # later recv on its communicator from stealing what
                    # it might match
                    frozen_comms.add(pr.comm_id)
                    continue
                best = min(cands, key=lambda m: (
                    self._arrival_est(m, pr.post_time), m.src, m.seq))
                if not relaxed:
                    arr = self._arrival_est(best, pr.post_time)
                    if arr > self._horizon(dst):
                        self._deferred_dsts.add(dst)
                        frozen_comms.add(pr.comm_id)
                        continue
                self._commit_match(pr, best)
                any_progress = True
            else:
                msg = self._first_compatible_in_channel(
                    (pr.src, dst, pr.comm_id), pr.tag)
                if msg is None:
                    continue
                self._commit_match(pr, msg)
                any_progress = True
        return any_progress

    def _commit_match(self, pr: _PendingRecv, msg: _Message) -> None:
        self.matches_committed += 1
        model = self.model
        arrival = self._arrival_est(msg, pr.post_time)
        # message processing starts when the data is here, the receive is
        # posted, and the receiver's (serial) message processor is free
        start = max(pr.post_time, arrival, self._rx_busy[pr.rank])
        completion = start
        if msg.protocol == "eager" and arrival < pr.post_time:
            completion += model.unexpected_copy(msg.nbytes)
        completion += model.recv_overhead(msg.nbytes)
        self._rx_busy[pr.rank] = completion
        pr.rreq.completion = completion
        pr.rreq.status = Status(msg.src, msg.tag, msg.nbytes)
        pr.rreq.message = msg
        if pr.rreq.waiter is not None:
            self._dirty.add(pr.rreq.waiter)
        # sender-side completion for rendezvous / throttled sends
        if msg.sreq.completion is None:
            msg.sreq.completion = completion
            msg.sreq.status = Status(msg.src, msg.tag, msg.nbytes)
            if msg.sreq.waiter is not None:
                self._dirty.add(msg.sreq.waiter)
        if msg.charged:
            self._unexpected_bytes[msg.dst] -= msg.nbytes
        # tombstone instead of deque.remove: mid-queue entries are purged
        # lazily once they reach a queue head
        msg.matched = True
        key = (msg.src, msg.dst, msg.comm_id)
        live = self._chan_live[key] - 1
        self._chan_live[key] = live
        chan = self._channels[key]
        _purge_head(chan)
        if not live:
            self._channels_by_dst[msg.dst].discard(key)
            srcs = self._srcs_by_dst_comm.get((msg.dst, msg.comm_id))
            if srcs is not None:
                srcs.discard(msg.src)
        pr.matched = True
        self._pending_live[pr.rank] -= 1
        _purge_head(self._pending_recvs[pr.rank])

    # -- waits ----------------------------------------------------------------
    def _try_waitall(self, rs: _RankState, requests, relaxed: bool):
        if not all(r.complete for r in requests):
            return None
        if requests:
            rs.clock = max(rs.clock, max(r.completion for r in requests))
        return [r.status for r in requests]

    def _try_waitany(self, rs: _RankState, requests, relaxed: bool):
        done = [(r.completion, i) for i, r in enumerate(requests) if r.complete]
        if not done:
            return None
        t, i = min(done)
        if not relaxed and not all(r.complete for r in requests):
            # an incomplete request might still finish earlier
            if t > self._horizon(rs.rank):
                return None
        rs.clock = max(rs.clock, t)
        return (i, requests[i].status)

    # -- collectives ------------------------------------------------------------
    def _apply_collective(self, rs: _RankState, op: Collective):
        if rs.rank not in op.group:
            raise MPIUsageError(
                f"rank {rs.rank} called collective on group excluding it")
        seq = rs.coll_seq.get(op.comm_id, 0)
        rs.coll_seq[op.comm_id] = seq + 1
        key = (op.comm_id, seq)
        inst = self._coll.get(key)
        if inst is None:
            inst = _CollInstance(op.key, op.group, op.nbytes)
            self._coll[key] = inst
        else:
            if inst.group != op.group or inst.key != op.key:
                raise MPIUsageError(
                    f"collective mismatch on comm {op.comm_id} seq {seq}: "
                    f"{inst.key}/{inst.group} vs {op.key}/{op.group}")
            inst.nbytes = max(inst.nbytes, op.nbytes)
        inst.arrivals[rs.rank] = rs.clock
        if len(inst.arrivals) == len(inst.group):
            start = max(inst.arrivals.values())
            inst.completion = start + self.model.collective_cost(
                inst.key, len(inst.group), inst.nbytes)
            # the caller resumes immediately; blocked participants are
            # woken through the dirty set on the next scheduler pass
            for r in inst.arrivals:
                if r != rs.rank:
                    self._dirty.add(r)
            rs.clock = inst.completion
            return None
        rs.blocked_kind = "collective"
        rs.blocked_data = inst
        return _BLOCK

    # -- resumption -------------------------------------------------------------
    def _try_resume(self, rs: _RankState, relaxed: bool) -> bool:
        """Attempt to unblock one rank; True if it became READY."""
        if rs.blocked_kind == "waitall":
            res = self._try_waitall(rs, rs.blocked_data, relaxed)
            if res is None:
                return False
            rs.pending_value = res
        elif rs.blocked_kind == "waitany":
            res = self._try_waitany(rs, rs.blocked_data, relaxed)
            if res is None:
                return False
            rs.pending_value = res
        elif rs.blocked_kind == "collective":
            inst = rs.blocked_data
            if inst.completion is None:
                return False
            rs.clock = inst.completion
            rs.pending_value = None
        else:  # pragma: no cover - defensive
            raise AssertionError(rs.blocked_kind)
        self._make_ready(rs)
        return True

    def _resume_dirty(self) -> None:
        """Wake blocked ranks flagged by completions since the last pass.

        A WaitAny rank holding a complete request stays dirty even when
        it cannot resume yet: it is waiting on the safety horizon, which
        moves whenever any other rank advances, so it must be polled.
        Everything else leaves the dirty set until a new completion
        re-flags it.
        """
        for rank in sorted(self._dirty):
            rs = self._ranks[rank]
            if rs.state != BLOCKED:
                self._dirty.discard(rank)
                continue
            if self._try_resume(rs, relaxed=False):
                self._dirty.discard(rank)
            elif not (rs.blocked_kind == "waitany"
                      and any(r.complete for r in rs.blocked_data)):
                self._dirty.discard(rank)

    def _resume_resumable(self, relaxed: bool) -> bool:
        """Full sweep over all blocked ranks (the rare all-blocked path)."""
        progress = False
        for rs in self._ranks:
            if rs.state != BLOCKED:
                continue
            if self._try_resume(rs, relaxed):
                self._dirty.discard(rs.rank)
                progress = True
        return progress

    def _relaxed_progress(self) -> bool:
        # 1. deferred wildcard matches, earliest arrival first
        for dst in sorted(self._pending_recvs):
            if self._drain(dst, relaxed=True):
                self.deferred_commits += 1
                return True
        # 2. waits resumable without the safety horizon
        if self._resume_resumable(relaxed=True):
            return True
        return False

    # -- faults ------------------------------------------------------------
    def _crash_rank(self, rs: _RankState) -> None:
        """Rank ``rs`` hits its plan crash time: it stops executing, its
        generator is closed, and anything it owes other ranks is simply
        never produced (they starve gracefully, see
        :meth:`_starve_blocked`)."""
        rs.state = DONE
        self._done_count += 1
        self.crashed_ranks.append(rs.rank)
        rs.gen.close()

    def _starve_blocked(self) -> None:
        """End a run in which the remaining blocked ranks wait on crashed
        peers.  Builds the structured diagnostic first (the blocked set
        is the interesting part), then retires every blocked rank at its
        current clock so the run terminates with a partial result."""
        self.diagnostic = self._build_diagnostic()
        for rs in self._ranks:
            if rs.state == BLOCKED:
                rs.state = DONE
                self._done_count += 1
                self.starved_ranks.append(rs.rank)
                rs.gen.close()

    # -- termination ------------------------------------------------------------
    def _on_rank_done(self, rs: _RankState) -> None:
        # A finished rank cannot post new sends; wildcard horizons improve.
        if self._pending_live[rs.rank]:
            raise MPIUsageError(
                f"rank {rs.rank} finished with "
                f"{self._pending_live[rs.rank]} unmatched receives")

    def _describe_block(self, rs: _RankState) -> str:
        if rs.blocked_kind == "collective":
            inst = rs.blocked_data
            missing = [r for r in inst.group if r not in inst.arrivals]
            return f"collective {inst.key} awaiting ranks {missing}"
        if rs.blocked_kind in ("waitall", "waitany"):
            pending = [r for r in rs.blocked_data if not r.complete]
            kinds = ", ".join(f"{r.kind}" for r in pending[:4])
            return f"{rs.blocked_kind} on {len(pending)} requests ({kinds})"
        return str(rs.blocked_kind)

    def _waits_on(self, rs: _RankState) -> Tuple[int, ...]:
        """Ranks whose progress could unblock ``rs`` (wait-for edges)."""
        waits: set = set()
        if rs.blocked_kind == "collective":
            inst = rs.blocked_data
            waits.update(r for r in inst.group if r not in inst.arrivals)
        elif rs.blocked_kind in ("waitall", "waitany"):
            for req in rs.blocked_data:
                if req.complete:
                    continue
                if req.peer == ANY_SOURCE:
                    # a wildcard could be satisfied by any live rank
                    waits.update(r.rank for r in self._ranks
                                 if r.state != DONE)
                elif req.peer is not None:
                    waits.add(req.peer)
        waits.discard(rs.rank)
        return tuple(sorted(waits))

    def _build_diagnostic(self) -> DeadlockDiagnostic:
        """Structured wait-for picture of the currently blocked ranks."""
        blocked: Dict[int, BlockedOp] = {}
        for rs in self._ranks:
            if rs.state != BLOCKED:
                continue
            blocked[rs.rank] = BlockedOp(
                rank=rs.rank, kind=rs.blocked_kind or "?",
                detail=self._describe_block(rs),
                waits_on=self._waits_on(rs))
        cycle = find_cycle({r: b.waits_on for r, b in blocked.items()})
        return DeadlockDiagnostic(blocked=blocked, cycle=cycle,
                                  crashed=tuple(self.crashed_ranks),
                                  time=self.total_time)

    def _raise_deadlock(self) -> None:
        self.diagnostic = self._build_diagnostic()
        blocked = {rs.rank: self._describe_block(rs)
                   for rs in self._ranks if rs.state == BLOCKED}
        raise SimDeadlockError(blocked, diagnostic=self.diagnostic)
