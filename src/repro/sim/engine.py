"""Deterministic discrete-event engine for SPMD rank programs.

Rank programs are generator coroutines yielding :mod:`repro.sim.ops`
operations.  The engine advances per-rank *virtual clocks* and matches
messages under MPI semantics:

* per-(source, destination, communicator) FIFO ("non-overtaking") order;
* tag-selective matching, with ANY_SOURCE / ANY_TAG wildcards;
* posted-receive queue scanned in post order.

Scheduling is conservative: the runnable rank with the smallest clock runs
next, and a wildcard receive is only matched once no other rank could still
produce an earlier-arriving candidate (``arrival <= horizon`` where the
horizon is the minimum over other live ranks of clock + minimum latency).
When every rank is blocked, the engine commits the earliest-arriving
deferred candidate instead (the only event that can happen next).  The
result is a bit-deterministic simulation that still exhibits honest
message races for ANY_SOURCE receives — the nondeterminism Algorithm 2 of
the paper exists to remove from *generated* benchmarks.

Timing uses the pluggable :class:`~repro.sim.network.NetworkModel`,
including eager/rendezvous protocols, unexpected-message copy costs, and
finite-buffer flow control (see the paper's Fig. 7 discussion).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Generator, List, Optional, Sequence, Tuple

from repro import obs
from repro.errors import MPIUsageError, SimDeadlockError, SimulationError
from repro.sim.network import NetworkModel
from repro.sim.ops import (ANY_SOURCE, ANY_TAG, Collective, Compute, Op,
                           PostRecv, PostSend, Test, WaitAll, WaitAny)
from repro.sim.requests import Request, Status

READY = "ready"
BLOCKED = "blocked"
DONE = "done"

_BLOCK = object()  # sentinel returned by _apply when the rank must block


class _Message:
    __slots__ = ("seq", "src", "dst", "tag", "comm_id", "nbytes", "post_time",
                 "inject_time", "protocol", "throttled", "charged", "sreq",
                 "arrival")

    _next_seq = 0

    def __init__(self, src, dst, tag, comm_id, nbytes, post_time, inject_time,
                 protocol, throttled, charged, sreq, arrival=None):
        self.seq = _Message._next_seq
        _Message._next_seq += 1
        self.src = src
        self.dst = dst
        self.tag = tag
        self.comm_id = comm_id
        self.nbytes = nbytes
        self.post_time = post_time
        self.inject_time = inject_time
        self.protocol = protocol      # "eager" or "rdv"
        self.throttled = throttled
        self.charged = charged        # counted against dst's unexpected buffer
        self.sreq = sreq
        self.arrival = arrival        # fixed arrival (wire-queued eager)


class _PendingRecv:
    __slots__ = ("seq", "rank", "src", "tag", "comm_id", "post_time", "rreq")

    _next_seq = 0

    def __init__(self, rank, src, tag, comm_id, post_time, rreq):
        self.seq = _PendingRecv._next_seq
        _PendingRecv._next_seq += 1
        self.rank = rank
        self.src = src
        self.tag = tag
        self.comm_id = comm_id
        self.post_time = post_time
        self.rreq = rreq


class _RankState:
    __slots__ = ("rank", "gen", "clock", "state", "blocked_kind",
                 "blocked_data", "pending_value", "coll_seq")

    def __init__(self, rank: int, gen: Generator):
        self.rank = rank
        self.gen = gen
        self.clock = 0.0
        self.state = READY
        self.blocked_kind: Optional[str] = None   # "waitall"|"waitany"|"collective"
        self.blocked_data = None
        self.pending_value = None
        self.coll_seq: Dict[int, int] = {}        # comm_id -> collective counter


class _CollInstance:
    __slots__ = ("key", "group", "nbytes", "arrivals", "completion")

    def __init__(self, key, group, nbytes):
        self.key = key
        self.group = group
        self.nbytes = nbytes
        self.arrivals: Dict[int, float] = {}
        self.completion: Optional[float] = None


class Engine:
    """Run a set of rank generator programs to completion in virtual time."""

    def __init__(self, nranks: int, model: NetworkModel,
                 max_steps: Optional[int] = None):
        if nranks <= 0:
            raise ValueError("nranks must be positive")
        self.nranks = nranks
        self.model = model
        self.max_steps = max_steps
        self._ranks: List[_RankState] = []
        # (src, dst, comm_id) -> deque of unmatched _Message in send order
        self._channels: Dict[Tuple[int, int, int], deque] = {}
        # dst -> set of channel keys with unmatched messages
        self._channels_by_dst: Dict[int, set] = {}
        # dst -> list of _PendingRecv in post order
        self._pending_recvs: Dict[int, List[_PendingRecv]] = {}
        self._unexpected_bytes: Dict[int, int] = {}
        # receive-side message processing is serial: a rank's "receive
        # processor" finishes one message before starting the next, so a
        # burst arriving faster than recv_overhead can drain queues up —
        # the physical mechanism behind the paper's Fig. 7 discussion
        self._rx_busy: Dict[int, float] = {}
        # the ejection link to each rank is also serial (wire queueing):
        # simultaneous arrivals stretch, paced arrivals do not
        self._wire_free: Dict[int, float] = {}
        # leaky-bucket overload accounting: (last update time, level bytes)
        self._overload: Dict[int, Tuple[float, float]] = {}
        self.overload_events = 0
        self._coll: Dict[Tuple[int, int], _CollInstance] = {}
        self._deferred_dsts: set = set()
        self._min_latency = model.min_latency()
        self.steps = 0
        self.messages_sent = 0
        self.bytes_sent = 0
        self.matches_committed = 0
        self.deferred_commits = 0
        self.deadlock_checks = 0

    # -- public API --------------------------------------------------------
    def run(self, programs: Sequence[Generator]) -> float:
        """Drive ``programs`` (one generator per rank) to completion.

        Returns the simulated makespan: the maximum final rank clock.
        Raises :class:`SimDeadlockError` if the programs deadlock.
        """
        if len(programs) != self.nranks:
            raise ValueError(
                f"expected {self.nranks} programs, got {len(programs)}")
        self._ranks = [_RankState(i, g) for i, g in enumerate(programs)]
        for i in range(self.nranks):
            self._pending_recvs[i] = []
            self._unexpected_bytes[i] = 0
            self._channels_by_dst[i] = set()
            self._rx_busy[i] = 0.0
            self._wire_free[i] = 0.0
            self._overload[i] = (0.0, 0.0)

        with obs.span("engine.run", nranks=self.nranks):
            try:
                while True:
                    self.steps += 1
                    if self.max_steps is not None and \
                            self.steps > self.max_steps:
                        raise SimulationError(
                            f"exceeded max_steps={self.max_steps}; "
                            f"likely livelock")
                    if self._deferred_dsts:
                        for dst in sorted(self._deferred_dsts):
                            self._deferred_dsts.discard(dst)
                            self._drain(dst, relaxed=False)
                    self._resume_resumable(relaxed=False)
                    ready = [rs for rs in self._ranks if rs.state == READY]
                    if ready:
                        rs = min(ready, key=lambda r: (r.clock, r.rank))
                        self._step(rs)
                        continue
                    if all(rs.state == DONE for rs in self._ranks):
                        break
                    # everyone blocked: try relaxed matching / resumption
                    self.deadlock_checks += 1
                    if self._relaxed_progress():
                        continue
                    self._raise_deadlock()
            finally:
                self._flush_counters()
        return self.total_time

    def _flush_counters(self) -> None:
        """Publish this run's accumulated probe totals (cheap: the hot
        loop only bumps plain ints; the bus sees aggregates once)."""
        obs.count("engine.steps", self.steps)
        obs.count("engine.matches", self.matches_committed)
        obs.count("engine.deferred_commits", self.deferred_commits)
        obs.count("engine.deadlock_checks", self.deadlock_checks)
        obs.count("engine.messages_sent", self.messages_sent)
        obs.count("engine.bytes_sent", self.bytes_sent)
        obs.count("engine.overload_events", self.overload_events)

    @property
    def total_time(self) -> float:
        return max((rs.clock for rs in self._ranks), default=0.0)

    def now(self, rank: int) -> float:
        return self._ranks[rank].clock

    # -- generator stepping -------------------------------------------------
    def _step(self, rs: _RankState) -> None:
        value = rs.pending_value
        rs.pending_value = None
        while True:
            self.steps += 1
            if self.max_steps is not None and self.steps > self.max_steps:
                raise SimulationError(
                    f"exceeded max_steps={self.max_steps}; likely livelock")
            try:
                op = rs.gen.send(value)
            except StopIteration:
                rs.state = DONE
                self._on_rank_done(rs)
                return
            value = self._apply(rs, op)
            if value is _BLOCK:
                rs.state = BLOCKED
                return

    def _apply(self, rs: _RankState, op: Op):
        if isinstance(op, Compute):
            rs.clock += op.duration
            return None
        if isinstance(op, PostSend):
            return self._apply_send(rs, op)
        if isinstance(op, PostRecv):
            return self._apply_recv(rs, op)
        if isinstance(op, WaitAll):
            done = self._try_waitall(rs, op.requests, relaxed=False)
            if done is not None:
                return done
            rs.blocked_kind = "waitall"
            rs.blocked_data = op.requests
            return _BLOCK
        if isinstance(op, WaitAny):
            done = self._try_waitany(rs, op.requests, relaxed=False)
            if done is not None:
                return done
            rs.blocked_kind = "waitany"
            rs.blocked_data = op.requests
            return _BLOCK
        if isinstance(op, Test):
            # A test succeeds only if the operation has completed by the
            # rank's current virtual time; testing never advances the clock
            # past the completion (matching MPI_Test semantics).
            req = op.request
            if req.complete and req.completion <= rs.clock:
                return (True, req.status)
            return (False, None)
        if isinstance(op, Collective):
            return self._apply_collective(rs, op)
        raise MPIUsageError(f"rank {rs.rank} yielded non-op {op!r}")

    # -- sends ----------------------------------------------------------------
    def _apply_send(self, rs: _RankState, op: PostSend) -> Request:
        if op.dst >= self.nranks:
            raise MPIUsageError(
                f"rank {rs.rank} sends to nonexistent rank {op.dst}")
        model = self.model
        req = Request("send", rs.rank)
        post_time = rs.clock
        rs.clock += model.send_overhead(op.nbytes)
        inject = rs.clock
        eager = op.nbytes <= model.eager_threshold
        charged = False
        throttled = False
        arrival = None
        if eager and model.overload_drain_rate is not None:
            # leaky bucket: the destination's protocol stack drains at a
            # fixed rate; sustained offered load above it builds standing
            # backlog, and senders to an overloaded stack back off
            last_t, level = self._overload[op.dst]
            level = max(0.0, level - (inject - last_t)
                        * model.overload_drain_rate)
            if level > model.overload_capacity:
                rs.clock += model.overload_penalty
                inject = rs.clock
                self.overload_events += 1
                level = max(0.0, level - model.overload_penalty
                            * model.overload_drain_rate)
            level += op.nbytes
            self._overload[op.dst] = (inject, level)
        if eager and model.wire_queueing:
            # the destination's ejection link is serial: this message's
            # data starts landing when the link frees up
            reach = inject + model.transit_time(0)
            backlog = self._wire_free[op.dst] - reach
            threshold = model.backlog_stall_threshold
            if threshold is not None and backlog > threshold:
                # flow control: the sender stalls until the destination's
                # queue drains back to the window (graduated backpressure);
                # the cost lands on the sender's clock directly
                rs.clock += (backlog - threshold
                             + model.stall_penalty(op.nbytes))
                inject = rs.clock
                reach = inject + model.transit_time(0)
            start = max(reach, self._wire_free[op.dst])
            arrival = start + model.eject_time(op.nbytes)
            self._wire_free[op.dst] = arrival
        if eager:
            preposted = self._has_compatible_recv(op.dst, rs.rank, op.tag,
                                                  op.comm_id)
            if not preposted:
                cap = model.unexpected_capacity
                pending = self._unexpected_bytes[op.dst]
                if cap is not None and pending + op.nbytes > cap:
                    throttled = True
                charged = True
                self._unexpected_bytes[op.dst] += op.nbytes
            if not throttled:
                req.completion = inject  # local completion, buffered send
        msg = _Message(rs.rank, op.dst, op.tag, op.comm_id, op.nbytes,
                       post_time, inject, "eager" if eager else "rdv",
                       throttled, charged, req, arrival=arrival)
        req.message = msg
        key = (rs.rank, op.dst, op.comm_id)
        self._channels.setdefault(key, deque()).append(msg)
        self._channels_by_dst[op.dst].add(key)
        self.messages_sent += 1
        self.bytes_sent += op.nbytes
        self._drain(op.dst, relaxed=False)
        return req

    def _has_compatible_recv(self, dst: int, src: int, tag: int,
                             comm_id: int) -> bool:
        for pr in self._pending_recvs[dst]:
            if pr.comm_id != comm_id:
                continue
            if pr.src not in (src, ANY_SOURCE):
                continue
            if pr.tag not in (tag, ANY_TAG):
                continue
            return True
        return False

    # -- receives ---------------------------------------------------------------
    def _apply_recv(self, rs: _RankState, op: PostRecv) -> Request:
        if op.src != ANY_SOURCE and op.src >= self.nranks:
            raise MPIUsageError(
                f"rank {rs.rank} receives from nonexistent rank {op.src}")
        req = Request("recv", rs.rank)
        pr = _PendingRecv(rs.rank, op.src, op.tag, op.comm_id, rs.clock, req)
        self._pending_recvs[rs.rank].append(pr)
        self._drain(rs.rank, relaxed=False)
        return req

    # -- matching ------------------------------------------------------------
    def _arrival_est(self, msg: _Message, recv_post: float) -> float:
        model = self.model
        if msg.protocol == "eager":
            t = (msg.arrival if msg.arrival is not None
                 else msg.inject_time + model.transit_time(msg.nbytes))
            if msg.throttled:
                t += model.stall_penalty(msg.nbytes)
            return t
        # rendezvous: data moves once both sides are ready
        handshake = msg.inject_time + self._min_latency
        return max(handshake, recv_post) + model.transit_time(msg.nbytes)

    def _first_compatible_in_channel(self, key, tag) -> Optional[_Message]:
        chan = self._channels.get(key)
        if not chan:
            return None
        for msg in chan:
            if tag == ANY_TAG or tag == msg.tag:
                return msg
        return None

    def _candidates_for(self, pr: _PendingRecv) -> List[_Message]:
        """First tag-compatible unmatched message of each eligible channel."""
        out = []
        if pr.src == ANY_SOURCE:
            keys = sorted(self._channels_by_dst[pr.rank])
        else:
            keys = [(pr.src, pr.rank, pr.comm_id)]
        for key in keys:
            if key[2] != pr.comm_id:
                continue
            chan = self._channels.get(key)
            if not chan:
                continue
            for msg in chan:
                if pr.tag in (msg.tag, ANY_TAG):
                    out.append(msg)
                    break
        return out

    def _horizon(self, exclude_rank: int) -> float:
        """Earliest virtual time at which any rank other than
        ``exclude_rank`` could inject a new message."""
        h = float("inf")
        for rs in self._ranks:
            if rs.rank == exclude_rank or rs.state == DONE:
                continue
            h = min(h, rs.clock)
        return h + self._min_latency

    def _drain(self, dst: int, relaxed: bool) -> bool:
        """Match pending receives at ``dst`` against channel messages.

        Receives are scanned in post order.  A directed receive matches the
        first tag-compatible message in its channel immediately (FIFO order
        makes this deterministic).  A wildcard receive matches its
        earliest-arriving candidate only when that choice is *safe* (no
        other rank could still produce an earlier arrival); unsafe wildcard
        receives freeze matching for later receives that could steal their
        messages.  Returns True if any match was committed.
        """
        any_progress = False
        progress = True
        while progress:
            progress = False
            frozen_pairs: set = set()  # (src, comm) pairs an unsafe ANY could take
            frozen_all = False
            for pr in list(self._pending_recvs[dst]):
                if pr.src == ANY_SOURCE:
                    cands = self._candidates_for(pr)
                    cands = [m for m in cands
                             if not frozen_all
                             and (m.src, m.comm_id) not in frozen_pairs]
                    if not cands:
                        # nothing available yet; this wildcard blocks any
                        # later recv from stealing what it might match
                        frozen_all = True
                        continue
                    best = min(cands, key=lambda m: (
                        self._arrival_est(m, pr.post_time), m.src, m.seq))
                    if not relaxed:
                        arr = self._arrival_est(best, pr.post_time)
                        if arr > self._horizon(dst):
                            self._deferred_dsts.add(dst)
                            frozen_all = True
                            continue
                    self._commit_match(pr, best)
                    progress = True
                    any_progress = True
                    break
                else:
                    if frozen_all or (pr.src, pr.comm_id) in frozen_pairs:
                        continue
                    msg = self._first_compatible_in_channel(
                        (pr.src, dst, pr.comm_id), pr.tag)
                    if msg is None:
                        continue
                    self._commit_match(pr, msg)
                    progress = True
                    any_progress = True
                    break
        return any_progress

    def _commit_match(self, pr: _PendingRecv, msg: _Message) -> None:
        self.matches_committed += 1
        model = self.model
        arrival = self._arrival_est(msg, pr.post_time)
        # message processing starts when the data is here, the receive is
        # posted, and the receiver's (serial) message processor is free
        start = max(pr.post_time, arrival, self._rx_busy[pr.rank])
        completion = start
        if msg.protocol == "eager" and arrival < pr.post_time:
            completion += model.unexpected_copy(msg.nbytes)
        completion += model.recv_overhead(msg.nbytes)
        self._rx_busy[pr.rank] = completion
        pr.rreq.completion = completion
        pr.rreq.status = Status(msg.src, msg.tag, msg.nbytes)
        pr.rreq.message = msg
        # sender-side completion for rendezvous / throttled sends
        if msg.sreq.completion is None:
            msg.sreq.completion = completion
            msg.sreq.status = Status(msg.src, msg.tag, msg.nbytes)
        if msg.charged:
            self._unexpected_bytes[msg.dst] -= msg.nbytes
        key = (msg.src, msg.dst, msg.comm_id)
        self._channels[key].remove(msg)
        if not self._channels[key]:
            self._channels_by_dst[msg.dst].discard(key)
        self._pending_recvs[pr.rank].remove(pr)

    # -- waits ----------------------------------------------------------------
    def _try_waitall(self, rs: _RankState, requests, relaxed: bool):
        if not all(r.complete for r in requests):
            return None
        if requests:
            rs.clock = max(rs.clock, max(r.completion for r in requests))
        return [r.status for r in requests]

    def _try_waitany(self, rs: _RankState, requests, relaxed: bool):
        done = [(r.completion, i) for i, r in enumerate(requests) if r.complete]
        if not done:
            return None
        t, i = min(done)
        if not relaxed and not all(r.complete for r in requests):
            # an incomplete request might still finish earlier
            if t > self._horizon(rs.rank):
                return None
        rs.clock = max(rs.clock, t)
        return (i, requests[i].status)

    # -- collectives ------------------------------------------------------------
    def _apply_collective(self, rs: _RankState, op: Collective):
        if rs.rank not in op.group:
            raise MPIUsageError(
                f"rank {rs.rank} called collective on group excluding it")
        seq = rs.coll_seq.get(op.comm_id, 0)
        rs.coll_seq[op.comm_id] = seq + 1
        key = (op.comm_id, seq)
        inst = self._coll.get(key)
        if inst is None:
            inst = _CollInstance(op.key, op.group, op.nbytes)
            self._coll[key] = inst
        else:
            if inst.group != op.group or inst.key != op.key:
                raise MPIUsageError(
                    f"collective mismatch on comm {op.comm_id} seq {seq}: "
                    f"{inst.key}/{inst.group} vs {op.key}/{op.group}")
            inst.nbytes = max(inst.nbytes, op.nbytes)
        inst.arrivals[rs.rank] = rs.clock
        if len(inst.arrivals) == len(inst.group):
            start = max(inst.arrivals.values())
            inst.completion = start + self.model.collective_cost(
                inst.key, len(inst.group), inst.nbytes)
            # the caller resumes immediately; blocked participants are
            # picked up by _resume_resumable on the next scheduler pass
            rs.clock = inst.completion
            return None
        rs.blocked_kind = "collective"
        rs.blocked_data = inst
        return _BLOCK

    # -- resumption -------------------------------------------------------------
    def _resume_resumable(self, relaxed: bool) -> bool:
        progress = False
        for rs in self._ranks:
            if rs.state != BLOCKED:
                continue
            if rs.blocked_kind == "waitall":
                res = self._try_waitall(rs, rs.blocked_data, relaxed)
                if res is None:
                    continue
                rs.pending_value = res
            elif rs.blocked_kind == "waitany":
                res = self._try_waitany(rs, rs.blocked_data, relaxed)
                if res is None:
                    continue
                rs.pending_value = res
            elif rs.blocked_kind == "collective":
                inst = rs.blocked_data
                if inst.completion is None:
                    continue
                rs.clock = inst.completion
                rs.pending_value = None
            else:  # pragma: no cover - defensive
                raise AssertionError(rs.blocked_kind)
            rs.state = READY
            rs.blocked_kind = None
            rs.blocked_data = None
            progress = True
        return progress

    def _relaxed_progress(self) -> bool:
        # 1. deferred wildcard matches, earliest arrival first
        for dst in sorted(self._pending_recvs):
            if self._drain(dst, relaxed=True):
                self.deferred_commits += 1
                return True
        # 2. waits resumable without the safety horizon
        if self._resume_resumable(relaxed=True):
            return True
        return False

    # -- termination ------------------------------------------------------------
    def _on_rank_done(self, rs: _RankState) -> None:
        # A finished rank cannot post new sends; wildcard horizons improve.
        if self._pending_recvs[rs.rank]:
            raise MPIUsageError(
                f"rank {rs.rank} finished with "
                f"{len(self._pending_recvs[rs.rank])} unmatched receives")

    def _describe_block(self, rs: _RankState) -> str:
        if rs.blocked_kind == "collective":
            inst = rs.blocked_data
            missing = [r for r in inst.group if r not in inst.arrivals]
            return f"collective {inst.key} awaiting ranks {missing}"
        if rs.blocked_kind in ("waitall", "waitany"):
            pending = [r for r in rs.blocked_data if not r.complete]
            kinds = ", ".join(f"{r.kind}" for r in pending[:4])
            return f"{rs.blocked_kind} on {len(pending)} requests ({kinds})"
        return str(rs.blocked_kind)

    def _raise_deadlock(self) -> None:
        blocked = {rs.rank: self._describe_block(rs)
                   for rs in self._ranks if rs.state == BLOCKED}
        raise SimDeadlockError(blocked)
