"""Deterministic discrete-event engine for SPMD rank programs.

Rank programs are generator coroutines yielding :mod:`repro.sim.ops`
operations.  The engine advances per-rank *virtual clocks* and matches
messages under MPI semantics:

* per-(source, destination, communicator) FIFO ("non-overtaking") order;
* tag-selective matching, with ANY_SOURCE / ANY_TAG wildcards;
* posted-receive queue scanned in post order.

Scheduling is conservative: the runnable rank with the smallest clock runs
next, and a wildcard receive is only matched once no other rank could still
produce an earlier-arriving candidate (``arrival <= horizon`` where the
horizon is the minimum over other live ranks of clock + minimum latency).
When every rank is blocked, the engine commits the earliest-arriving
deferred candidate instead (the only event that can happen next).  The
result is a bit-deterministic simulation that still exhibits honest
message races for ANY_SOURCE receives — the nondeterminism Algorithm 2 of
the paper exists to remove from *generated* benchmarks.

Timing uses the pluggable :class:`~repro.sim.network.NetworkModel`,
including eager/rendezvous protocols, unexpected-message copy costs, and
finite-buffer flow control (see the paper's Fig. 7 discussion).

The core is layered (see ``docs/ARCHITECTURE.md``):

* :mod:`repro.sim.sched` — ready/clock heaps, the wildcard safety
  horizon, dirty-set wakeup, deferred destinations;
* :mod:`repro.sim.matching` — per-(src, dst, comm) channels, indexed
  pending receives, cached arrival estimates, wildcard candidate heaps;
* :mod:`repro.sim.exec_batch` — the cohort-batched executor (default),
  which flattens dispatch and inlines the hot handlers;
* this module — protocol semantics (send/receive/collective timing
  arithmetic, flow control, faults) and the *scalar* reference loop.

``Engine.run()`` picks the executor from the ``mode`` constructor
argument, defaulting to the ``REPRO_ENGINE_MODE`` environment variable
(``batch`` when unset; ``scalar`` selects the reference loop).  Both
modes are bit-identical by contract: commit order, tie-breaking, timing
and counters are pinned by the golden suites in ``tests/sim/golden/``
and the Hypothesis equivalence tests.  Runs with crash faults or
``--profile`` instrumentation always use the reference loop structure.
"""

from __future__ import annotations

import os
from types import MethodType
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from repro import obs
from repro.errors import MPIUsageError, SimDeadlockError, SimulationError
from repro.sim.diagnostics import (BlockedOp, DeadlockDiagnostic,
                                   find_cycle)
from repro.sim.exec_batch import (_BLOCK, _CollInstance, run_batch,
                                  run_profiled)
from repro.sim.matching import (MatchIndex, _Message, _PendingRecv,
                                arrival_est, drain_batch)
from repro.sim.network import NetworkModel
from repro.sim.ops import (ANY_SOURCE, Collective, Compute, Op, PostRecv,
                           PostSend, Test, WaitAll, WaitAny)
from repro.sim.policy import drain_policy, resolve_policy
from repro.sim.queueing import resolve_queue_discipline
from repro.sim.requests import Request, Status
from repro.sim.sched import BLOCKED, DONE, READY, Scheduler

_MODES = ("scalar", "batch")


class _RankState:
    __slots__ = ("rank", "gen", "clock", "state", "blocked_kind",
                 "blocked_data", "pending_value", "coll_seq")

    def __init__(self, rank: int, gen: Generator):
        self.rank = rank
        self.gen = gen
        self.clock = 0.0
        self.state = READY
        self.blocked_kind: Optional[str] = None   # "waitall"|"waitany"|"collective"
        self.blocked_data = None
        self.pending_value = None
        self.coll_seq: Dict[int, int] = {}        # comm_id -> collective counter


def resolve_mode(mode: Optional[str] = None) -> str:
    """Resolve an engine mode: explicit argument, else the
    ``REPRO_ENGINE_MODE`` environment variable, else ``batch``."""
    if mode is None:
        mode = os.environ.get("REPRO_ENGINE_MODE", "batch")
    if mode not in _MODES:
        raise ValueError(
            f"unknown engine mode {mode!r}: expected one of {_MODES} "
            f"(set via REPRO_ENGINE_MODE or Engine(mode=...))")
    return mode


class Engine:
    """Run a set of rank generator programs to completion in virtual time."""

    def __init__(self, nranks: int, model: NetworkModel,
                 max_steps: Optional[int] = None, faults=None,
                 mode: Optional[str] = None, profile: bool = False,
                 schedule_policy=None, schedule_seed: Optional[int] = None,
                 queue_discipline=None, queue_params=None):
        if nranks <= 0:
            raise ValueError("nranks must be positive")
        self.nranks = nranks
        self.model = model
        self.max_steps = max_steps
        #: executor selection: "batch" (cohort executor, default) or
        #: "scalar" (reference loop); both are bit-identical
        self.mode = resolve_mode(mode)
        #: tie-break policy for wildcard matches and same-clock cohorts;
        #: canonical (the default) leaves every hot path untouched —
        #: see repro.sim.policy.  Validated here, at construction.
        self.policy = resolve_policy(schedule_policy, schedule_seed)
        #: per-phase wall-time attribution (``repro pipeline --profile``)
        self.profile = bool(profile)
        self.profile_phases: Optional[Dict[str, float]] = None
        #: the FaultInjector driving this run, if any; a null-plan
        #: injector deactivates itself so the no-fault path is untouched
        self.faults = faults
        self._faults = faults if faults is not None and faults.active \
            else None
        self._crash_at: Optional[List[float]] = None
        self.crashed_ranks: List[int] = []
        self.starved_ranks: List[int] = []
        self.diagnostic: Optional[DeadlockDiagnostic] = None
        self._ranks: List[_RankState] = []
        self._min_latency = model.min_latency()
        # -- layered core: matching + scheduling state ----------------------
        m = self._match = MatchIndex()
        s = self._sched = Scheduler(self._min_latency)
        # hot-path aliases: the engine's protocol methods address the
        # matcher's and scheduler's containers directly (same objects)
        self._channels = m.channels
        self._chan_live = m.chan_live
        self._channels_by_dst = m.channels_by_dst
        self._srcs_by_dst_comm = m.srcs_by_dst_comm
        self._pending_recvs = m.pending_recvs
        self._pending_live = m.pending_live
        self._recv_index = m.recv_index
        self._wild_index = m.wild_index
        self._unexpected_bytes = m.unexpected_bytes
        self._has_compatible_recv = m.has_compatible_recv
        self._ready_heap = s.ready_heap
        self._clock_heap = s.clock_heap
        self._dirty = s.dirty
        self._deferred_dsts = s.deferred_dsts
        self._pop_ready = s.pop_ready
        self._make_ready = s.make_ready
        self._horizon = s.horizon
        # -- protocol-side per-rank state -----------------------------------
        # receive-side message processing is serial: a rank's "receive
        # processor" finishes one message before starting the next, so a
        # burst arriving faster than recv_overhead can drain queues up —
        # the physical mechanism behind the paper's Fig. 7 discussion
        self._rx_busy: Dict[int, float] = {}
        # the ejection link to each rank is also serial (wire queueing):
        # simultaneous arrivals stretch, paced arrivals do not
        self._wire_free: Dict[int, float] = {}
        # routed-fabric mode: eager messages fold through every named
        # link on their route instead of just the destination's ejection
        # queue — _link_free generalizes _wire_free from per-destination
        # to per-link (see repro.topology.fabric.RoutedFabric)
        self._routed = bool(getattr(model, "routed", False))
        self._link_free: Dict[str, float] = {}
        self._link_msgs: Dict[str, int] = {}
        self._link_busy: Dict[str, float] = {}
        self._link_wait: Dict[str, float] = {}
        #: per-link admission rule for the routed fold; None is the
        #: default FIFO (the original inline arithmetic, untouched —
        #: that is the byte-identity contract the goldens pin).
        #: Validated here, at construction — see repro.sim.queueing.
        self._qdisc = resolve_queue_discipline(queue_discipline,
                                               queue_params)
        if self._qdisc is not None and not self._routed:
            raise ValueError(
                f"queue discipline {self._qdisc.describe()!r} needs a "
                "routed fabric (named links to queue on); flat fabrics "
                "have only the per-destination ejection wire")
        self._link_drops: Dict[str, int] = {}
        # leaky-bucket overload accounting: (last update time, level bytes)
        self._overload: Dict[int, Tuple[float, float]] = {}
        self.overload_events = 0
        self._coll: Dict[Tuple[int, int], _CollInstance] = {}
        self._done_count = 0
        # per-engine sequence counters: two engines in one process assign
        # identical seq-based tie-breaks for identical programs
        self._msg_seq = 0
        self._pr_seq = 0
        self._ran = False
        self.steps = 0
        self.messages_sent = 0
        self.bytes_sent = 0
        self.matches_committed = 0
        self.deferred_commits = 0
        self.deadlock_checks = 0

    # -- public API --------------------------------------------------------
    def run(self, programs: Sequence[Generator]) -> float:
        """Drive ``programs`` (one generator per rank) to completion.

        Returns the simulated makespan: the maximum final rank clock.
        Raises :class:`SimDeadlockError` if the programs deadlock.  An
        :class:`Engine` instance drives exactly one run; reuse raises
        :class:`SimulationError` (stale channel/collective state would
        silently corrupt a second simulation).
        """
        if self._ran:
            raise SimulationError(
                "Engine.run() called twice on the same instance; channel "
                "and collective state is per-run — create a new Engine")
        self._ran = True
        if len(programs) != self.nranks:
            raise ValueError(
                f"expected {self.nranks} programs, got {len(programs)}")
        self._ranks = [_RankState(i, g) for i, g in enumerate(programs)]
        if self._faults is not None:
            self._crash_at = [self._faults.crash_time(i)
                              for i in range(self.nranks)]
        self._match.seed(self.nranks)
        self._sched.seed(self._ranks)
        for i in range(self.nranks):
            self._rx_busy[i] = 0.0
            self._wire_free[i] = 0.0
            self._overload[i] = (0.0, 0.0)

        # executor selection: the cohort executor covers the batch mode;
        # crash-fault runs need the reference loop's per-op crash check,
        # and --profile uses the instrumented reference structure.  The
        # batch drain (candidate heaps) is bound whenever mode is batch.
        use_batch = self.mode == "batch" and self._crash_at is None
        if self.mode == "batch":
            self._drain = MethodType(drain_batch, self)
        if not self.policy.canonical:
            # non-canonical schedule: both executors route the two
            # decision points through the policy.  The policy drain
            # replaces both the scalar reference drain and drain_batch
            # (the batch candidate heaps answer canonical-minimum
            # queries a policy cannot use), so scalar and batch mode
            # enumerate candidates — and consume RNG draws — in the
            # same order.  The pop rebinding covers the scalar loop and
            # run_profiled; run_batch checks the policy itself.
            self._drain = MethodType(drain_policy, self)
            policy = self.policy
            s = self._sched
            self._pop_ready = lambda: s.pop_ready_policy(policy)
        with obs.span("engine.run", nranks=self.nranks):
            try:
                if self.profile:
                    run_profiled(self)
                elif use_batch:
                    run_batch(self)
                else:
                    self._run_scalar()
            finally:
                self._flush_counters()
        return self.total_time

    def _run_scalar(self) -> None:
        """The reference main loop: one generator step at a time through
        :meth:`_step`/:meth:`_apply`.  The cohort executor
        (:func:`repro.sim.exec_batch.run_batch`) must stay bit-identical
        to this loop."""
        while True:
            self.steps += 1
            if self.max_steps is not None and \
                    self.steps > self.max_steps:
                raise SimulationError(
                    f"exceeded max_steps={self.max_steps}; "
                    f"likely livelock")
            if self._deferred_dsts:
                for dst in sorted(self._deferred_dsts):
                    self._deferred_dsts.discard(dst)
                    self._drain(dst, relaxed=False)
            if self._dirty:
                self._resume_dirty()
            rs = self._pop_ready()
            if rs is not None:
                self._step(rs)
                continue
            if self._done_count == self.nranks:
                break
            # everyone blocked: try relaxed matching / resumption
            self.deadlock_checks += 1
            if self._relaxed_progress():
                continue
            if self.crashed_ranks:
                # graceful degradation: ranks waiting on a crashed
                # peer can never progress — record the diagnostic
                # and end the run so its trace prefix survives
                self._starve_blocked()
                break
            self._raise_deadlock()

    def _flush_counters(self) -> None:
        """Publish this run's accumulated probe totals (cheap: the hot
        loop only bumps plain ints; the bus sees aggregates once).

        Counters are emitted in sorted-name order — deterministic
        regardless of link discovery order or fault-counter insertion
        order, so JSONL metrics output is byte-stable across runs and
        engine modes.
        """
        pairs = [
            ("engine.steps", self.steps),
            ("engine.matches", self.matches_committed),
            ("engine.deferred_commits", self.deferred_commits),
            ("engine.deadlock_checks", self.deadlock_checks),
            ("engine.messages_sent", self.messages_sent),
            ("engine.bytes_sent", self.bytes_sent),
            ("engine.overload_events", self.overload_events),
        ]
        if self._routed and self._link_msgs:
            span = self.total_time
            for name in self._link_msgs:
                pairs.append((f"engine.link.{name}.msgs",
                              self._link_msgs[name]))
                pairs.append((f"engine.link.{name}.busy_s",
                              self._link_busy.get(name, 0.0)))
                pairs.append((f"engine.link.{name}.wait_s",
                              self._link_wait.get(name, 0.0)))
            pairs.append(("engine.links_used", len(self._link_msgs)))
            pairs.append(("engine.link_busy_s_total",
                          sum(self._link_busy.values())))
            pairs.append(("engine.link_wait_s_total",
                          sum(self._link_wait.values())))
            if span > 0.0:
                pairs.append(("engine.link_util_max",
                              max(self._link_busy.values()) / span))
            if self._qdisc is not None:
                # drop accounting exists only under a real discipline;
                # the default FIFO counter set is unchanged byte-for-byte
                for name, drops in self._link_drops.items():
                    pairs.append((f"engine.link.{name}.drops", drops))
                pairs.append(("engine.link_drops_total",
                              sum(self._link_drops.values())))
        if self._faults is not None:
            for name, value in self._faults.snapshot().items():
                pairs.append((f"engine.fault.{name}", value))
            pairs.append(("engine.fault.crashed_ranks",
                          len(self.crashed_ranks)))
            pairs.append(("engine.fault.starved_ranks",
                          len(self.starved_ranks)))
        if self.profile_phases is not None:
            for phase, secs in self.profile_phases.items():
                pairs.append((f"engine.profile.{phase}_s", secs))
        for name, value in sorted(pairs):
            obs.count(name, value)

    @property
    def total_time(self) -> float:
        return max((rs.clock for rs in self._ranks), default=0.0)

    @property
    def link_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-link contention accounting for routed fabrics.

        ``{link_name: {"msgs": count, "busy_s": occupied seconds,
        "wait_s": seconds messages queued for the link}}`` — empty for
        flat fabrics (no named links).  Under a non-FIFO queue
        discipline each entry also carries ``"drops"`` (counted
        retransmissions); the default FIFO shape is unchanged so the
        golden suites and downstream consumers see the same bytes.
        """
        if self._qdisc is not None:
            return {name: {"msgs": self._link_msgs[name],
                           "busy_s": self._link_busy.get(name, 0.0),
                           "wait_s": self._link_wait.get(name, 0.0),
                           "drops": self._link_drops.get(name, 0)}
                    for name in sorted(self._link_msgs)}
        return {name: {"msgs": self._link_msgs[name],
                       "busy_s": self._link_busy.get(name, 0.0),
                       "wait_s": self._link_wait.get(name, 0.0)}
                for name in sorted(self._link_msgs)}

    def now(self, rank: int) -> float:
        return self._ranks[rank].clock

    # -- generator stepping -------------------------------------------------
    def _step(self, rs: _RankState) -> None:
        value = rs.pending_value
        rs.pending_value = None
        while True:
            if self._crash_at is not None and \
                    rs.clock >= self._crash_at[rs.rank]:
                self._crash_rank(rs)
                return
            self.steps += 1
            if self.max_steps is not None and self.steps > self.max_steps:
                raise SimulationError(
                    f"exceeded max_steps={self.max_steps}; likely livelock")
            try:
                op = rs.gen.send(value)
            except StopIteration:
                rs.state = DONE
                self._done_count += 1
                self._on_rank_done(rs)
                return
            value = self._apply(rs, op)
            if value is _BLOCK:
                rs.state = BLOCKED
                return

    def _apply(self, rs: _RankState, op: Op):
        if isinstance(op, Compute):
            if self._faults is not None:
                rs.clock += op.duration * \
                    self._faults.compute_factor(rs.rank)
            else:
                rs.clock += op.duration
            return None
        if isinstance(op, PostSend):
            return self._apply_send(rs, op)
        if isinstance(op, PostRecv):
            return self._apply_recv(rs, op)
        if isinstance(op, WaitAll):
            done = self._try_waitall(rs, op.requests, relaxed=False)
            if done is not None:
                return done
            rs.blocked_kind = "waitall"
            rs.blocked_data = op.requests
            self._register_waiter(rs, op.requests)
            return _BLOCK
        if isinstance(op, WaitAny):
            done = self._try_waitany(rs, op.requests, relaxed=False)
            if done is not None:
                return done
            rs.blocked_kind = "waitany"
            rs.blocked_data = op.requests
            self._register_waiter(rs, op.requests)
            return _BLOCK
        if isinstance(op, Test):
            # A test succeeds only if the operation has completed by the
            # rank's current virtual time; testing never advances the clock
            # past the completion (matching MPI_Test semantics).
            req = op.request
            if req.complete and req.completion <= rs.clock:
                return (True, req.status)
            return (False, None)
        if isinstance(op, Collective):
            return self._apply_collective(rs, op)
        raise MPIUsageError(f"rank {rs.rank} yielded non-op {op!r}")

    def _register_waiter(self, rs: _RankState, requests) -> None:
        """Route future completions of ``requests`` to the blocking rank.

        A rank blocking on WaitAny with an already-complete request goes
        straight onto the dirty set: its resumability depends on the
        safety horizon (which moves as other ranks run), not on any new
        completion, so it must be re-examined every scheduler pass.
        """
        any_complete = False
        for req in requests:
            if req.complete:
                any_complete = True
            else:
                req.waiter = rs.rank
        if any_complete and rs.blocked_kind == "waitany":
            self._dirty.add(rs.rank)

    # -- sends ----------------------------------------------------------------
    def _apply_send(self, rs: _RankState, op: PostSend) -> Request:
        if op.dst >= self.nranks:
            raise MPIUsageError(
                f"rank {rs.rank} sends to nonexistent rank {op.dst}")
        model = self.model
        req = Request("send", rs.rank)
        req.peer = op.dst
        post_time = rs.clock
        rs.clock += model.send_overhead(op.nbytes)
        inject = rs.clock
        eager = op.nbytes <= model.eager_threshold
        fate = None
        if self._faults is not None:
            fate = self._faults.send_fate(self._msg_seq)
        lost = fate is not None and fate.lost
        charged = False
        throttled = False
        arrival = None
        if eager and model.overload_drain_rate is not None:
            # leaky bucket: the destination's protocol stack drains at a
            # fixed rate; sustained offered load above it builds standing
            # backlog, and senders to an overloaded stack back off
            last_t, level = self._overload[op.dst]
            level = max(0.0, level - (inject - last_t)
                        * model.overload_drain_rate)
            if level > model.overload_capacity:
                rs.clock += model.overload_penalty
                inject = rs.clock
                self.overload_events += 1
                level = max(0.0, level - model.overload_penalty
                            * model.overload_drain_rate)
            level += op.nbytes
            self._overload[op.dst] = (inject, level)
        route_links: Tuple[str, ...] = ()
        if eager and self._routed:
            route_links, inject, arrival = self._routed_arrival(
                rs, op, inject)
        elif eager and model.wire_queueing:
            # the destination's ejection link is serial: this message's
            # data starts landing when the link frees up
            reach = inject + model.transit_time(0)
            backlog = self._wire_free[op.dst] - reach
            threshold = model.backlog_stall_threshold
            if threshold is not None and backlog > threshold:
                # flow control: the sender stalls until the destination's
                # queue drains back to the window (graduated backpressure);
                # the cost lands on the sender's clock directly
                rs.clock += (backlog - threshold
                             + model.stall_penalty(op.nbytes))
                inject = rs.clock
                reach = inject + model.transit_time(0)
            start = max(reach, self._wire_free[op.dst])
            arrival = start + model.eject_time(op.nbytes)
            self._wire_free[op.dst] = arrival
        fault_delay = 0.0
        if fate is not None and not lost:
            fault_delay = fate.delay
            if self._routed and not route_links:
                # rendezvous in routed mode: the route was not folded
                # through the links, but link-targeted degradation
                # windows still need to see which links the data crosses
                route_links = model.fabric.route(rs.rank, op.dst)
            lat_f, bw_f = self._faults.window_factors(op.dst, inject,
                                                      links=route_links)
            if lat_f != 1.0 or bw_f != 1.0:
                base = model.transit_time(0)
                extra = (lat_f - 1.0) * base + (bw_f - 1.0) * \
                    (model.transit_time(op.nbytes) - base)
                fault_delay += extra
                self._faults.delay_injected += extra
            if arrival is not None and fault_delay:
                # wire-queued eager: bake the injected delay into the
                # fixed arrival and keep the ejection link busy until
                # the late (retransmitted/degraded) copy lands
                arrival += fault_delay
                if self._routed:
                    self._link_free[route_links[-1]] = arrival
                else:
                    self._wire_free[op.dst] = arrival
                fault_delay = 0.0
            if fate.duplicate:
                # the spurious copy consumes receive-side resources
                if self._routed:
                    self._link_free[route_links[-1]] = \
                        self._link_free.get(route_links[-1], 0.0) + \
                        model.eject_time(op.nbytes)
                elif model.wire_queueing:
                    self._wire_free[op.dst] += model.eject_time(op.nbytes)
                else:
                    self._rx_busy[op.dst] += model.recv_overhead(op.nbytes)
        if eager and lost:
            # every transmission attempt dropped: the buffered send still
            # completes locally, but nothing ever arrives at the receiver
            req.completion = inject
        elif eager:
            preposted = self._has_compatible_recv(op.dst, rs.rank, op.tag,
                                                  op.comm_id)
            if not preposted:
                cap = model.unexpected_capacity
                pending = self._unexpected_bytes[op.dst]
                if cap is not None and pending + op.nbytes > cap:
                    throttled = True
                charged = True
                self._unexpected_bytes[op.dst] += op.nbytes
            if not throttled:
                req.completion = inject  # local completion, buffered send
        msg = _Message(self._msg_seq, rs.rank, op.dst, op.tag, op.comm_id,
                       op.nbytes, post_time, inject,
                       "eager" if eager else "rdv", throttled, charged, req,
                       arrival=arrival, fault_delay=fault_delay)
        self._msg_seq += 1
        req.message = msg
        if lost:
            # a rendezvous send whose message is lost never completes —
            # the sender's wait will block and (absent other progress)
            # surface as a structured deadlock/starvation diagnostic
            self.messages_sent += 1
            self.bytes_sent += op.nbytes
            return req
        # cache the arrival estimate: every input (inject time, fixed
        # arrival, fault delay, throttle stall) is immutable once the
        # message is in a channel, and the operation order below matches
        # the original per-query arithmetic exactly — see
        # repro.sim.matching.arrival_est
        if eager:
            t = (arrival if arrival is not None
                 else inject + model.transit_time(op.nbytes, rs.rank,
                                                  op.dst))
            if fault_delay:
                t += fault_delay
            if throttled:
                t += model.stall_penalty(op.nbytes)
            msg.est = t
        else:
            handshake = inject + self._min_latency
            if fault_delay:
                handshake += fault_delay
            msg.rdv_ready = handshake
            msg.rdv_transit = model.transit_time(op.nbytes, rs.rank, op.dst)
        self._match.add_message(msg)
        self.messages_sent += 1
        self.bytes_sent += op.nbytes
        self._drain(op.dst, relaxed=False)
        return req

    def _routed_arrival(self, rs: _RankState, op: PostSend,
                        inject: float) -> Tuple[Tuple[str, ...], float,
                                                float]:
        """Fold an eager message through its route's per-link FIFOs.

        Store-and-forward over named links: the message reaches link *i*
        one hop latency after clearing link *i-1*, waits for the link to
        free (FIFO), then occupies it for the serialization time.  The
        final link is the destination node's ejection link, so endpoint
        delivery serializes exactly like the flat fabric's per-
        destination wire queue.  Flow control (``backlog_stall_threshold``)
        is checked against the ejection link's standing backlog, same as
        the flat path.  Returns ``(route_links, inject, arrival)`` —
        ``inject`` may have advanced if the sender was stalled.

        The fold is deliberately sequential: per-link FIFO order is part
        of the defined semantics (each start time depends on the
        previous link's), so it cannot be vectorized without changing
        results.
        """
        model = self.model
        fabric = model.fabric
        links = fabric.route(rs.rank, op.dst)
        hop = fabric.hop_latency
        ser = fabric.serialize_time(op.nbytes)
        free = self._link_free
        threshold = model.backlog_stall_threshold
        if threshold is not None:
            reach = inject + len(links) * hop
            backlog = free.get(links[-1], 0.0) - reach
            if backlog > threshold:
                # flow control: stall the sender until the destination's
                # ejection queue drains back to the window
                rs.clock += (backlog - threshold
                             + model.stall_penalty(op.nbytes))
                inject = rs.clock
        t = inject
        msgs = self._link_msgs
        busy = self._link_busy
        qdisc = self._qdisc
        if qdisc is None:
            # default FIFO: the original inline fold, byte-identical to
            # the goldens — disciplines must not perturb this path
            for link in links:
                reach = t + hop
                avail = free.get(link, 0.0)
                if avail > reach:
                    self._link_wait[link] = \
                        self._link_wait.get(link, 0.0) + (avail - reach)
                    start = avail
                else:
                    start = reach
                t = start + ser
                free[link] = t
                msgs[link] = msgs.get(link, 0) + 1
                busy[link] = busy.get(link, 0.0) + ser
            return links, inject, t
        for link in links:
            reach = t + hop
            avail = free.get(link, 0.0)
            start, drops = qdisc.admit(link, reach, ser, avail)
            if start > reach:
                self._link_wait[link] = \
                    self._link_wait.get(link, 0.0) + (start - reach)
            if drops:
                self._link_drops[link] = \
                    self._link_drops.get(link, 0) + drops
            t = start + ser
            free[link] = t
            msgs[link] = msgs.get(link, 0) + 1
            busy[link] = busy.get(link, 0.0) + ser
        return links, inject, t

    # -- receives ---------------------------------------------------------------
    def _apply_recv(self, rs: _RankState, op: PostRecv) -> Request:
        if op.src != ANY_SOURCE and op.src >= self.nranks:
            raise MPIUsageError(
                f"rank {rs.rank} receives from nonexistent rank {op.src}")
        req = Request("recv", rs.rank)
        req.peer = op.src
        pr = _PendingRecv(self._pr_seq, rs.rank, op.src, op.tag, op.comm_id,
                          rs.clock, req)
        self._pr_seq += 1
        self._match.add_recv(pr)
        self._drain(rs.rank, relaxed=False)
        return req

    # -- matching ------------------------------------------------------------
    #: arrival estimation reads the estimate cached at send time (see
    #: ``_apply_send``); kept as a static method for the scalar drain's
    #: tie-break lambda and external callers
    _arrival_est = staticmethod(arrival_est)

    def _drain(self, dst: int, relaxed: bool) -> bool:
        """Match pending receives at ``dst`` against channel messages.

        This is the *reference* (scalar-mode) drain; batch mode rebinds
        ``self._drain`` to :func:`repro.sim.matching.drain_batch`, which
        must commit the same matches in the same order.

        Receives are scanned in post order.  A directed receive matches the
        first tag-compatible message in its channel immediately (FIFO order
        makes this deterministic).  A wildcard receive matches its
        earliest-arriving candidate only when that choice is *safe* (no
        other rank could still produce an earlier arrival); an unsafe (or
        not-yet-matchable) wildcard freezes matching for later receives on
        its communicator — the (src, comm) pairs it could take a message
        from — while receives on other communicators keep matching.
        Returns True if any match was committed.

        One left-to-right pass is exhaustive: committing a match only ever
        *removes* a message and a receive, so receives already passed can
        never become matchable within the same drain, and commits happen
        in strictly increasing post order.
        """
        m = self._match
        any_progress = False
        frozen_comms: set = set()
        it, _ = m.drain_buckets(dst)
        for pr in it:
            if pr.matched or pr.comm_id in frozen_comms:
                continue
            if pr.src == ANY_SOURCE:
                cands = m.candidates_for(pr)
                if not cands:
                    # nothing available yet; this wildcard blocks any
                    # later recv on its communicator from stealing what
                    # it might match
                    frozen_comms.add(pr.comm_id)
                    continue
                best = min(cands, key=lambda msg: (
                    arrival_est(msg, pr.post_time), msg.src, msg.seq))
                if not relaxed:
                    arr = arrival_est(best, pr.post_time)
                    if arr > self._horizon(dst):
                        self._deferred_dsts.add(dst)
                        frozen_comms.add(pr.comm_id)
                        continue
                self._commit_match(pr, best)
                any_progress = True
            else:
                msg = m.first_compatible_in_channel(
                    (pr.src, dst, pr.comm_id), pr.tag)
                if msg is None:
                    continue
                self._commit_match(pr, msg)
                any_progress = True
        return any_progress

    def _commit_match(self, pr: _PendingRecv, msg: _Message) -> None:
        self.matches_committed += 1
        model = self.model
        arrival = arrival_est(msg, pr.post_time)
        # message processing starts when the data is here, the receive is
        # posted, and the receiver's (serial) message processor is free
        start = max(pr.post_time, arrival, self._rx_busy[pr.rank])
        completion = start
        if msg.protocol == "eager" and arrival < pr.post_time:
            completion += model.unexpected_copy(msg.nbytes)
        completion += model.recv_overhead(msg.nbytes)
        self._rx_busy[pr.rank] = completion
        pr.rreq.completion = completion
        pr.rreq.status = Status(msg.src, msg.tag, msg.nbytes)
        pr.rreq.message = msg
        if pr.rreq.waiter is not None:
            self._dirty.add(pr.rreq.waiter)
        # sender-side completion for rendezvous / throttled sends
        if msg.sreq.completion is None:
            msg.sreq.completion = completion
            msg.sreq.status = Status(msg.src, msg.tag, msg.nbytes)
            if msg.sreq.waiter is not None:
                self._dirty.add(msg.sreq.waiter)
        if msg.charged:
            self._unexpected_bytes[msg.dst] -= msg.nbytes
        m = self._match
        m.retire_message(msg)
        m.retire_recv(pr)

    # -- waits ----------------------------------------------------------------
    def _try_waitall(self, rs: _RankState, requests, relaxed: bool):
        if not all(r.complete for r in requests):
            return None
        if requests:
            rs.clock = max(rs.clock, max(r.completion for r in requests))
        return [r.status for r in requests]

    def _try_waitany(self, rs: _RankState, requests, relaxed: bool):
        done = [(r.completion, i) for i, r in enumerate(requests) if r.complete]
        if not done:
            return None
        t, i = min(done)
        if not relaxed and not all(r.complete for r in requests):
            # an incomplete request might still finish earlier
            if t > self._horizon(rs.rank):
                return None
        rs.clock = max(rs.clock, t)
        return (i, requests[i].status)

    # -- collectives ------------------------------------------------------------
    def _apply_collective(self, rs: _RankState, op: Collective):
        if rs.rank not in op.group:
            raise MPIUsageError(
                f"rank {rs.rank} called collective on group excluding it")
        seq = rs.coll_seq.get(op.comm_id, 0)
        rs.coll_seq[op.comm_id] = seq + 1
        key = (op.comm_id, seq)
        inst = self._coll.get(key)
        if inst is None:
            inst = _CollInstance(op.key, op.group, op.nbytes)
            self._coll[key] = inst
        else:
            if inst.group != op.group or inst.key != op.key:
                raise MPIUsageError(
                    f"collective mismatch on comm {op.comm_id} seq {seq}: "
                    f"{inst.key}/{inst.group} vs {op.key}/{op.group}")
            inst.nbytes = max(inst.nbytes, op.nbytes)
        inst.arrivals[rs.rank] = rs.clock
        inst.nleft -= 1  # kept in step for the batch executor's countdown
        if len(inst.arrivals) == len(inst.group):
            start = max(inst.arrivals.values())
            inst.completion = start + self.model.collective_cost(
                inst.key, len(inst.group), inst.nbytes)
            # the caller resumes immediately; blocked participants are
            # woken through the dirty set on the next scheduler pass
            for r in inst.arrivals:
                if r != rs.rank:
                    self._dirty.add(r)
            rs.clock = inst.completion
            return None
        rs.blocked_kind = "collective"
        rs.blocked_data = inst
        return _BLOCK

    # -- resumption -------------------------------------------------------------
    def _try_resume(self, rs: _RankState, relaxed: bool) -> bool:
        """Attempt to unblock one rank; True if it became READY."""
        if rs.blocked_kind == "waitall":
            res = self._try_waitall(rs, rs.blocked_data, relaxed)
            if res is None:
                return False
            rs.pending_value = res
        elif rs.blocked_kind == "waitany":
            res = self._try_waitany(rs, rs.blocked_data, relaxed)
            if res is None:
                return False
            rs.pending_value = res
        elif rs.blocked_kind == "collective":
            inst = rs.blocked_data
            if inst.completion is None:
                return False
            rs.clock = inst.completion
            rs.pending_value = None
        else:  # pragma: no cover - defensive
            raise AssertionError(rs.blocked_kind)
        self._make_ready(rs)
        return True

    def _resume_dirty(self) -> None:
        """Wake blocked ranks flagged by completions since the last pass.

        A WaitAny rank holding a complete request stays dirty even when
        it cannot resume yet: it is waiting on the safety horizon, which
        moves whenever any other rank advances, so it must be polled.
        Everything else leaves the dirty set until a new completion
        re-flags it.
        """
        for rank in sorted(self._dirty):
            rs = self._ranks[rank]
            if rs.state != BLOCKED:
                self._dirty.discard(rank)
                continue
            if self._try_resume(rs, relaxed=False):
                self._dirty.discard(rank)
            elif not (rs.blocked_kind == "waitany"
                      and any(r.complete for r in rs.blocked_data)):
                self._dirty.discard(rank)

    def _resume_resumable(self, relaxed: bool) -> bool:
        """Full sweep over all blocked ranks (the rare all-blocked path)."""
        progress = False
        for rs in self._ranks:
            if rs.state != BLOCKED:
                continue
            if self._try_resume(rs, relaxed):
                self._dirty.discard(rs.rank)
                progress = True
        return progress

    def _relaxed_progress(self) -> bool:
        # 1. deferred wildcard matches, earliest arrival first
        for dst in sorted(self._pending_recvs):
            if self._drain(dst, relaxed=True):
                self.deferred_commits += 1
                return True
        # 2. waits resumable without the safety horizon
        if self._resume_resumable(relaxed=True):
            return True
        return False

    # -- faults ------------------------------------------------------------
    def _crash_rank(self, rs: _RankState) -> None:
        """Rank ``rs`` hits its plan crash time: it stops executing, its
        generator is closed, and anything it owes other ranks is simply
        never produced (they starve gracefully, see
        :meth:`_starve_blocked`)."""
        rs.state = DONE
        self._done_count += 1
        self.crashed_ranks.append(rs.rank)
        rs.gen.close()

    def _starve_blocked(self) -> None:
        """End a run in which the remaining blocked ranks wait on crashed
        peers.  Builds the structured diagnostic first (the blocked set
        is the interesting part), then retires every blocked rank at its
        current clock so the run terminates with a partial result."""
        self.diagnostic = self._build_diagnostic()
        for rs in self._ranks:
            if rs.state == BLOCKED:
                rs.state = DONE
                self._done_count += 1
                self.starved_ranks.append(rs.rank)
                rs.gen.close()

    # -- termination ------------------------------------------------------------
    def _on_rank_done(self, rs: _RankState) -> None:
        # A finished rank cannot post new sends; wildcard horizons improve.
        if self._pending_live[rs.rank]:
            raise MPIUsageError(
                f"rank {rs.rank} finished with "
                f"{self._pending_live[rs.rank]} unmatched receives")

    def _describe_block(self, rs: _RankState) -> str:
        if rs.blocked_kind == "collective":
            inst = rs.blocked_data
            missing = [r for r in inst.group if r not in inst.arrivals]
            return f"collective {inst.key} awaiting ranks {missing}"
        if rs.blocked_kind in ("waitall", "waitany"):
            pending = [r for r in rs.blocked_data if not r.complete]
            kinds = ", ".join(f"{r.kind}" for r in pending[:4])
            return f"{rs.blocked_kind} on {len(pending)} requests ({kinds})"
        return str(rs.blocked_kind)

    def _waits_on(self, rs: _RankState) -> Tuple[int, ...]:
        """Ranks whose progress could unblock ``rs`` (wait-for edges)."""
        waits: set = set()
        if rs.blocked_kind == "collective":
            inst = rs.blocked_data
            waits.update(r for r in inst.group if r not in inst.arrivals)
        elif rs.blocked_kind in ("waitall", "waitany"):
            for req in rs.blocked_data:
                if req.complete:
                    continue
                if req.peer == ANY_SOURCE:
                    # a wildcard could be satisfied by any live rank
                    waits.update(r.rank for r in self._ranks
                                 if r.state != DONE)
                elif req.peer is not None:
                    waits.add(req.peer)
        waits.discard(rs.rank)
        return tuple(sorted(waits))

    def _build_diagnostic(self) -> DeadlockDiagnostic:
        """Structured wait-for picture of the currently blocked ranks."""
        blocked: Dict[int, BlockedOp] = {}
        for rs in self._ranks:
            if rs.state != BLOCKED:
                continue
            blocked[rs.rank] = BlockedOp(
                rank=rs.rank, kind=rs.blocked_kind or "?",
                detail=self._describe_block(rs),
                waits_on=self._waits_on(rs))
        cycle = find_cycle({r: b.waits_on for r, b in blocked.items()})
        return DeadlockDiagnostic(blocked=blocked, cycle=cycle,
                                  crashed=tuple(self.crashed_ranks),
                                  time=self.total_time)

    def _raise_deadlock(self) -> None:
        self.diagnostic = self._build_diagnostic()
        blocked = {rs.rank: self._describe_block(rs)
                   for rs in self._ranks if rs.state == BLOCKED}
        raise SimDeadlockError(blocked, diagnostic=self.diagnostic)
