"""Execution layer of the engine core: the cohort-batched main loop.

The reference (scalar) executor dispatches one yielded op at a time
through ``Engine._step`` / ``Engine._apply`` — two Python calls plus an
``isinstance`` chain per op.  :func:`run_batch` replaces that with a
single flattened loop that processes each runnable rank's *op cohort*
(the run of operations it issues before blocking — all at the same
scheduler timestamp) in one frame:

* class-identity dispatch on the concrete op classes with every hot
  container and model query bound to a local;
* the fast-path send/receive handlers inline the protocol arithmetic
  for the common regime (no fault injection, flat fabric, no wire
  queueing, no overload accounting) and cache each message's fixed
  arrival estimate for the matching layer; any other regime falls back
  to the engine's reference handlers mid-loop;
* collective completion evaluates ``max`` over the whole
  ``_CollInstance`` arrival cohort at once (numpy-reduced for large
  groups — float ``max`` is associative, so the reduction order cannot
  change the result);
* dirty-set wakeup is folded into the loop top with the per-kind
  resume arithmetic inlined.

Byte-identity discipline: every float operation happens in the same
order as the reference executor, counters (``steps`` etc.) are bumped
at the same program points, and anything the fast path cannot mirror
exactly (fault fates, routed fabrics, wire queueing, overload) is
delegated to the very same reference code.  Runs with crash faults use
the reference loop outright (the per-op crash check is structural).
The golden suites under ``tests/sim/golden/`` and the Hypothesis
equivalence tests pin this bit-for-bit.

:func:`run_profiled` is the instrumented variant behind
``repro pipeline --profile``: the reference loop structure with
per-phase (schedule/match/execute/fabric) wall-time attribution.
"""

from __future__ import annotations

import heapq
import time
from typing import Dict, Optional

from repro.errors import MPIUsageError, SimulationError
from repro.sim.matching import _Message, _PendingRecv
from repro.sim.network import FlatFabric, NetworkModel
from repro.sim.ops import (ANY_SOURCE, Collective, Compute, PostRecv,
                           PostSend, Test, WaitAll, WaitAny)
from repro.sim.requests import Request, Status
from repro.sim.sched import BLOCKED, DONE, READY

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is part of the toolchain
    _np = None

#: sentinel returned by the generic ``Engine._apply`` when a rank blocks
_BLOCK = object()

#: group size at which the numpy reduction overtakes builtin ``max``
#: (measured: ``np.fromiter`` over dict values carries ~4-5us of fixed
#: overhead, so the builtin left fold wins until about a thousand ranks)
_NP_GROUP_MIN = 1024


class _CollInstance:
    __slots__ = ("key", "group", "nbytes", "arrivals", "completion",
                 "nleft")

    def __init__(self, key, group, nbytes):
        self.key = key
        self.group = group
        self.nbytes = nbytes
        self.arrivals: Dict[int, float] = {}
        self.completion: Optional[float] = None
        #: countdown of group members yet to arrive; both executors
        #: decrement it, so ``nleft == len(group) - len(arrivals)``
        #: holds regardless of which path handled each arrival
        self.nleft = len(group)


def _group_start(arrivals: Dict[int, float]) -> float:
    """Latest arrival clock of a completed collective cohort.

    Vectorized for large groups: float ``max`` is associative and
    commutative (rank clocks are never NaN), so the numpy reduction is
    bit-identical to the builtin left fold.
    """
    if _np is not None and len(arrivals) >= _NP_GROUP_MIN:
        return float(_np.max(_np.fromiter(arrivals.values(),
                                          dtype=_np.float64,
                                          count=len(arrivals))))
    return max(arrivals.values())


def run_batch(eng) -> None:
    """Drive ``eng`` (an :class:`repro.sim.engine.Engine`) to completion
    with the cohort-batched executor.  Caller holds the run span and
    flushes counters; this function owns the loop."""
    ranks = eng._ranks
    nranks = eng.nranks
    sched = eng._sched
    ready = sched.ready_heap
    dirty = sched.dirty
    dirty_add = dirty.add
    dirty_discard = dirty.discard
    deferred = sched.deferred_dsts
    heappush = heapq.heappush
    heappop = heapq.heappop
    max_steps = eng.max_steps
    # int sentinel instead of +inf keeps the per-op limit check an
    # int/int compare; no run gets anywhere near 2**62 steps
    step_limit = max_steps if max_steps is not None else (1 << 62)
    faults = eng._faults
    no_faults = faults is None

    model = eng.model
    match = eng._match
    drain = eng._drain
    # deferral-memo fast path, inlined from the top of drain_batch: a
    # valid memo still past the horizon means the drain would be a
    # no-op re-defer, so skip the call outright
    defer_memo = match.defer_memo
    defer_version = match.defer_version
    horizon = eng._horizon
    deferred_add = deferred.add
    add_message = match.add_message
    add_recv = match.add_recv
    has_recv = match.has_compatible_recv
    unexpected = match.unexpected_bytes
    send_overhead = model.send_overhead
    stall_penalty = model.stall_penalty
    transit = model.transit_time
    coll_cost = model.collective_cost
    eager_threshold = model.eager_threshold
    unexpected_capacity = model.unexpected_capacity
    min_latency = eng._min_latency
    colls = eng._coll

    # fast sends only in the regime whose arithmetic the inline path
    # mirrors exactly; everything else goes through the reference handler
    fast_send = (no_faults and not eng._routed and not model.wire_queueing
                 and model.overload_drain_rate is None)
    fabric = getattr(model, "fabric", None)
    flat = (type(fabric) is FlatFabric
            and type(model).transit_time is NetworkModel.transit_time)
    if flat:
        fab_lat = fabric.latency
        fab_bw = fabric.bandwidth

    steps = 0
    messages_sent = 0
    bytes_sent = 0
    msg_seq = eng._msg_seq
    pr_seq = eng._pr_seq

    # membership memo for iterative collectives: programs yield the same
    # group tuple every iteration (ops.Collective memoizes the sorted
    # form by identity), so the O(|group|) `rank in tuple` scan collapses
    # to one frozenset lookup after the first instance
    memo_group = None
    memo_member = frozenset()

    # resume queue: dirty-set resumes arrive in ascending rank order, and
    # for a completed collective all 63 peers resume at the same clock —
    # already sorted by the heap's (clock, rank) key.  Appending them to
    # a plain list consumed by index skips ~two heap sifts per resume;
    # the pop below merges the queue front against the heap's valid top,
    # so pop order is exactly the reference heap order.  Any resume that
    # would break the queue's sortedness goes to the heap instead.
    rq = []
    rq_append = rq.append
    rq_i = 0

    # non-canonical schedule policy: cohort ordering routes through
    # sched.pop_ready_policy, and the resume-queue shortcut is disabled
    # (its front-of-queue pops would bypass the policy's cohort
    # collection).  The defer-memo fast paths stay valid: the policy
    # drain never writes the memo, so the memo lookups above never hit.
    policy_tie = None if eng.policy.canonical else eng.policy

    try:
        while True:
            steps += 1
            if steps > step_limit:
                raise SimulationError(
                    f"exceeded max_steps={max_steps}; likely livelock")
            if deferred:
                for dst in sorted(deferred):
                    memo = defer_memo.get(dst)
                    if memo is not None and \
                            memo[1] == defer_version[dst] and \
                            memo[0] > horizon(dst):
                        continue  # still futile; stays deferred
                    deferred.discard(dst)
                    drain(dst, False)
            if dirty:
                # inline _resume_dirty: same sorted order, same per-kind
                # resume arithmetic as Engine._try_resume/_make_ready.
                # Nothing inside a resume mutates the dirty set, so the
                # per-rank discards collapse into one clear at the end
                # (waitany ranks that must stay dirty are re-added).
                stays = None
                for rank in sorted(dirty):
                    r = ranks[rank]
                    if r.state != BLOCKED:
                        continue
                    bk = r.blocked_kind
                    if bk == "collective":
                        comp = r.blocked_data.completion
                        if comp is not None:
                            r.clock = comp
                            r.pending_value = None
                            r.state = READY
                            r.blocked_kind = None
                            r.blocked_data = None
                            entry = (comp, rank)
                            if policy_tie is None and \
                                    (not rq or rq[-1] <= entry):
                                rq_append(entry)
                            else:
                                heappush(ready, entry)
                    elif bk == "waitall":
                        reqs = r.blocked_data
                        for q in reqs:
                            if q.completion is None:
                                break
                        else:
                            if reqs:
                                mx = max(q.completion for q in reqs)
                                if mx > r.clock:
                                    r.clock = mx
                            r.pending_value = [q.status for q in reqs]
                            r.state = READY
                            r.blocked_kind = None
                            r.blocked_data = None
                            entry = (r.clock, rank)
                            if policy_tie is None and \
                                    (not rq or rq[-1] <= entry):
                                rq_append(entry)
                            else:
                                heappush(ready, entry)
                    else:
                        # waitany needs the safety horizon: use the
                        # reference resume, with its stay-dirty rule
                        if not eng._try_resume(r, False) and \
                                r.blocked_kind == "waitany" and \
                                any(q.completion is not None
                                    for q in r.blocked_data):
                            if stays is None:
                                stays = [rank]
                            else:
                                stays.append(rank)
                dirty.clear()
                if stays is not None:
                    dirty.update(stays)
            # inline pop_ready: two-way merge of the resume queue's valid
            # front and the lazy-deletion heap's valid top — identical
            # (clock, rank) order to the reference single-heap pop
            rs = None
            if policy_tie is not None:
                # the resume queue is empty (appends gated off above),
                # so the policy pop sees the full same-clock cohort
                rs = sched.pop_ready_policy(policy_tie)
            else:
                qe = None
                qlen = len(rq)
                while rq_i < qlen:
                    qe = rq[rq_i]
                    qr = ranks[qe[1]]
                    if qr.state == READY and qr.clock == qe[0]:
                        break
                    rq_i += 1
                else:
                    qe = None
                    if qlen:
                        del rq[:]
                        rq_i = 0
                while ready:
                    he = ready[0]
                    hr = ranks[he[1]]
                    if hr.state == READY and hr.clock == he[0]:
                        break
                    heappop(ready)
                if qe is not None and (not ready or qe <= ready[0]):
                    rs = qr
                    rq_i += 1
                    if rq_i == len(rq):
                        del rq[:]
                        rq_i = 0
                elif ready:
                    heappop(ready)
                    rs = hr
            if rs is None:
                if eng._done_count == nranks:
                    break
                eng.deadlock_checks += 1
                if eng._relaxed_progress():
                    continue
                if eng.crashed_ranks:
                    eng._starve_blocked()
                    break
                eng._raise_deadlock()
            # -- op cohort: run this rank's generator until it blocks ----
            # Consecutive PostRecv drains coalesce into one flush: no
            # clock moves and no other rank observes state mid-cohort,
            # and one drain walks the same receives in the same post
            # order with the same horizon, so the flush is bit-identical
            # to draining after every post.  The flush must land before
            # anything that reads completion state: WaitAll / WaitAny /
            # Test evaluation, a send to self (its unexpected-buffer
            # charge checks our own receive queue), the generic
            # fallback, and rank completion.
            gen_send = rs.gen.send
            value = rs.pending_value
            rs.pending_value = None
            recv_pending = False
            while True:
                steps += 1
                if steps > step_limit:
                    raise SimulationError(
                        f"exceeded max_steps={max_steps}; likely livelock")
                try:
                    op = gen_send(value)
                except StopIteration:
                    if recv_pending:
                        recv_pending = False
                        drain(rs.rank, False)
                    rs.state = DONE
                    eng._done_count += 1
                    eng._on_rank_done(rs)
                    break
                cls = op.__class__
                if cls is Compute:
                    if no_faults:
                        rs.clock += op.duration
                    else:
                        rs.clock += op.duration * \
                            faults.compute_factor(rs.rank)
                    value = None
                    continue
                if cls is PostSend:
                    if recv_pending and op.dst == rs.rank:
                        recv_pending = False
                        drain(rs.rank, False)
                    if not fast_send:
                        value = eng._apply_send(rs, op)
                        continue
                    dst = op.dst
                    if dst >= nranks:
                        raise MPIUsageError(
                            f"rank {rs.rank} sends to nonexistent "
                            f"rank {dst}")
                    nbytes = op.nbytes
                    req = Request("send", rs.rank)
                    req.peer = dst
                    post_time = rs.clock
                    inject = post_time + send_overhead(nbytes)
                    rs.clock = inject
                    if nbytes <= eager_threshold:
                        throttled = False
                        charged = False
                        if not has_recv(dst, rs.rank, op.tag, op.comm_id):
                            if unexpected_capacity is not None and \
                                    unexpected[dst] + nbytes > \
                                    unexpected_capacity:
                                throttled = True
                            charged = True
                            unexpected[dst] += nbytes
                        if not throttled:
                            req.completion = inject
                        msg = _Message(msg_seq, rs.rank, dst, op.tag,
                                       op.comm_id, nbytes, post_time,
                                       inject, "eager", throttled,
                                       charged, req)
                        if flat:
                            t = inject + (fab_lat + nbytes / fab_bw)
                        else:
                            t = inject + transit(nbytes, rs.rank, dst)
                        if throttled:
                            t += stall_penalty(nbytes)
                        msg.est = t
                    else:
                        msg = _Message(msg_seq, rs.rank, dst, op.tag,
                                       op.comm_id, nbytes, post_time,
                                       inject, "rdv", False, False, req)
                        msg.rdv_ready = inject + min_latency
                        msg.rdv_transit = (fab_lat + nbytes / fab_bw) \
                            if flat else transit(nbytes, rs.rank, dst)
                    msg_seq += 1
                    req.message = msg
                    add_message(msg)
                    messages_sent += 1
                    bytes_sent += nbytes
                    memo = defer_memo.get(dst)
                    if memo is not None and \
                            memo[1] == defer_version[dst] and \
                            memo[0] > horizon(dst):
                        deferred_add(dst)
                    else:
                        drain(dst, False)
                    value = req
                    continue
                if cls is PostRecv:
                    src = op.src
                    if src != ANY_SOURCE and src >= nranks:
                        raise MPIUsageError(
                            f"rank {rs.rank} receives from nonexistent "
                            f"rank {src}")
                    req = Request("recv", rs.rank)
                    req.peer = src
                    pr = _PendingRecv(pr_seq, rs.rank, src, op.tag,
                                      op.comm_id, rs.clock, req)
                    pr_seq += 1
                    add_recv(pr)
                    recv_pending = True
                    value = req
                    continue
                if cls is WaitAll:
                    if recv_pending:
                        recv_pending = False
                        drain(rs.rank, False)
                    reqs = op.requests
                    for q in reqs:
                        if q.completion is None:
                            break
                    else:
                        if reqs:
                            mx = max(q.completion for q in reqs)
                            if mx > rs.clock:
                                rs.clock = mx
                        value = [q.status for q in reqs]
                        continue
                    rs.blocked_kind = "waitall"
                    rs.blocked_data = reqs
                    for q in reqs:
                        if q.completion is None:
                            q.waiter = rs.rank
                    rs.state = BLOCKED
                    break
                if cls is Collective:
                    if recv_pending:
                        recv_pending = False
                        drain(rs.rank, False)
                    group = op.group
                    rank = rs.rank
                    if group is not memo_group:
                        memo_group = group
                        memo_member = frozenset(group)
                    if rank not in memo_member:
                        raise MPIUsageError(
                            f"rank {rank} called collective on group "
                            f"excluding it")
                    cseq = rs.coll_seq
                    seq = cseq.get(op.comm_id, 0)
                    cseq[op.comm_id] = seq + 1
                    ckey = (op.comm_id, seq)
                    inst = colls.get(ckey)
                    if inst is None:
                        inst = _CollInstance(op.key, group, op.nbytes)
                        colls[ckey] = inst
                    else:
                        if (inst.group is not group
                                and inst.group != group) \
                                or inst.key != op.key:
                            raise MPIUsageError(
                                f"collective mismatch on comm "
                                f"{op.comm_id} seq {seq}: "
                                f"{inst.key}/{inst.group} vs "
                                f"{op.key}/{op.group}")
                        if op.nbytes > inst.nbytes:
                            inst.nbytes = op.nbytes
                    arrivals = inst.arrivals
                    arrivals[rank] = rs.clock
                    nleft = inst.nleft - 1
                    inst.nleft = nleft
                    if not nleft:
                        comp = _group_start(arrivals) + coll_cost(
                            inst.key, len(inst.group), inst.nbytes)
                        inst.completion = comp
                        # blocked participants wake through the dirty
                        # set on the next loop top (same as reference:
                        # resuming them here would advance their clocks
                        # early and shift wildcard horizons).  Bulk
                        # update, preserving any prior membership of
                        # the completing rank itself.
                        had = rank in dirty
                        dirty.update(arrivals)
                        if not had:
                            dirty_discard(rank)
                        rs.clock = comp
                        value = None
                        continue
                    rs.blocked_kind = "collective"
                    rs.blocked_data = inst
                    rs.state = BLOCKED
                    break
                if cls is WaitAny:
                    if recv_pending:
                        recv_pending = False
                        drain(rs.rank, False)
                    reqs = op.requests
                    done = [(q.completion, i)
                            for i, q in enumerate(reqs)
                            if q.completion is not None]
                    if done:
                        t, i = min(done)
                        if len(done) == len(reqs) or \
                                t <= eng._horizon(rs.rank):
                            if t > rs.clock:
                                rs.clock = t
                            value = (i, reqs[i].status)
                            continue
                    rs.blocked_kind = "waitany"
                    rs.blocked_data = reqs
                    any_complete = False
                    for q in reqs:
                        if q.completion is None:
                            q.waiter = rs.rank
                        else:
                            any_complete = True
                    if any_complete:
                        dirty_add(rs.rank)
                    rs.state = BLOCKED
                    break
                if cls is Test:
                    if recv_pending:
                        recv_pending = False
                        drain(rs.rank, False)
                    q = op.request
                    comp = q.completion
                    if comp is not None and comp <= rs.clock:
                        value = (True, q.status)
                    else:
                        value = (False, None)
                    continue
                # unknown concrete class: op subclasses and junk go
                # through the reference dispatcher (isinstance checks,
                # usage errors).  Sync the locally-tracked counters so
                # the reference handlers see and leave consistent state.
                if recv_pending:
                    recv_pending = False
                    drain(rs.rank, False)
                if fast_send:
                    eng._msg_seq = msg_seq
                eng._pr_seq = pr_seq
                eng.messages_sent += messages_sent
                eng.bytes_sent += bytes_sent
                messages_sent = 0
                bytes_sent = 0
                value = eng._apply(rs, op)
                if fast_send:
                    msg_seq = eng._msg_seq
                pr_seq = eng._pr_seq
                if value is _BLOCK:
                    rs.state = BLOCKED
                    break
    finally:
        eng.steps += steps
        eng.messages_sent += messages_sent
        eng.bytes_sent += bytes_sent
        if fast_send:
            eng._msg_seq = msg_seq
        eng._pr_seq = pr_seq


def run_profiled(eng) -> None:
    """Reference-structured loop with per-phase wall-time attribution.

    Phases (wall seconds, exposed as ``engine.profile.<phase>_s``):

    * ``schedule`` — deferred-drain bookkeeping, dirty-set wakeup and
      ready-heap pops at the loop top (minus nested match time);
    * ``match`` — every ``Engine._drain`` call (candidate enumeration,
      horizon checks, commits), wherever it is triggered from;
    * ``fabric`` — routed per-link FIFO folds (``_routed_arrival``);
    * ``execute`` — generator stepping and op handling, minus the
      nested match/fabric time.

    Timer placement is the only difference from the reference loop:
    the same ``_step``/``_drain`` code runs, so results stay
    byte-identical.  Totals land on ``eng.profile_phases`` and are
    published by ``Engine._flush_counters``.
    """
    perf = time.perf_counter
    acc = {"schedule": 0.0, "match": 0.0, "execute": 0.0, "fabric": 0.0}
    nested = [0.0]

    real_drain = eng._drain

    def timed_drain(dst, relaxed):
        t0 = perf()
        try:
            return real_drain(dst, relaxed)
        finally:
            dt = perf() - t0
            acc["match"] += dt
            nested[0] += dt

    eng._drain = timed_drain

    real_routed = eng._routed_arrival

    def timed_routed(rs, op, inject):
        t0 = perf()
        try:
            return real_routed(rs, op, inject)
        finally:
            dt = perf() - t0
            acc["fabric"] += dt
            nested[0] += dt

    eng._routed_arrival = timed_routed

    try:
        while True:
            eng.steps += 1
            if eng.max_steps is not None and eng.steps > eng.max_steps:
                raise SimulationError(
                    f"exceeded max_steps={eng.max_steps}; likely livelock")
            t0 = perf()
            nested[0] = 0.0
            if eng._deferred_dsts:
                for dst in sorted(eng._deferred_dsts):
                    eng._deferred_dsts.discard(dst)
                    eng._drain(dst, False)
            if eng._dirty:
                eng._resume_dirty()
            rs = eng._pop_ready()
            acc["schedule"] += perf() - t0 - nested[0]
            if rs is not None:
                t1 = perf()
                nested[0] = 0.0
                eng._step(rs)
                acc["execute"] += perf() - t1 - nested[0]
                continue
            if eng._done_count == eng.nranks:
                break
            eng.deadlock_checks += 1
            if eng._relaxed_progress():
                continue
            if eng.crashed_ranks:
                eng._starve_blocked()
                break
            eng._raise_deadlock()
    finally:
        eng.profile_phases = dict(acc)
