"""Scheduler policies: the engine's tie-break decision points, pluggable.

The engine makes exactly two kinds of *choices* while simulating; every
other step is forced by MPI semantics and virtual time:

* **wildcard match selection** — which candidate message an ANY_SOURCE
  receive takes when several channels hold a compatible message
  (``Engine._drain`` / :func:`repro.sim.matching.drain_batch`);
* **cohort ordering** — which rank runs next when several runnable
  ranks share the same virtual clock
  (:meth:`repro.sim.sched.Scheduler.pop_ready`).

The canonical policy pins both to one deterministic order (earliest
arrival estimate, then source, then sequence number; lowest rank first)
— that is the bit-deterministic contract the golden suites pin, and the
single legal schedule every run before this layer explored.  Real MPI
runtimes promise neither order.  A :class:`SchedulerPolicy` makes the
choice points explicit so the schedule-space fuzzer (``repro fuzz``,
see ``docs/FUZZING.md``) can explore *other* legal schedules:

* ``canonical`` — byte-identical to the engine without the layer (the
  canonical code paths are untouched; this class exists so callers can
  hold a policy object uniformly);
* ``random`` — seeded uniform choice over the legal candidates at each
  decision point, simsched-style;
* ``adversarial-delay`` — the wildcard match that maximizes receiver
  wait (the last-arriving candidate), with seeded cohort ordering so
  different seeds still explore distinct interleavings.

Determinism contract: a (policy, seed) pair fully determines the run.
RNG draws happen only at *actual* choice points — a singleton candidate
set or cohort consumes no draw, and deferral/freeze decisions (which
stay canonical: they gate *when* a wildcard may match, not *what* it
matches) consume no draw — so the scalar and batch executors, which
reach the same choice points in the same order, replay the same draw
sequence and stay equivalent under any seed.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.sim.matching import _Message, _PendingRecv, arrival_est
from repro.sim.ops import ANY_SOURCE

#: the recognized policy names, in CLI/choices order
POLICIES = ("adversarial-delay", "canonical", "random")

#: policies that accept (and require, to be explored) a seed
SEEDED_POLICIES = ("adversarial-delay", "random")


class SchedulerPolicy:
    """One rule for the engine's two tie-break decision points.

    Subclasses implement :meth:`choose_match` (wildcard candidate
    selection) and :meth:`pick_rank` (same-clock cohort ordering).
    ``canonical`` is True only for :class:`CanonicalPolicy`, whose code
    paths the engine never routes through this object — the flag is how
    the engine decides whether to install the policy drain/pop at all.
    """

    name = "policy"
    canonical = False

    def choose_match(self, pr: _PendingRecv,
                     cands: Sequence[_Message]) -> _Message:
        """The candidate message ``pr`` (an ANY_SOURCE receive) matches.

        ``cands`` is the reference candidate enumeration: the first
        tag-compatible unmatched message of each eligible channel, in
        ascending source order (see ``MatchIndex.candidates_for``) —
        every element is a legal match under MPI semantics.
        """
        raise NotImplementedError

    def pick_rank(self, ranks: List[int]) -> int:
        """The rank that runs next out of ``ranks`` — the runnable ranks
        tied at the smallest virtual clock, in ascending order."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human rendering for reports and logs."""
        return self.name


class CanonicalPolicy(SchedulerPolicy):
    """Today's deterministic order (earliest arrival, lowest rank).

    The engine never calls these methods on its hot paths — canonical
    runs keep the original drain/pop code verbatim — but they implement
    the same order so harnesses can drive any policy uniformly.
    """

    name = "canonical"
    canonical = True

    def choose_match(self, pr, cands):
        """Earliest (arrival estimate, source, sequence) candidate."""
        return min(cands, key=lambda msg: (
            arrival_est(msg, pr.post_time), msg.src, msg.seq))

    def pick_rank(self, ranks):
        """Lowest rank first."""
        return ranks[0]


class RandomPolicy(SchedulerPolicy):
    """Seeded uniform choice at every decision point (simsched-style)."""

    name = "random"

    def __init__(self, seed: int):
        self.seed = seed
        self._rng = random.Random(seed)

    def choose_match(self, pr, cands):
        """Uniform over the legal candidates; no draw for singletons."""
        if len(cands) == 1:
            return cands[0]
        return self._rng.choice(cands)

    def pick_rank(self, ranks):
        """Uniform over the tied ranks; no draw for singletons."""
        if len(ranks) == 1:
            return ranks[0]
        return self._rng.choice(ranks)

    def describe(self):
        """Name plus the seed that reproduces the run."""
        return f"{self.name}(seed={self.seed})"


class AdversarialDelayPolicy(SchedulerPolicy):
    """Maximize receiver wait: always match the last-arriving candidate.

    The match choice is deterministic (latest ``(est, src, seq)``), so
    the seed only drives cohort ordering — that is what lets different
    seeds reach different wildcard races to be adversarial *about*.
    """

    name = "adversarial-delay"

    def __init__(self, seed: int):
        self.seed = seed
        self._rng = random.Random(seed)

    def choose_match(self, pr, cands):
        """Latest (arrival estimate, source, sequence) candidate."""
        return max(cands, key=lambda msg: (
            arrival_est(msg, pr.post_time), msg.src, msg.seq))

    def pick_rank(self, ranks):
        """Seeded uniform over the tied ranks; no draw for singletons."""
        if len(ranks) == 1:
            return ranks[0]
        return self._rng.choice(ranks)

    def describe(self):
        """Name plus the seed that reproduces the run."""
        return f"{self.name}(seed={self.seed})"


def resolve_policy(policy=None,
                   schedule_seed: Optional[int] = None) -> SchedulerPolicy:
    """A fresh :class:`SchedulerPolicy` from a spec, validated up front.

    ``policy`` may be None (canonical), a policy name from
    :data:`POLICIES`, or an already-built :class:`SchedulerPolicy`
    (passed through; ``schedule_seed`` must then be None).  Invalid
    names, a seed on the canonical policy, and a missing/non-int seed on
    a seeded policy all raise :class:`ValueError` here — at construction
    — rather than deep inside a run.  A *fresh* instance is returned for
    named seeded policies because the RNG is per-run state.
    """
    if isinstance(policy, SchedulerPolicy):
        if schedule_seed is not None:
            raise ValueError(
                "schedule_seed cannot be combined with an already-built "
                f"policy object ({policy.describe()}); seed the policy "
                "at construction instead")
        return policy
    if policy is None:
        policy = "canonical"
    if not isinstance(policy, str) or policy not in POLICIES:
        raise ValueError(
            f"unknown schedule policy {policy!r}: expected one of "
            f"{POLICIES} (see docs/FUZZING.md)")
    if policy == "canonical":
        if schedule_seed is not None:
            raise ValueError(
                "schedule_seed is meaningless for the canonical policy; "
                f"pick a seeded policy from {SEEDED_POLICIES} or drop "
                "the seed")
        return CanonicalPolicy()
    seed = 0 if schedule_seed is None else schedule_seed
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise ValueError(
            f"schedule_seed must be an int, got {schedule_seed!r}")
    if policy == "random":
        return RandomPolicy(seed)
    return AdversarialDelayPolicy(seed)


def drain_policy(self, dst: int, relaxed: bool) -> bool:
    """Policy-mode drain: match pending receives at ``dst``.

    Bound as ``Engine._drain`` (for *both* executors) when the engine
    runs under a non-canonical policy; ``self`` is the engine.  The
    structure is the reference scan of ``Engine._drain`` with one
    change: once a wildcard receive is *allowed* to match, the policy —
    not the canonical minimum — picks which candidate it takes.

    Everything that gates **when** a match may happen stays canonical:

    * the safety horizon is checked against the earliest candidate
      arrival, exactly as the reference drain does, so a wildcard still
      only commits once no other rank could produce an earlier
      candidate — by which point every legal alternative the policy
      should see is in the candidate set;
    * an unmatchable or deferred wildcard freezes its communicator for
      later receives, preserving non-overtaking order.

    Both executors bind this same function (the batch candidate heap
    answers *canonical-minimum* queries, which a policy drain cannot
    use), so the candidate enumeration — and therefore the policy's RNG
    draw sequence — is identical in scalar and batch mode.
    """
    m = self._match
    policy = self.policy
    any_progress = False
    frozen_comms: set = set()
    it, _ = m.drain_buckets(dst)
    for pr in it:
        if pr.matched or pr.comm_id in frozen_comms:
            continue
        if pr.src == ANY_SOURCE:
            cands = m.candidates_for(pr)
            if not cands:
                frozen_comms.add(pr.comm_id)
                continue
            if not relaxed:
                arr = min(arrival_est(msg, pr.post_time)
                          for msg in cands)
                if arr > self._horizon(dst):
                    self._deferred_dsts.add(dst)
                    frozen_comms.add(pr.comm_id)
                    continue
            if len(cands) == 1:
                best = cands[0]
            else:
                best = policy.choose_match(pr, cands)
            self._commit_match(pr, best)
            any_progress = True
        else:
            msg = m.first_compatible_in_channel(
                (pr.src, dst, pr.comm_id), pr.tag)
            if msg is None:
                continue
            self._commit_match(pr, msg)
            any_progress = True
    return any_progress
