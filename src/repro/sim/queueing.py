"""Pluggable per-link queue disciplines for routed fabrics.

The engine's routed path folds every eager message through the named
links of its route (:meth:`repro.sim.engine.Engine._routed_arrival`).
Historically the per-link queue was hardcoded FIFO store-and-forward:
a message waits until the link frees, then occupies it for the
serialization time.  A :class:`QueueDiscipline` makes that admission
decision pluggable so congestion *responses* — not just congestion —
can be modeled:

* ``fifo`` — the original drop-nothing tail queue.  Selecting it by
  name (or passing ``None``) resolves to *no* discipline object, so
  the engine keeps its original inline arithmetic and stays
  byte-identical to the golden suites;
* ``codel`` — a CoDel-style bounded-sojourn queue (Nichols & Jacobson,
  CACM 2012, simplified): when a message would have queued longer than
  ``target`` seconds continuously for a full ``interval``, the queue
  "drops" it — modeled as a retransmission that reaches the wire
  ``penalty`` seconds later — and the drop is counted per link.  With
  ``target`` infinite the admission arithmetic degenerates to exactly
  the FIFO expression, which is the equivalence the property tests pin.

Determinism contract: a discipline is plain arithmetic over the same
per-link state the FIFO fold reads (no RNG, no wall clock), so runs
remain bit-deterministic and identical across the scalar and batch
executors, which reach the admission points in the same order.

Disciplines only exist on routed fabrics (flat fabrics have no named
links to queue on); the engine rejects a non-FIFO discipline without
one at construction.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional, Tuple

#: discipline names accepted by :func:`resolve_queue_discipline`
QUEUE_DISCIPLINES = ("fifo", "codel")


class QueueDiscipline:
    """One per-link admission rule for the routed store-and-forward fold.

    Subclasses implement :meth:`admit`, called once per (message, link)
    in route order.  ``reach`` is when the head of the message arrives
    at the link, ``avail`` is when the link last frees up, and ``ser``
    is the serialization time the message will occupy the link for.
    The return is ``(start, drops)``: when transmission starts on the
    link, and how many drop events (counted retransmissions) this
    admission charged to it.
    """

    name = "queue"

    def admit(self, link: str, reach: float, ser: float,
              avail: float) -> Tuple[float, int]:
        raise NotImplementedError

    def describe(self) -> str:
        """Human rendering for reports and logs."""
        return self.name


class FifoDiscipline(QueueDiscipline):
    """The original tail queue: wait for the link, never drop.

    The engine never routes the default configuration through this
    object (``resolve_queue_discipline`` returns ``None`` for FIFO so
    the inline fast path stays untouched); the class exists so
    harnesses can drive any discipline uniformly, and its arithmetic
    is the reference the golden suites pin.
    """

    name = "fifo"

    def admit(self, link, reach, ser, avail):
        start = avail if avail > reach else reach
        return start, 0


class CoDelDiscipline(QueueDiscipline):
    """CoDel-style bounded sojourn: drop (retransmit) persistent queuers.

    Tracks, per link, when the queueing delay ("sojourn": how long the
    message waits beyond its arrival) first exceeded ``target`` without
    dipping back under it.  Once that state has persisted for a full
    ``interval``, the next admission counts a drop and the message
    reaches the wire ``penalty`` seconds late (the retransmitted copy),
    which also resets the persistence tracking.  All three knobs are
    seconds; ``target`` may be ``inf`` (or the strings ``"inf"`` /
    ``"infinity"``), in which case no sojourn ever exceeds it and the
    discipline is arithmetic-identical to FIFO.
    """

    name = "codel"

    def __init__(self, target: float = 5e-6, interval: float = 1e-4,
                 penalty: float = 5e-5):
        target = _seconds("target", target, allow_inf=True)
        interval = _seconds("interval", interval, allow_inf=True)
        penalty = _seconds("penalty", penalty, allow_inf=False)
        self.target = target
        self.interval = interval
        self.penalty = penalty
        #: per-link time the sojourn first went above target, or absent
        self._first_above: Dict[str, float] = {}

    def admit(self, link, reach, ser, avail):
        start = avail if avail > reach else reach
        sojourn = start - reach
        if sojourn <= self.target:
            self._first_above.pop(link, None)
            return start, 0
        first = self._first_above.get(link)
        if first is None:
            self._first_above[link] = start
            return start, 0
        if start - first >= self.interval:
            start += self.penalty
            self._first_above[link] = start
            return start, 1
        return start, 0

    def describe(self):
        return (f"{self.name}(target={self.target!r}, "
                f"interval={self.interval!r}, penalty={self.penalty!r})")


def _seconds(knob: str, value, allow_inf: bool) -> float:
    """Validate one CoDel knob: a positive float (optionally infinite)."""
    if isinstance(value, str):
        if value.lower() in ("inf", "infinity"):
            value = math.inf
        else:
            try:
                value = float(value)
            except ValueError:
                raise ValueError(
                    f"codel {knob} must be seconds (a number), "
                    f"got {value!r}") from None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"codel {knob} must be seconds (a number), "
                         f"got {value!r}")
    value = float(value)
    if math.isnan(value) or value <= 0.0:
        raise ValueError(f"codel {knob} must be positive, got {value!r}")
    if math.isinf(value) and not allow_inf:
        raise ValueError(f"codel {knob} cannot be infinite")
    return value


def _params_dict(queue_params) -> Dict[str, object]:
    """Normalize queue params: a mapping or a tuple of (key, value)
    pairs (the :class:`~repro.pipeline.config.PipelineConfig` canonical
    form) into a plain dict."""
    if queue_params is None:
        return {}
    if isinstance(queue_params, Mapping):
        return dict(queue_params)
    return {str(k): v for k, v in queue_params}


def resolve_queue_discipline(discipline=None,
                             queue_params=None
                             ) -> Optional[QueueDiscipline]:
    """A fresh :class:`QueueDiscipline` from a spec, validated up front.

    ``discipline`` may be None or ``"fifo"`` (→ ``None``: the engine
    keeps its original inline FIFO fold, the byte-identical default), a
    name from :data:`QUEUE_DISCIPLINES`, or an already-built
    :class:`QueueDiscipline` (passed through; ``queue_params`` must
    then be empty).  Unknown names, parameters on FIFO, and unknown or
    malformed CoDel knobs all raise :class:`ValueError` here — at
    construction — rather than deep inside a run.  A *fresh* instance
    is returned for named disciplines because the per-link persistence
    tracking is per-run state.
    """
    params = _params_dict(queue_params)
    if isinstance(discipline, QueueDiscipline):
        if params:
            raise ValueError(
                "queue_params cannot be combined with an already-built "
                f"discipline object ({discipline.describe()}); "
                "parameterize the discipline at construction instead")
        return discipline
    if discipline is None or discipline == "fifo":
        if params:
            raise ValueError(
                f"the fifo queue discipline takes no parameters, got "
                f"{sorted(params)}")
        return None
    if not isinstance(discipline, str) or \
            discipline not in QUEUE_DISCIPLINES:
        raise ValueError(
            f"unknown queue discipline {discipline!r}: expected one of "
            f"{QUEUE_DISCIPLINES} (see docs/SCENARIOS.md)")
    known = ("target", "interval", "penalty")
    bad = sorted(set(params) - set(known))
    if bad:
        raise ValueError(
            f"unknown codel parameter(s) {bad}; known: {list(known)}")
    return CoDelDiscipline(**params)
