"""repro.obs — lightweight instrumentation for the pipeline's hot layers.

Probe points (``obs.count`` / ``obs.span``) are compiled into the engine,
ScalaTrace, the generator, and the coNCePTuaL compiler; they cost one
``None`` check when no collector is installed.  Install a collector with
:func:`instrumented` to capture counters, span begin/end events, a
JSON-lines log, and a per-layer report."""

from repro.obs.bus import (Instrumentation, Span, count, current, event,
                           install, instrumented, layer_of, span, uninstall)
from repro.obs.report import render_report

__all__ = [
    "Instrumentation",
    "Span",
    "count",
    "current",
    "event",
    "install",
    "instrumented",
    "layer_of",
    "render_report",
    "span",
    "uninstall",
]
