"""Human-readable rendering of an :class:`~repro.obs.bus.Instrumentation`
collector: counters and span aggregates, grouped by layer."""

from __future__ import annotations

from typing import List


def _fmt_value(value) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.3f}"
    return f"{int(value)}"


def render_report(inst) -> str:
    """Per-layer summary of everything the probes recorded."""
    span_totals = inst.span_totals()
    layers = sorted({name.split(".", 1)[0]
                     for name in list(inst.counters) + list(span_totals)})
    if not layers:
        return "instrumentation: no events recorded"
    lines: List[str] = ["instrumentation report"]
    for layer in layers:
        lines.append(f"  [{layer}]")
        for name, (calls, total) in sorted(span_totals.items()):
            if name.split(".", 1)[0] != layer:
                continue
            lines.append(f"    {name:<36s} {calls:>6d} span(s) "
                         f"{total * 1e3:10.2f} ms")
        for name, value in sorted(inst.counters.items()):
            if name.split(".", 1)[0] != layer:
                continue
            lines.append(f"    {name:<36s} {_fmt_value(value):>9s}")
    return "\n".join(lines)
