"""Lightweight instrumentation bus: counters, spans, JSON-lines events.

The pipeline layers (simulator engine, ScalaTrace compression/merge, the
generator's traversal passes, the coNCePTuaL compiler) carry *probe
points* that report what the hot paths actually did — steps scheduled,
nodes folded, wildcards resolved, statements compiled.  Probes are
no-ops unless an :class:`Instrumentation` collector is installed, so the
cost in the common (uninstrumented) path is one global load and a
``None`` check.

Usage::

    from repro import obs

    inst = obs.Instrumentation()
    with obs.instrumented(inst):
        ...  # anything: trace an app, run a benchmark, a full pipeline
    print(inst.report())          # human-readable per-layer summary
    inst.write_jsonl("m.jsonl")   # machine-readable event log

Event records are flat JSON objects (one per line in the JSONL sink):

* counters — ``{"kind": "counter", "name": "engine.steps",
  "layer": "engine", "value": 12034}`` (final totals, emitted at dump
  time);
* spans — paired ``span_begin`` / ``span_end`` records sharing an
  ``id``, the end record carrying ``dur_s`` (wall seconds).

The ``layer`` field is the dotted prefix of the probe name, which maps
1:1 onto the package that owns the probe (``engine``, ``scalatrace``,
``generator``, ``conceptual``, ``pipeline``).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Any, Dict, IO, List, Optional


def layer_of(name: str) -> str:
    """The subsystem a probe name belongs to (its dotted prefix)."""
    return name.split(".", 1)[0]


class Span:
    """Context manager emitting paired begin/end events with wall time."""

    __slots__ = ("_inst", "name", "labels", "span_id", "_t0")

    def __init__(self, inst: "Instrumentation", name: str,
                 labels: Dict[str, Any]):
        self._inst = inst
        self.name = name
        self.labels = labels
        self.span_id = None
        self._t0 = 0.0

    def __enter__(self):
        self.span_id = self._inst._next_span_id()
        self._t0 = time.perf_counter()
        self._inst.emit("span_begin", self.name, id=self.span_id,
                        **self.labels)
        return self

    def __exit__(self, exc_type, exc, tb):
        dur = time.perf_counter() - self._t0
        fields = dict(self.labels)
        if exc_type is not None:
            fields["error"] = exc_type.__name__
        self._inst.emit("span_end", self.name, id=self.span_id,
                        dur_s=round(dur, 9), **fields)
        return False


class _NullSpan:
    """Shared do-nothing span used when no collector is installed."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()


class Instrumentation:
    """An in-memory event collector with a JSON-lines sink.

    ``sink`` may be a writable text file object; when given, span events
    are streamed to it as they happen and counter totals are appended by
    :meth:`close`.  Without a sink everything stays in memory until
    :meth:`write_jsonl` / :meth:`dump_jsonl` is called.
    """

    def __init__(self, sink: Optional[IO[str]] = None):
        self.counters: Dict[str, float] = {}
        self.events: List[Dict[str, Any]] = []
        self._sink = sink
        self._seq = 0
        self._span_seq = 0

    # -- recording ---------------------------------------------------------
    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to the counter ``name`` (created at zero)."""
        self.counters[name] = self.counters.get(name, 0) + value

    def span(self, name: str, **labels) -> Span:
        """A context manager timing a region; emits begin/end events."""
        return Span(self, name, labels)

    def emit(self, kind: str, name: str, **fields) -> Dict[str, Any]:
        """Record one event; streamed to the sink when one is attached."""
        self._seq += 1
        rec: Dict[str, Any] = {"seq": self._seq, "ts": round(time.time(), 6),
                               "kind": kind, "name": name,
                               "layer": layer_of(name)}
        rec.update(fields)
        self.events.append(rec)
        if self._sink is not None:
            self._sink.write(json.dumps(rec) + "\n")
        return rec

    def _next_span_id(self) -> int:
        self._span_seq += 1
        return self._span_seq

    # -- reading -----------------------------------------------------------
    def counter_records(self) -> List[Dict[str, Any]]:
        """The current counter totals as ``counter`` event records
        (sequenced after the span events they summarize)."""
        return [{"seq": self._seq + i, "kind": "counter", "name": name,
                 "layer": layer_of(name), "value": value}
                for i, (name, value)
                in enumerate(sorted(self.counters.items()), start=1)]

    def records(self) -> List[Dict[str, Any]]:
        """All events plus the counter totals (the full JSONL content)."""
        return list(self.events) + self.counter_records()

    def span_totals(self) -> Dict[str, Any]:
        """Aggregate span durations: name -> (calls, total seconds)."""
        out: Dict[str, Any] = {}
        for rec in self.events:
            if rec["kind"] != "span_end":
                continue
            calls, total = out.get(rec["name"], (0, 0.0))
            out[rec["name"]] = (calls + 1, total + rec.get("dur_s", 0.0))
        return out

    def layers(self) -> List[str]:
        """Distinct layers that produced at least one record."""
        return sorted({rec["layer"] for rec in self.records()})

    # -- output ------------------------------------------------------------
    def dump_jsonl(self, out: IO[str]) -> int:
        """Write every record as one JSON object per line; returns the
        number of lines written."""
        recs = self.records()
        for rec in recs:
            out.write(json.dumps(rec) + "\n")
        return len(recs)

    def write_jsonl(self, path: str) -> int:
        with open(path, "w") as fh:
            return self.dump_jsonl(fh)

    def report(self) -> str:
        """Human-readable per-layer summary (see :mod:`repro.obs.report`)."""
        from repro.obs.report import render_report
        return render_report(self)


# -- module-level current collector (the probe fast path) -------------------
_current: Optional[Instrumentation] = None


def current() -> Optional[Instrumentation]:
    """The installed collector, or None when instrumentation is off."""
    return _current


def install(inst: Optional[Instrumentation] = None) -> Instrumentation:
    """Install ``inst`` (or a fresh collector) as the current one."""
    global _current
    _current = inst if inst is not None else Instrumentation()
    return _current


def uninstall() -> None:
    global _current
    _current = None


@contextmanager
def instrumented(inst: Optional[Instrumentation] = None):
    """Scoped install: probes feed ``inst`` inside the block, and the
    previously installed collector (if any) is restored on exit."""
    global _current
    previous = _current
    _current = inst if inst is not None else Instrumentation()
    try:
        yield _current
    finally:
        _current = previous


def count(name: str, value: float = 1) -> None:
    """Probe: bump a counter on the current collector (no-op when off)."""
    if _current is not None:
        _current.count(name, value)


def span(name: str, **labels):
    """Probe: time a region on the current collector (no-op when off)."""
    if _current is not None:
        return _current.span(name, **labels)
    return _NULL_SPAN


def event(kind: str, name: str, **fields) -> None:
    """Probe: record a free-form event (no-op when off)."""
    if _current is not None:
        _current.emit(kind, name, **fields)
