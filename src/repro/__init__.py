"""repro — automatic generation of executable communication specifications
from parallel applications.

A full-system reproduction of Wu, Mueller & Pakin (ICS'11): ScalaTrace-
style lossless trace compression, a coNCePTuaL-subset DSL toolchain, and
the trace-to-benchmark generator with collective alignment (Algorithm 1)
and wildcard elimination (Algorithm 2) — all running on a deterministic
discrete-event MPI simulator.

Quick start::

    from repro import generate_from_application
    from repro.apps import make_app

    app = make_app("lu", nranks=16, cls="S")
    bench = generate_from_application(app, 16)
    print(bench.source)                    # readable coNCePTuaL text
    result, logs = bench.program.run(16)   # execute on the simulator
"""

from repro.generator.api import (GeneratedBenchmark, generate_benchmark,
                                 generate_from_application, scale_compute,
                                 trace_application)

__version__ = "1.0.0"

__all__ = [
    "GeneratedBenchmark",
    "generate_benchmark",
    "generate_from_application",
    "scale_compute",
    "trace_application",
    "__version__",
]
