"""coNCePTuaL runtime support: per-task counters and the log database.

Real coNCePTuaL programs write per-task log files full of measurement
tables (§3.2 and [14]); our compiled programs record the same information
into an in-memory :class:`LogDatabase` that tests and benchmark harnesses
query directly.
"""

from __future__ import annotations

import statistics
from typing import Dict, List, Tuple

from repro.conceptual.ast_nodes import COUNTERS


class TaskCounters:
    """The resettable counters a LOG statement can reference."""

    def __init__(self):
        self.reset_time = 0.0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.msgs_sent = 0
        self.msgs_received = 0

    def reset(self, now: float) -> None:
        self.reset_time = now
        self.bytes_sent = 0
        self.bytes_received = 0
        self.msgs_sent = 0
        self.msgs_received = 0

    def value(self, counter: str, now: float) -> float:
        if counter == "elapsed_usecs":
            return (now - self.reset_time) * 1e6
        if counter == "total_bytes":
            return self.bytes_sent + self.bytes_received
        if counter == "total_msgs":
            return self.msgs_sent + self.msgs_received
        if counter in COUNTERS:
            return getattr(self, counter)
        raise KeyError(f"unknown counter {counter!r}")


class LogDatabase:
    """Collected LOG-statement samples for one program run.

    Samples are keyed by (label, aggregate); each sample is (rank, value).
    """

    def __init__(self):
        self._samples: Dict[Tuple[str, str], List[Tuple[int, float]]] = {}

    def record(self, label: str, aggregate: str, rank: int,
               value: float) -> None:
        self._samples.setdefault((label, aggregate), []).append((rank, value))

    def labels(self) -> List[Tuple[str, str]]:
        return sorted(self._samples)

    def samples(self, label: str, aggregate: str = None) -> List[float]:
        if aggregate is not None:
            return [v for _, v in self._samples.get((label, aggregate), [])]
        out = []
        for (lbl, _), pairs in self._samples.items():
            if lbl == label:
                out.extend(v for _, v in pairs)
        return out

    def value(self, label: str) -> float:
        """Aggregate all samples recorded under ``label`` using the
        aggregate named in the LOG statement."""
        for (lbl, agg), pairs in self._samples.items():
            if lbl != label:
                continue
            values = [v for _, v in pairs]
            return _aggregate(agg, values)
        raise KeyError(f"no samples logged as {label!r}")

    def report(self) -> str:
        """Human-readable result table (the stand-in for coNCePTuaL's log
        files)."""
        lines = ["label | aggregate | samples | value"]
        for (label, agg) in self.labels():
            values = [v for _, v in self._samples[(label, agg)]]
            lines.append(f"{label} | {agg} | {len(values)} | "
                         f"{_aggregate(agg, values):.6g}")
        return "\n".join(lines)


def _aggregate(agg: str, values: List[float]) -> float:
    if not values:
        raise ValueError("no samples to aggregate")
    if agg == "MEAN":
        return statistics.fmean(values)
    if agg == "MEDIAN":
        return statistics.median(values)
    if agg == "MINIMUM":
        return min(values)
    if agg == "MAXIMUM":
        return max(values)
    if agg == "SUM":
        return sum(values)
    if agg == "FINAL":
        return values[-1]
    raise ValueError(f"unknown aggregate {agg!r}")
