"""coNCePTuaL reproduction: the DSL subset the benchmark generator emits —
lexer, parser, AST, semantic checks, pretty-printer, a compiler backend
targeting the simulated MPI layer, and the counters/log runtime."""

from repro.conceptual import ast_nodes as ast
from repro.conceptual.compiler import (ConceptualProgram, eval_expr,
                                       select_ranks)
from repro.conceptual.lexer import tokenize
from repro.conceptual.parser import parse
from repro.conceptual.printer import (print_program, render_expr,
                                      render_selector)
from repro.conceptual.runtime import LogDatabase, TaskCounters
from repro.conceptual.semantics import check_program

__all__ = [
    "ConceptualProgram",
    "LogDatabase",
    "TaskCounters",
    "ast",
    "check_program",
    "eval_expr",
    "parse",
    "print_program",
    "render_expr",
    "render_selector",
    "select_ranks",
    "tokenize",
]
