"""The coNCePTuaL compiler backend targeting the simulated MPI layer.

Real coNCePTuaL compiles its source to C+MPI; our backend "compiles" the
AST into an SPMD generator program over :class:`repro.mpi.MPIProcess` —
the same pluggable-backend design the original tool advertises.  Every
statement carries a synthetic call-site signature derived from its AST
path, so ScalaTrace applied to a *generated* benchmark sees stable,
per-statement call sites (just as the C backend's source lines would).

Execution semantics of the communication statements:

* ``SEND`` (implicit pairing) — sources send, destinations post matching
  receives, synchronously or asynchronously per ``ASYNCHRONOUSLY``.
* ``SEND ... TO UNSUSPECTING`` — send side only; some explicit ``RECEIVE``
  statement consumes the data.
* ``MULTICAST`` — one source: a broadcast over sources ∪ targets; sources
  equal to targets: an all-to-all exchange; otherwise one broadcast per
  source.
* ``REDUCE``  — targets equal to sources: allreduce; single target: rooted
  reduce; otherwise reduce to the first target then multicast to the rest.
* ``SYNCHRONIZE`` — barrier over the selected tasks.
* ``AWAIT COMPLETION`` — waitall on the rank's outstanding asynchronous
  operations.

Collective groups are static, so sub-communicators are interned up front
(no setup traffic), mirroring coNCePTuaL's implicit communicator handling.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.conceptual.ast_nodes import (AllTasks, AwaitStmt, BinOp,
                                        ComputeStmt, Expr, ForEach, ForRep,
                                        IfStmt, IsIn, LogStmt, MulticastStmt,
                                        Num, Program, RecvStmt, ReduceStmt,
                                        ResetStmt, SendStmt, SingleTask,
                                        Stmt, SuchThat, SyncStmt,
                                        TaskSelector, Var)
from repro.conceptual.parser import parse
from repro.conceptual.printer import print_program
from repro.conceptual.runtime import LogDatabase, TaskCounters
from repro.conceptual.semantics import check_program
from repro.errors import ConceptualSemanticError
from repro import obs
from repro.mpi.api import ANY_SOURCE, MPIProcess
from repro.mpi.world import SpmdResult, run_spmd
from repro.util.callsite import Callsite


# --------------------------------------------------------------- evaluation
def eval_expr(expr: Expr, env: Dict[str, float]):
    if isinstance(expr, Num):
        return expr.value
    if isinstance(expr, Var):
        try:
            return env[expr.name]
        except KeyError:
            raise ConceptualSemanticError(
                f"unbound variable {expr.name!r} at run time") from None
    if isinstance(expr, IsIn):
        item = eval_expr(expr.item, env)
        return any(eval_expr(m, env) == item for m in expr.members)
    if isinstance(expr, BinOp):
        op = expr.op
        if op == "/\\":
            return bool(eval_expr(expr.left, env)) and \
                bool(eval_expr(expr.right, env))
        if op == "\\/":
            return bool(eval_expr(expr.left, env)) or \
                bool(eval_expr(expr.right, env))
        left = eval_expr(expr.left, env)
        right = eval_expr(expr.right, env)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            return left // right if isinstance(left, int) and \
                isinstance(right, int) else left / right
        if op == "MOD":
            return left % right
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right
        if op == ">":
            return left > right
        if op == "<=":
            return left <= right
        if op == ">=":
            return left >= right
        if op == "DIVIDES":
            return left != 0 and right % left == 0
    raise ConceptualSemanticError(f"cannot evaluate {expr!r}")


def select_ranks(sel: TaskSelector, env: Dict[str, float],
                 num_tasks: int) -> List[Tuple[int, Dict[str, float]]]:
    """Ranks matched by a selector, each with the environment extended by
    the selector's task-variable binding."""
    if isinstance(sel, AllTasks):
        if sel.var:
            return [(r, {**env, sel.var: r}) for r in range(num_tasks)]
        return [(r, env) for r in range(num_tasks)]
    if isinstance(sel, SingleTask):
        r = int(eval_expr(sel.expr, env))
        if not 0 <= r < num_tasks:
            raise ConceptualSemanticError(
                f"TASK {r} out of range (num_tasks={num_tasks})")
        return [(r, env)]
    if isinstance(sel, SuchThat):
        out = []
        for r in range(num_tasks):
            inner = {**env, sel.var: r}
            if eval_expr(sel.predicate, inner):
                out.append((r, inner))
        return out
    raise ConceptualSemanticError(f"unknown selector {sel!r}")


# ------------------------------------------------------------- compiled form
class _RankState:
    def __init__(self, mpi: MPIProcess, logs: LogDatabase):
        self.mpi = mpi
        self.counters = TaskCounters()
        self.pending = []
        self.logs = logs


class ConceptualProgram:
    """A checked, executable coNCePTuaL program."""

    def __init__(self, ast: Program, name: str = "benchmark"):
        with obs.span("conceptual.compile", program=name):
            check_program(ast)
            self.ast = ast
            self.name = name
            self._sites: Dict[int, Callsite] = {}
            self._number_statements()
            obs.count("conceptual.statements_compiled", len(self._sites))

    # -- constructors -----------------------------------------------------
    @classmethod
    def from_source(cls, text: str, name: str = "benchmark"):
        return cls(parse(text), name)

    @property
    def source(self) -> str:
        """Canonical source text of this program."""
        return print_program(self.ast)

    def _number_statements(self) -> None:
        counter = [0]

        def walk(stmts):
            for stmt in stmts:
                self._sites[id(stmt)] = Callsite.synthetic(
                    self.name, counter[0])
                counter[0] += 1
                if isinstance(stmt, (ForRep, ForEach)):
                    walk(stmt.body)
                elif isinstance(stmt, IfStmt):
                    walk(stmt.then)
                    walk(stmt.otherwise)

        walk(self.ast.stmts)

    # -- execution -----------------------------------------------------------
    def instantiate(self, logs: LogDatabase):
        """SPMD program function suitable for :func:`repro.mpi.run_spmd`."""
        def program(mpi: MPIProcess):
            state = _RankState(mpi, logs)
            env = {"num_tasks": mpi.size}
            yield from self._exec_seq(self.ast.stmts, state, env)
            yield from mpi.finalize()
        return program

    def run(self, nranks: int, model=None, hooks=None,
            max_steps=None, faults=None, profile=False,
            schedule_policy=None, schedule_seed=None,
            queue_discipline=None,
            queue_params=None) -> Tuple[SpmdResult, LogDatabase]:
        """Compile-and-run convenience: returns the simulation result and
        the program's log database."""
        logs = LogDatabase()
        result = run_spmd(self.instantiate(logs), nranks, model=model,
                          hooks=hooks, max_steps=max_steps, faults=faults,
                          profile=profile, schedule_policy=schedule_policy,
                          schedule_seed=schedule_seed,
                          queue_discipline=queue_discipline,
                          queue_params=queue_params)
        return result, logs

    # -- statement execution ------------------------------------------------
    def _exec_seq(self, stmts: Sequence[Stmt], state: _RankState, env):
        for stmt in stmts:
            yield from self._exec(stmt, state, env)

    def _exec(self, stmt: Stmt, state: _RankState, env):
        mpi = state.mpi
        mpi.callsite_override = self._sites[id(stmt)]
        try:
            if isinstance(stmt, ForRep):
                count = int(eval_expr(stmt.count, env))
                for _ in range(count):
                    yield from self._exec_seq(stmt.body, state, env)
            elif isinstance(stmt, ForEach):
                lo = int(eval_expr(stmt.lo, env))
                hi = int(eval_expr(stmt.hi, env))
                for i in range(lo, hi + 1):
                    inner = {**env, stmt.var: i}
                    yield from self._exec_seq(stmt.body, state, inner)
            elif isinstance(stmt, IfStmt):
                if eval_expr(stmt.cond, env):
                    yield from self._exec_seq(stmt.then, state, env)
                else:
                    yield from self._exec_seq(stmt.otherwise, state, env)
            elif isinstance(stmt, SendStmt):
                yield from self._exec_send(stmt, state, env)
            elif isinstance(stmt, RecvStmt):
                yield from self._exec_recv(stmt, state, env)
            elif isinstance(stmt, MulticastStmt):
                yield from self._exec_multicast(stmt, state, env)
            elif isinstance(stmt, ReduceStmt):
                yield from self._exec_reduce(stmt, state, env)
            elif isinstance(stmt, SyncStmt):
                yield from self._exec_sync(stmt, state, env)
            elif isinstance(stmt, ComputeStmt):
                for r, inner in select_ranks(stmt.sel, env, mpi.size):
                    if r == mpi.rank:
                        usecs = float(eval_expr(stmt.usecs, inner))
                        yield from mpi.compute(usecs * 1e-6)
            elif isinstance(stmt, ResetStmt):
                if self._selected(stmt.sel, env, mpi):
                    state.counters.reset(mpi.now())
            elif isinstance(stmt, AwaitStmt):
                if self._selected(stmt.sel, env, mpi) and state.pending:
                    yield from mpi.waitall(state.pending)
                    state.pending = []
            elif isinstance(stmt, LogStmt):
                if self._selected(stmt.sel, env, mpi):
                    value = state.counters.value(stmt.counter, mpi.now())
                    state.logs.record(stmt.label, stmt.aggregate,
                                      mpi.rank, value)
            else:
                raise ConceptualSemanticError(f"cannot execute {stmt!r}")
        finally:
            mpi.callsite_override = None

    @staticmethod
    def _selected(sel: TaskSelector, env, mpi: MPIProcess) -> bool:
        return any(r == mpi.rank
                   for r, _ in select_ranks(sel, env, mpi.size))

    # -- point-to-point ----------------------------------------------------------
    def _exec_send(self, stmt: SendStmt, state: _RankState, env):
        mpi = state.mpi
        pairs = []  # (src, dst, size, count)
        for src, inner in select_ranks(stmt.sel, env, mpi.size):
            dst = int(eval_expr(stmt.dest, inner))
            size = int(eval_expr(stmt.size, inner))
            count = int(eval_expr(stmt.count, inner))
            pairs.append((src, dst, size, count))
        me = mpi.rank
        # receive side first (posting receives early is both deterministic
        # and what a careful MPI programmer does)
        if not stmt.unsuspecting:
            for src, dst, size, count in pairs:
                if dst != me:
                    continue
                for _ in range(count):
                    if stmt.is_async:
                        req = yield from mpi.irecv(source=src, tag=stmt.tag)
                        state.pending.append(req)
                    else:
                        st = yield from mpi.recv(source=src, tag=stmt.tag)
                        state.counters.msgs_received += 1
                        state.counters.bytes_received += st.nbytes
        for src, dst, size, count in pairs:
            if src != me:
                continue
            for _ in range(count):
                if stmt.is_async:
                    req = yield from mpi.isend(dest=dst, nbytes=size,
                                               tag=stmt.tag)
                    state.pending.append(req)
                else:
                    yield from mpi.send(dest=dst, nbytes=size, tag=stmt.tag)
                state.counters.msgs_sent += 1
                state.counters.bytes_sent += size
        # synchronous implicitly-paired sends: the receive side above ran
        # before the send side for pairs where this rank is both; that is
        # only safe asynchronously, so blocking self-deadlock is the
        # author's responsibility exactly as in MPI

    def _exec_recv(self, stmt: RecvStmt, state: _RankState, env):
        mpi = state.mpi
        for dst, inner in select_ranks(stmt.sel, env, mpi.size):
            if dst != mpi.rank:
                continue
            count = int(eval_expr(stmt.count, inner))
            if stmt.source is None:
                src = ANY_SOURCE
            else:
                src = int(eval_expr(stmt.source, inner))
            for _ in range(count):
                if stmt.is_async:
                    req = yield from mpi.irecv(source=src, tag=stmt.tag)
                    state.pending.append(req)
                else:
                    st = yield from mpi.recv(source=src, tag=stmt.tag)
                    state.counters.msgs_received += 1
                    state.counters.bytes_received += st.nbytes

    # -- collectives ----------------------------------------------------------------
    def _groups(self, stmt, env, num_tasks):
        sources = [r for r, _ in select_ranks(stmt.sel, env, num_tasks)]
        targets = [r for r, _ in select_ranks(stmt.targets, env, num_tasks)]
        if not sources or not targets:
            raise ConceptualSemanticError(
                f"collective with empty source or target set: {stmt!r}")
        return sources, targets

    def _exec_multicast(self, stmt: MulticastStmt, state: _RankState, env):
        mpi = state.mpi
        sources, targets = self._groups(stmt, env, mpi.size)
        size = int(eval_expr(stmt.size, env)) if not _uses_task_var(
            stmt.sel, stmt.size) else None
        if size is None:
            # size depends on the task variable; evaluate with own binding
            for r, inner in select_ranks(stmt.sel, env, mpi.size):
                if r == mpi.rank:
                    size = int(eval_expr(stmt.size, inner))
                    break
            else:
                size = int(eval_expr(stmt.size, {**env, _task_var(stmt.sel):
                                                 mpi.rank}))
        if set(sources) == set(targets) and len(sources) > 1:
            group = sorted(set(sources))
            if mpi.rank in group:
                comm = mpi.group_comm(group)
                yield from mpi.alltoall(size, comm=comm)
                state.counters.msgs_sent += len(group) - 1
                state.counters.bytes_sent += size * (len(group) - 1)
            return
        for src in sorted(set(sources)):
            group = sorted(set(targets) | {src})
            if mpi.rank not in group:
                continue
            comm = mpi.group_comm(group)
            yield from mpi.bcast(size, root=comm.rank_of_world(src),
                                 comm=comm)
            if mpi.rank == src:
                state.counters.msgs_sent += len(group) - 1
                state.counters.bytes_sent += size * (len(group) - 1)
            else:
                state.counters.msgs_received += 1
                state.counters.bytes_received += size

    def _exec_reduce(self, stmt: ReduceStmt, state: _RankState, env):
        mpi = state.mpi
        sources, targets = self._groups(stmt, env, mpi.size)
        size = int(eval_expr(stmt.size, env))
        src_set, tgt_set = set(sources), set(targets)
        group = sorted(src_set | tgt_set)
        if mpi.rank not in group:
            return
        comm = mpi.group_comm(group)
        if src_set == tgt_set:
            yield from mpi.allreduce(size, comm=comm)
            state.counters.msgs_sent += 1
            state.counters.bytes_sent += size
            return
        root = min(tgt_set)
        yield from mpi.reduce(size, root=comm.rank_of_world(root), comm=comm)
        if mpi.rank in src_set:
            state.counters.msgs_sent += 1
            state.counters.bytes_sent += size
        rest = sorted(tgt_set - {root})
        if rest:
            bgroup = sorted({root} | set(rest))
            if mpi.rank in bgroup:
                bcomm = mpi.group_comm(bgroup)
                yield from mpi.bcast(size, root=bcomm.rank_of_world(root),
                                     comm=bcomm)

    def _exec_sync(self, stmt: SyncStmt, state: _RankState, env):
        mpi = state.mpi
        group = sorted(r for r, _ in select_ranks(stmt.sel, env, mpi.size))
        if mpi.rank not in group:
            return
        comm = mpi.group_comm(group)
        yield from mpi.barrier(comm=comm)


def _task_var(sel: TaskSelector) -> Optional[str]:
    if isinstance(sel, AllTasks):
        return sel.var
    if isinstance(sel, SuchThat):
        return sel.var
    return None


def _uses_task_var(sel: TaskSelector, expr: Expr) -> bool:
    var = _task_var(sel)
    if var is None:
        return False

    def walk(e):
        if isinstance(e, Var):
            return e.name == var
        if isinstance(e, BinOp):
            return walk(e.left) or walk(e.right)
        if isinstance(e, IsIn):
            return walk(e.item) or any(walk(m) for m in e.members)
        return False

    return walk(expr)
