"""Pretty-printer: AST → readable coNCePTuaL source text.

The benchmark generator builds ASTs, never strings; this module renders
them in the English-like concrete syntax, and the test suite asserts that
``parse(print(ast)) == ast`` so generated programs are grammatical by
construction.
"""

from __future__ import annotations

from typing import List

from repro.conceptual.ast_nodes import (AllTasks, AwaitStmt, BinOp,
                                        ComputeStmt, Expr, ForEach, ForRep,
                                        IfStmt, IsIn, LogStmt, MulticastStmt,
                                        Num, Program, RecvStmt, ReduceStmt,
                                        ResetStmt, SendStmt, SingleTask,
                                        Stmt, SuchThat, SyncStmt,
                                        TaskSelector, Var)

_PRECEDENCE = {
    "\\/": 1, "/\\": 2,
    "=": 3, "<>": 3, "<": 3, ">": 3, "<=": 3, ">=": 3, "DIVIDES": 3,
    "+": 4, "-": 4,
    "*": 5, "/": 5, "MOD": 5,
}


def render_expr(expr: Expr, parent_prec: int = 0) -> str:
    if isinstance(expr, Num):
        v = expr.value
        if isinstance(v, float):
            return repr(v)
        return str(v)
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, IsIn):
        members = ", ".join(render_expr(m) for m in expr.members)
        body = f"{render_expr(expr.item, 3)} IS IN {{{members}}}"
        return f"({body})" if parent_prec > 3 else body
    if isinstance(expr, BinOp):
        prec = _PRECEDENCE[expr.op]
        left = render_expr(expr.left, prec)
        right = render_expr(expr.right, prec + 1)  # left-associative
        body = f"{left} {expr.op} {right}"
        return f"({body})" if prec < parent_prec else body
    raise TypeError(f"cannot render {expr!r}")


def render_selector(sel: TaskSelector) -> str:
    if isinstance(sel, AllTasks):
        return f"ALL TASKS {sel.var}" if sel.var else "ALL TASKS"
    if isinstance(sel, SingleTask):
        return f"TASK {render_expr(sel.expr)}"
    if isinstance(sel, SuchThat):
        return f"TASKS {sel.var} SUCH THAT {render_expr(sel.predicate)}"
    raise TypeError(f"cannot render {sel!r}")


def _plural(sel: TaskSelector) -> str:
    """English verb suffix: TASK 0 SENDS, ALL TASKS SEND."""
    return "S" if isinstance(sel, SingleTask) else ""


def _render_size(size: Expr) -> str:
    if isinstance(size, Num) and isinstance(size.value, int):
        v = size.value
        if v > 0 and v % (1 << 20) == 0:
            n = v >> 20
            return f"{n} MEGABYTE" + ("S" if n != 1 else "")
        if v > 0 and v % 1024 == 0:
            n = v >> 10
            return f"{n} KILOBYTE" + ("S" if n != 1 else "")
        return f"{v} BYTE" + ("S" if v != 1 else "")
    return f"{render_expr(size, 6)} BYTES"


def _render_tag(tag: int) -> str:
    if tag == -1:
        return " WITH ANY TAG"
    if tag:
        return f" WITH TAG {tag}"
    return ""


def _render_count_size(count: Expr, size: Expr, noun: str) -> str:
    size_txt = _render_size(size)
    if count == Num(1):
        return f"A {size_txt} {noun}"
    return f"{render_expr(count, 6)} {size_txt} {noun}S"


class _Printer:
    def __init__(self, indent: str = "  "):
        self.indent = indent
        self.lines: List[str] = []

    def emit(self, depth: int, text: str) -> None:
        self.lines.append(self.indent * depth + text)

    def stmt_seq(self, stmts: List[Stmt], depth: int) -> None:
        for i, stmt in enumerate(stmts):
            self.stmt(stmt, depth, then=i < len(stmts) - 1)

    def _block(self, body: List[Stmt], depth: int, suffix: str) -> None:
        self.lines[-1] += " {"
        self.stmt_seq(body, depth + 1)
        self.emit(depth, "}" + suffix)

    def stmt(self, stmt: Stmt, depth: int, then: bool) -> None:
        suffix = " THEN" if then else ""
        if isinstance(stmt, ForRep):
            self.emit(depth, f"FOR {render_expr(stmt.count)} REPETITIONS")
            self._block(stmt.body, depth, suffix)
            return
        if isinstance(stmt, ForEach):
            self.emit(depth, f"FOR EACH {stmt.var} IN "
                             f"{{{render_expr(stmt.lo)}, ..., "
                             f"{render_expr(stmt.hi)}}}")
            self._block(stmt.body, depth, suffix)
            return
        if isinstance(stmt, IfStmt):
            self.emit(depth, f"IF {render_expr(stmt.cond)} THEN")
            self._block(stmt.then, depth, "" if stmt.otherwise else suffix)
            if stmt.otherwise:
                self.lines[-1] += " OTHERWISE"
                self._block(stmt.otherwise, depth, suffix)
            return
        self.emit(depth, self.simple(stmt) + suffix)

    def simple(self, stmt: Stmt) -> str:
        if isinstance(stmt, SendStmt):
            s = render_selector(stmt.sel)
            if stmt.is_async:
                s += " ASYNCHRONOUSLY"
            s += f" SEND{_plural(stmt.sel)} "
            s += _render_count_size(stmt.count, stmt.size, "MESSAGE")
            s += " TO "
            if stmt.unsuspecting:
                s += "UNSUSPECTING "
            s += f"TASK {render_expr(stmt.dest)}"
            s += _render_tag(stmt.tag)
            return s
        if isinstance(stmt, RecvStmt):
            s = render_selector(stmt.sel)
            if stmt.is_async:
                s += " ASYNCHRONOUSLY"
            s += f" RECEIVE{_plural(stmt.sel)} "
            s += _render_count_size(stmt.count, stmt.size, "MESSAGE")
            if stmt.source is None:
                s += " FROM ANY TASK"
            else:
                s += f" FROM TASK {render_expr(stmt.source)}"
            s += _render_tag(stmt.tag)
            return s
        if isinstance(stmt, MulticastStmt):
            return (f"{render_selector(stmt.sel)} "
                    f"MULTICAST{_plural(stmt.sel)} A "
                    f"{_render_size(stmt.size)} MESSAGE TO "
                    f"{render_selector(stmt.targets)}")
        if isinstance(stmt, ReduceStmt):
            return (f"{render_selector(stmt.sel)} "
                    f"REDUCE{_plural(stmt.sel)} A "
                    f"{_render_size(stmt.size)} VALUE TO "
                    f"{render_selector(stmt.targets)}")
        if isinstance(stmt, SyncStmt):
            return f"{render_selector(stmt.sel)} SYNCHRONIZE{_plural(stmt.sel)}"
        if isinstance(stmt, ComputeStmt):
            return (f"{render_selector(stmt.sel)} "
                    f"COMPUTE{_plural(stmt.sel)} FOR "
                    f"{render_expr(stmt.usecs)} MICROSECONDS")
        if isinstance(stmt, ResetStmt):
            return (f"{render_selector(stmt.sel)} "
                    f"RESET{_plural(stmt.sel)} THEIR COUNTERS")
        if isinstance(stmt, AwaitStmt):
            return (f"{render_selector(stmt.sel)} "
                    f"AWAIT{_plural(stmt.sel)} COMPLETION")
        if isinstance(stmt, LogStmt):
            return (f"{render_selector(stmt.sel)} LOG{_plural(stmt.sel)} THE "
                    f"{stmt.aggregate} OF {stmt.counter} AS "
                    f"\"{stmt.label}\"")
        raise TypeError(f"cannot render {stmt!r}")


def print_program(program: Program, indent: str = "  ") -> str:
    """Render a program AST as coNCePTuaL source text."""
    p = _Printer(indent)
    p.stmt_seq(program.stmts, 0)
    return "\n".join(p.lines) + "\n"
