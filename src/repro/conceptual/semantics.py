"""Static semantic checks for coNCePTuaL programs.

Run before compilation so that authoring errors (unbound variables,
unknown counters, malformed selectors) surface with clear messages rather
than as runtime KeyErrors inside the simulator.
"""

from __future__ import annotations

from typing import Set

from repro.conceptual.ast_nodes import (AllTasks, AwaitStmt, BinOp,
                                        ComputeStmt, COUNTERS, Expr, ForEach,
                                        ForRep, IfStmt, IsIn, LogStmt,
                                        MulticastStmt, Num, Program,
                                        RecvStmt, ReduceStmt, ResetStmt,
                                        SendStmt, SingleTask, Stmt, SuchThat,
                                        SyncStmt, TaskSelector, Var)
from repro.errors import ConceptualSemanticError

#: identifiers always in scope
_BUILTINS = {"num_tasks"}


def _check_expr(expr: Expr, scope: Set[str]) -> None:
    if isinstance(expr, Num):
        return
    if isinstance(expr, Var):
        if expr.name not in scope and expr.name not in _BUILTINS:
            raise ConceptualSemanticError(
                f"unbound variable {expr.name!r}")
        return
    if isinstance(expr, BinOp):
        _check_expr(expr.left, scope)
        _check_expr(expr.right, scope)
        return
    if isinstance(expr, IsIn):
        _check_expr(expr.item, scope)
        for m in expr.members:
            _check_expr(m, scope)
        return
    raise ConceptualSemanticError(f"unknown expression node {expr!r}")


def _selector_scope(sel: TaskSelector, scope: Set[str]) -> Set[str]:
    """Scope visible to the statement body: the selector may bind a task
    variable."""
    if isinstance(sel, AllTasks):
        return scope | {sel.var} if sel.var else scope
    if isinstance(sel, SingleTask):
        _check_expr(sel.expr, scope)
        return scope
    if isinstance(sel, SuchThat):
        inner = scope | {sel.var}
        _check_expr(sel.predicate, inner)
        return inner
    raise ConceptualSemanticError(f"unknown selector {sel!r}")


def _check_stmt(stmt: Stmt, scope: Set[str]) -> None:
    if isinstance(stmt, ForRep):
        _check_expr(stmt.count, scope)
        for s in stmt.body:
            _check_stmt(s, scope)
        return
    if isinstance(stmt, ForEach):
        _check_expr(stmt.lo, scope)
        _check_expr(stmt.hi, scope)
        inner = scope | {stmt.var}
        for s in stmt.body:
            _check_stmt(s, inner)
        return
    if isinstance(stmt, IfStmt):
        _check_expr(stmt.cond, scope)
        for s in stmt.then:
            _check_stmt(s, scope)
        for s in stmt.otherwise:
            _check_stmt(s, scope)
        return
    if isinstance(stmt, SendStmt):
        inner = _selector_scope(stmt.sel, scope)
        _check_expr(stmt.count, inner)
        _check_expr(stmt.size, inner)
        _check_expr(stmt.dest, inner)
        if stmt.tag < 0:
            raise ConceptualSemanticError(
                "a send cannot use the ANY tag")
        return
    if isinstance(stmt, RecvStmt):
        inner = _selector_scope(stmt.sel, scope)
        _check_expr(stmt.count, inner)
        _check_expr(stmt.size, inner)
        if stmt.source is not None:
            _check_expr(stmt.source, inner)
        return
    if isinstance(stmt, (MulticastStmt, ReduceStmt)):
        inner = _selector_scope(stmt.sel, scope)
        _check_expr(stmt.size, inner)
        _selector_scope(stmt.targets, scope)
        return
    if isinstance(stmt, ComputeStmt):
        inner = _selector_scope(stmt.sel, scope)
        _check_expr(stmt.usecs, inner)
        return
    if isinstance(stmt, (SyncStmt, ResetStmt, AwaitStmt)):
        _selector_scope(stmt.sel, scope)
        return
    if isinstance(stmt, LogStmt):
        _selector_scope(stmt.sel, scope)
        if stmt.counter not in COUNTERS:
            raise ConceptualSemanticError(
                f"unknown counter {stmt.counter!r}; choose from {COUNTERS}")
        return
    raise ConceptualSemanticError(f"unknown statement node {stmt!r}")


def check_program(program: Program) -> None:
    """Raise :class:`ConceptualSemanticError` on the first problem found."""
    for stmt in program.stmts:
        _check_stmt(stmt, set())
