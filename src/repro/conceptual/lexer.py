"""Tokenizer for the coNCePTuaL subset.

coNCePTuaL's grammar is deliberately English-like; the lexer therefore
distinguishes *keywords* (case-insensitive, e.g. ``SEND`` / ``sends``),
*identifiers* (case-sensitive: task and loop variables, counter names),
numbers (integers and decimals), strings, and a small operator set
including the logical connectives ``/\\`` and ``\\/``.

Keyword normalization strips the plural/third-person ``S`` from verbs
(``SENDS`` → ``SEND``) so the parser deals with one spelling.
"""

from __future__ import annotations

from typing import List, NamedTuple

from repro.errors import ConceptualSyntaxError

KEYWORDS = {
    "FOR", "REPETITIONS", "REPETITION", "EACH", "IN", "IF", "THEN",
    "OTHERWISE", "ALL", "TASKS", "TASK", "SUCH", "THAT", "ASYNCHRONOUSLY",
    "SEND", "SENDS", "RECEIVE", "RECEIVES", "MESSAGE", "MESSAGES", "TO",
    "FROM", "UNSUSPECTING", "ANY", "MULTICAST", "MULTICASTS", "REDUCE",
    "REDUCES", "VALUE", "VALUES", "SYNCHRONIZE", "SYNCHRONIZES", "COMPUTE",
    "COMPUTES", "MICROSECONDS", "MICROSECOND", "RESET", "RESETS", "THEIR",
    "COUNTERS", "AWAIT", "AWAITS", "COMPLETION", "LOG", "LOGS", "THE", "OF",
    "AS", "A", "AN", "MOD", "DIVIDES", "IS", "WITH", "TAG", "OTHER",
    "MEAN", "MEDIAN", "MINIMUM", "MAXIMUM", "SUM", "FINAL",
    "BYTE", "BYTES", "HALFWORD", "HALFWORDS", "WORD", "WORDS",
    "DOUBLEWORD", "DOUBLEWORDS", "KILOBYTE", "KILOBYTES", "MEGABYTE",
    "MEGABYTES",
}

#: verbs whose trailing S is stripped during normalization
_PLURAL_VERBS = {
    "SENDS": "SEND", "RECEIVES": "RECEIVE", "MULTICASTS": "MULTICAST",
    "REDUCES": "REDUCE", "SYNCHRONIZES": "SYNCHRONIZE",
    "COMPUTES": "COMPUTE", "RESETS": "RESET", "AWAITS": "AWAIT",
    "LOGS": "LOG", "REPETITION": "REPETITIONS", "MICROSECOND":
    "MICROSECONDS", "MESSAGES": "MESSAGE", "VALUES": "VALUE", "AN": "A",
}

_OPERATORS = ("<=", ">=", "<>", "/\\", "\\/", "...", "+", "-", "*", "/",
              "=", "<", ">", "{", "}", "(", ")", ",")


class Token(NamedTuple):
    kind: str    # KEYWORD | IDENT | NUMBER | STRING | OP | EOF
    value: str
    line: int
    column: int

    @property
    def number(self) -> float:
        return float(self.value)


def tokenize(text: str) -> List[Token]:
    tokens: List[Token] = []
    line, col = 1, 1
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "#":  # comment to end of line
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch == '"':
            j = i + 1
            while j < n and text[j] != '"':
                if text[j] == "\n":
                    raise ConceptualSyntaxError("unterminated string",
                                                line, col)
                j += 1
            if j >= n:
                raise ConceptualSyntaxError("unterminated string", line, col)
            tokens.append(Token("STRING", text[i + 1:j], line, col))
            col += j - i + 1
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()
                            and not text.startswith("...", i)):
            j = i
            seen_dot = False
            seen_exp = False
            while j < n:
                c = text[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not text.startswith("...", j):
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exp and j + 1 < n and (
                        text[j + 1].isdigit()
                        or (text[j + 1] in "+-" and j + 2 < n
                            and text[j + 2].isdigit())):
                    seen_exp = True
                    j += 2 if text[j + 1] in "+-" else 1
                else:
                    break
            tokens.append(Token("NUMBER", text[i:j], line, col))
            col += j - i
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                norm = _PLURAL_VERBS.get(upper, upper)
                tokens.append(Token("KEYWORD", norm, line, col))
            else:
                tokens.append(Token("IDENT", word, line, col))
            col += j - i
            i = j
            continue
        matched = False
        for op in _OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token("OP", op, line, col))
                i += len(op)
                col += len(op)
                matched = True
                break
        if not matched:
            raise ConceptualSyntaxError(f"unexpected character {ch!r}",
                                        line, col)
    tokens.append(Token("EOF", "", line, col))
    return tokens
